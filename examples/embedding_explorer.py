"""Embedding explorer: which areas does DeepSD consider similar?

Section VI-D of the paper: the learned AreaID embedding clusters areas with
similar supply-demand patterns — without ever being told the area types.
This example trains Basic DeepSD, then prints each area's archetype next to
its nearest embedding neighbour and checks the paper's actual claim: the
demand curve of the *nearest* neighbour correlates better with the area's
own demand than the *farthest* area's curve does.

    python examples/embedding_explorer.py
"""

import numpy as np

from repro.city import simulate_city
from repro.config import ExperimentScale, FeatureConfig, SimulationConfig
from repro.core import BasicDeepSD, Trainer, TrainingConfig
from repro.eval import demand_curve_correlation, embedding_distances, format_table
from repro.features import FeatureBuilder


def explorer_scale() -> ExperimentScale:
    """A small-but-not-tiny city: enough areas for embeddings to organise."""
    return ExperimentScale(
        name="explorer",
        simulation=SimulationConfig(n_areas=12, n_days=14, seed=4),
        features=FeatureConfig(
            train_days=10,
            test_days=4,
            train_start_minute=30,
            train_stride_minutes=60,
            test_stride_minutes=240,
        ),
    )


def main() -> None:
    scale = explorer_scale()
    dataset = simulate_city(scale.simulation)
    train_set, test_set = FeatureBuilder(dataset, scale.features).build()

    model = BasicDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings,
        dropout=0.1, seed=0,
    )
    Trainer(model, TrainingConfig(epochs=20, best_k=5, seed=0)).fit(
        train_set, eval_set=test_set
    )

    distances = embedding_distances(model.area_embedding_matrix())
    day = 1
    rows = []
    wins = 0
    for area in dataset.grid:
        row = distances[area.area_id].copy()
        row[area.area_id] = np.inf
        nearest = int(np.argmin(row))
        row[area.area_id] = -np.inf
        farthest = int(np.argmax(row))
        corr_near = demand_curve_correlation(dataset, area.area_id, nearest, day)
        corr_far = demand_curve_correlation(dataset, area.area_id, farthest, day)
        wins += int(corr_near > corr_far)
        rows.append(
            [
                f"A{area.area_id}",
                area.archetype.value,
                f"A{nearest} ({dataset.grid[nearest].archetype.value})",
                corr_near,
                f"A{farthest}",
                corr_far,
            ]
        )
    print(
        format_table(
            ["Area", "Archetype", "Nearest", "corr", "Farthest", "corr "],
            rows,
            title="Demand-curve similarity of embedding neighbours",
        )
    )
    print(
        f"\nFor {wins}/{dataset.n_areas} areas the nearest embedding "
        "neighbour's demand curve correlates better than the farthest's."
    )

    # The robust version of the paper's claim: compare the globally
    # closest embedding pair against the globally farthest one.
    pairs = [
        (i, j)
        for i in range(dataset.n_areas)
        for j in range(i + 1, dataset.n_areas)
    ]
    closest = min(pairs, key=lambda p: distances[p])
    farthest = max(pairs, key=lambda p: distances[p])
    corr_closest = demand_curve_correlation(dataset, *closest, day)
    corr_farthest = demand_curve_correlation(dataset, *farthest, day)
    print(
        f"Globally closest pair A{closest[0]}-A{closest[1]}: corr "
        f"{corr_closest:.2f}; farthest pair A{farthest[0]}-A{farthest[1]}: "
        f"corr {corr_farthest:.2f}"
    )


if __name__ == "__main__":
    main()
