"""Quickstart: simulate a city, train DeepSD, evaluate against baselines.

Runs at the `tiny` scale so it finishes in well under a minute on a laptop:

    python examples/quickstart.py
"""

import numpy as np

from repro.baselines import EmpiricalAverage
from repro.city import simulate_city
from repro.config import tiny_scale
from repro.core import BasicDeepSD, Trainer, TrainingConfig
from repro.eval import evaluate, format_table
from repro.features import FeatureBuilder


def main() -> None:
    # 1. Simulate a small city: areas, weather, traffic and an order stream
    #    with passenger retries (the stand-in for the Didi order data).
    scale = tiny_scale()
    dataset = simulate_city(scale.simulation)
    print("Simulated city:", dataset.summary())

    # 2. Build the paper's feature sets: real-time supply-demand /
    #    last-call / waiting-time vectors, per-weekday histories,
    #    environment windows and gap labels.
    train_set, test_set = FeatureBuilder(dataset, scale.features).build()
    print(f"Featurized: {train_set.n_items} train / {test_set.n_items} test items")

    # 3. Train Basic DeepSD with the paper's protocol (Adam, batch 64,
    #    best-k epoch ensembling).  Tiny scale uses few epochs.
    model = BasicDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings,
        dropout=0.1, seed=0,
    )
    trainer = Trainer(model, TrainingConfig(epochs=6, best_k=3, seed=0))
    history = trainer.fit(train_set, eval_set=test_set)
    print("Eval RMSE per epoch:", [round(v, 2) for v in history.eval_rmse])

    # 4. Compare with the empirical-average baseline.
    targets = test_set.gaps.astype(np.float64)
    deepsd = evaluate(trainer.predict(test_set), targets)
    average = evaluate(EmpiricalAverage().fit(train_set).predict(test_set), targets)
    print()
    print(
        format_table(
            ["Model", "MAE", "RMSE"],
            [
                ["Empirical average", average.mae, average.rmse],
                ["Basic DeepSD", deepsd.mae, deepsd.rmse],
            ],
            title="Supply-demand gap prediction (tiny scale)",
        )
    )
    assert deepsd.rmse < average.rmse, "DeepSD should beat the historical mean"


if __name__ == "__main__":
    main()
