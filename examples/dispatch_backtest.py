"""Dispatcher backtest: replay the scheduling loop over the test days.

A dispatcher repeatedly asks for every area's predicted gap and sends
drivers to the worst areas.  What matters to it is less the absolute error
than the *ranking*: are the truly worst areas at the top of the predicted
list?  This example trains DeepSD, replays the loop with the online
:class:`GapPredictor`, and reports MAE/RMSE, top-k hit rate and rank
correlation per day.

    python examples/dispatch_backtest.py
"""

from repro.city import format_timeslot, simulate_city
from repro.config import tiny_scale
from repro.core import AdvancedDeepSD, GapPredictor, Trainer, TrainingConfig
from repro.eval import format_table, run_backtest
from repro.features import FeatureBuilder


def main() -> None:
    scale = tiny_scale()
    dataset = simulate_city(scale.simulation)
    train_set, test_set = FeatureBuilder(dataset, scale.features).build()

    model = AdvancedDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings,
        dropout=0.1, seed=0,
    )
    trainer = Trainer(model, TrainingConfig(epochs=6, best_k=3, seed=0))
    trainer.fit(train_set, eval_set=test_set)

    predictor = GapPredictor.from_training(
        trainer, dataset, scale.features, train_set
    )

    test_days = sorted(set(int(d) for d in test_set.day_ids))
    timeslots = [8 * 60, 12 * 60, 19 * 60]  # morning rush, midday, evening rush
    print(
        "Backtesting days", test_days, "at",
        ", ".join(format_timeslot(t) for t in timeslots),
    )
    report = run_backtest(predictor, days=test_days, timeslots=timeslots)

    per_day = report.per_day_rmse()
    print(
        format_table(
            ["Day", "Weekday", "RMSE"],
            [
                [day, dataset.calendar.weekday_name(day), per_day[day]]
                for day in test_days
            ],
            title="Per-day dispatch error",
        )
    )
    print(f"\nOverall MAE  {report.overall_mae():.2f}")
    print(f"Overall RMSE {report.overall_rmse():.2f}")
    print(f"Top-3 hit rate        {report.mean_top_k_hit_rate(3):.0%}")
    print(f"Mean rank correlation {report.mean_rank_correlation():.2f}")


if __name__ == "__main__":
    main()
