"""Fleet rebalancing: use gap predictions to dispatch drivers in advance.

The paper's motivation (Section I): "Based on the prediction, we can
balance the supply-demands by scheduling the drivers in advance."  This
example trains an advanced DeepSD model plus a P10/P50/P90 quantile head,
predicts the next-interval gap for every area at a rush-hour timeslot, and
greedily proposes driver moves from surplus areas to the riskiest areas —
ranked by the P90 upper bound, not the point estimate, because stranding a
passenger (gap above forecast) costs more than an idle driver (gap below).

    python examples/fleet_rebalancing.py
"""

import numpy as np

from repro.city import format_timeslot, simulate_city
from repro.config import tiny_scale
from repro.core import AdvancedDeepSD, Trainer, TrainingConfig, fit_quantile_head
from repro.eval import format_table
from repro.features import FeatureBuilder


def propose_moves(predicted_gaps: np.ndarray, n_drivers: int = 20) -> list:
    """Greedy dispatch: send idle drivers to the largest predicted gaps.

    Each move covers one predicted unserved request, sourced from the areas
    with the smallest predicted gaps (the relative surplus).  Pass the P90
    series to dispatch against risk instead of the median outcome.
    """
    gaps = np.maximum(predicted_gaps, 0.0).copy()
    sources = [int(a) for a in np.argsort(gaps)[: max(1, len(gaps) // 2)]]
    targets_pool = np.array([a for a in range(len(gaps)) if a not in sources])
    moves = []
    for _ in range(n_drivers):
        target = int(targets_pool[np.argmax(gaps[targets_pool])])
        if gaps[target] < 1.0:
            break
        source = sources[len(moves) % len(sources)]
        moves.append((source, target))
        gaps[target] -= 1.0
    return moves


def main() -> None:
    scale = tiny_scale()
    dataset = simulate_city(scale.simulation)
    train_set, test_set = FeatureBuilder(dataset, scale.features).build()

    model = AdvancedDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings,
        dropout=0.1, seed=0,
    )
    trainer = Trainer(model, TrainingConfig(epochs=6, best_k=3, seed=0))
    trainer.fit(train_set, eval_set=test_set)
    head = fit_quantile_head(trainer, train_set, epochs=80)
    predictions = trainer.predict(test_set)

    # Pick the busiest evening timeslot on the first test day.
    day = int(test_set.day_ids.min())
    slots = np.unique(test_set.time_ids)
    evening = slots[np.argmin(np.abs(slots - 19 * 60))]
    mask = (test_set.day_ids == day) & (test_set.time_ids == evening)

    area_ids = test_set.area_ids[mask]
    predicted = predictions[mask]
    actual = test_set.gaps[mask]
    bands = [head.intervals(float(gap), int(evening)) for gap in predicted]
    p90 = np.array([band["p90"] for band in bands])

    order = np.argsort(p90)[::-1]
    print(
        format_table(
            ["Area", "P10", "Predicted gap", "P90", "Actual gap"],
            [
                [
                    f"A{int(area_ids[i])}",
                    bands[i]["p10"],
                    float(predicted[i]),
                    bands[i]["p90"],
                    float(actual[i]),
                ]
                for i in order
            ],
            title=(
                f"Predicted supply-demand gaps, day {day}, "
                f"{format_timeslot(int(evening))}-{format_timeslot(int(evening) + 10)}"
            ),
        )
    )

    # Dispatch against the P90 upper bound: cover the worst plausible gap,
    # not the median one.
    moves = propose_moves(p90, n_drivers=15)
    print(f"\nProposed {len(moves)} pre-emptive driver moves (P90 risk dispatch):")
    for source, target in moves:
        print(f"  move one idle driver: A{area_ids[source]} -> A{area_ids[target]}")

    covered = min(len(moves), float(np.maximum(actual, 0).sum()))
    print(
        f"\nIf predictions hold, up to {covered:.0f} otherwise-unserved "
        "requests get a driver."
    )


if __name__ == "__main__":
    main()
