"""Extendability: add new data sources to a trained model by fine-tuning.

Section V-C of the paper: when weather/traffic data becomes available, the
residual block structure lets you bolt new blocks onto an already-trained
model and fine-tune, instead of re-training from scratch.  This example
measures both strategies' learning curves (the paper's Fig. 16).

    python examples/extend_with_new_data.py
"""

from repro.city import simulate_city
from repro.config import tiny_scale
from repro.core import AdvancedDeepSD, Trainer, TrainingConfig
from repro.eval import format_table
from repro.features import FeatureBuilder


def make_model(dataset, scale, seed, **kwargs):
    return AdvancedDeepSD(
        dataset.n_areas,
        scale.features.window_minutes,
        scale.embeddings,
        dropout=0.1,
        seed=seed,
        **kwargs,
    )


def main() -> None:
    scale = tiny_scale()
    dataset = simulate_city(scale.simulation)
    train_set, test_set = FeatureBuilder(dataset, scale.features).build()

    # Phase 1: train with the order data only (no environment blocks yet).
    base = make_model(dataset, scale, seed=0, use_weather=False, use_traffic=False)
    Trainer(base, TrainingConfig(epochs=5, best_k=2, seed=0)).fit(train_set)
    print("Phase 1 done: advanced model trained on order data only.")

    # Phase 2a: weather + traffic arrive — fine-tune.  The grown model
    # loads every shared block's weights; only the new environment blocks
    # start fresh.
    finetuned = make_model(dataset, scale, seed=1)
    finetuned.load_state_dict(base.state_dict(), strict=False)
    finetune_history = Trainer(
        finetuned, TrainingConfig(epochs=5, best_k=2, seed=1)
    ).fit(train_set, eval_set=test_set)

    # Phase 2b: the alternative — re-train everything from scratch.
    fresh = make_model(dataset, scale, seed=1)
    retrain_history = Trainer(
        fresh, TrainingConfig(epochs=5, best_k=2, seed=1)
    ).fit(train_set, eval_set=test_set)

    rows = []
    for epoch in range(len(finetune_history.train_loss)):
        rows.append(
            [
                epoch + 1,
                finetune_history.train_loss[epoch],
                retrain_history.train_loss[epoch],
                finetune_history.eval_rmse[epoch],
                retrain_history.eval_rmse[epoch],
            ]
        )
    print(
        format_table(
            ["epoch", "finetune loss", "retrain loss", "finetune RMSE", "retrain RMSE"],
            rows,
            title="Fine-tuning vs re-training after adding environment blocks",
        )
    )
    advantage = retrain_history.train_loss[0] - finetune_history.train_loss[0]
    print(f"\nEpoch-1 loss advantage of fine-tuning: {advantage:.2f}")
    assert advantage > 0, "fine-tuning should start far ahead of re-training"


if __name__ == "__main__":
    main()
