"""Regression losses for training DeepSD and measuring its error.

The paper evaluates with MAE and RMSE (Section VI-A1) and trains the network
end-to-end against the scalar gap target.  We provide MSE (the natural
training loss for RMSE), MAE, and Huber as a robust alternative.
"""

from __future__ import annotations

from .tensor import Tensor

__all__ = ["mse_loss", "mae_loss", "huber_loss", "pinball_loss", "quantile_loss", "get"]


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error ``mean((pred - target)^2)``."""
    diff = pred - Tensor.ensure(target)
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error ``mean(|pred - target|)``."""
    diff = pred - Tensor.ensure(target)
    return diff.abs().mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Useful for the gap target, whose distribution is approximately power-law
    with occasional very large values (Section VI-A).
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    diff = (pred - Tensor.ensure(target)).abs()
    # min(diff, delta) implemented via clip: quad = diff - max(diff - delta, 0)
    excess = (diff - delta).clip_min(0.0)
    quadratic = diff - excess
    return (quadratic * quadratic * 0.5 + excess * delta).mean()


def pinball_loss(pred: Tensor, target: Tensor, quantile: float = 0.5) -> Tensor:
    """Pinball (quantile) loss: train a model to predict a target quantile.

    For a dispatcher, the conditional *median or mean* gap understates risk:
    sending drivers for the P80 gap hedges against surges.  Minimising
    ``mean(max(q·e, (q−1)·e))`` with ``e = target − pred`` makes the model
    estimate the q-th conditional quantile.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    error = Tensor.ensure(target) - pred
    # max(q·e, (q−1)·e) = (q−1)·e + max(e, 0)
    return ((quantile - 1.0) * error + error.clip_min(0.0)).mean()


def quantile_loss(quantile: float):
    """Factory: a loss function pinned to one quantile (for TrainingConfig)."""
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")

    def loss(pred: Tensor, target: Tensor) -> Tensor:
        return pinball_loss(pred, target, quantile)

    loss.__name__ = f"pinball_q{quantile:g}"
    return loss


_NAMED = {"mse": mse_loss, "mae": mae_loss, "huber": huber_loss}


def get(name_or_fn):
    """Resolve a loss by name or pass callables through.

    Names are ``"mse"`` / ``"mae"`` / ``"huber"``, or ``"pinball@<q>"``
    (e.g. ``"pinball@0.9"``) for a quantile loss that survives config
    round-trips — a ``quantile_loss(q)`` callable serializes only by name,
    so checkpoints store the spelled-out form instead.
    """
    if callable(name_or_fn):
        return name_or_fn
    if isinstance(name_or_fn, str) and name_or_fn.startswith("pinball@"):
        try:
            quantile = float(name_or_fn[len("pinball@"):])
        except ValueError:
            raise ValueError(
                f"malformed pinball loss name {name_or_fn!r}; "
                "expected 'pinball@<quantile>' like 'pinball@0.9'"
            ) from None
        return quantile_loss(quantile)
    try:
        return _NAMED[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown loss {name_or_fn!r}; known: {sorted(_NAMED)} "
            "or 'pinball@<quantile>'"
        ) from None
