"""Taped execution: trace a model once, replay it as flat preallocated numpy calls.

The module-dispatch forward pass (``model(batch)``) spends most of its time in
Python object churn — Tensor wrappers, closure allocation, broadcasting checks —
rather than in the underlying BLAS/ufunc work.  For fixed input shapes the
sequence of numpy calls is identical every minibatch, so we record it once (via
the op recorder in :mod:`repro.nn.tensor`) and compile it into an
*execution tape*: an ordered list of zero-argument callables, each performing
one preallocated numpy operation (``np.matmul(a, b, out=o)``, in-place
activations, masked copies).  Replay allocates nothing and builds no graph.

Two tapes are provided:

* :class:`TrainingTape` — forward + backward + gradient binding for one
  minibatch shape.  Float64 only, bitwise-identical to module dispatch
  (including dropout RNG consumption and gradient accumulation order).
* :class:`ForwardTape` — inference-only forward at a fixed row count
  (:data:`~repro.nn.tensor.INVARIANT_BLOCK` for serving).  Supports an opt-in
  ``dtype="float32"`` mode that trades bitwise parity for throughput.

Bitwise parity is achieved by *mirroring*, not re-deriving: every emitted step
performs the exact numpy expression the module path performs, in the same
evaluation order, merely redirected into a preallocated output buffer.  Models
whose forward allocates fresh non-constant arrays per call (e.g. one-hot
identity encodings) cannot be taped and raise :class:`TapeUnsupported`;
callers fall back to module dispatch.
"""

from __future__ import annotations

import copy

import numpy as np

from .layers.dropout import Dropout
from .tensor import INVARIANT_BLOCK, Tensor, batch_invariant_enabled, trace_ops

__all__ = ["TapeUnsupported", "TrainingTape", "ForwardTape"]


class TapeUnsupported(RuntimeError):
    """The traced graph contains something the tape compiler cannot replay."""


def _root(array):
    """Walk the view chain to the array that owns the memory."""
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


def _pow_step(base, exponent, out):
    """Mirror numpy's fast scalar-power paths so results stay bitwise equal."""
    if exponent == 2.0:
        return lambda: np.square(base, out=out)
    if exponent == 1.0:
        return lambda: np.copyto(out, base)
    if exponent == 0.5:
        return lambda: np.sqrt(base, out=out)
    if exponent == -1.0:
        return lambda: np.reciprocal(base, out=out)
    if exponent == 0.0:
        return lambda: out.fill(1.0)
    return lambda: np.power(base, exponent, out=out)


class _Ready:
    """A slot whose pre-broadcast gradient already exists as ``array``."""

    __slots__ = ("array",)

    def __init__(self, array):
        self.array = array


class _EmitSlot:
    """A slot whose pre-broadcast gradient must be computed into a buffer."""

    __slots__ = ("shape", "emit")

    def __init__(self, shape, emit):
        self.shape = shape
        self.emit = emit


class _Compiler:
    """Compile a list of :class:`OpRecord` into flat forward/backward steps."""

    def __init__(self, records, owned_buffers, *, dtype=None, training=False):
        self.records = records
        self.owned_ids = {id(buf) for buf in owned_buffers}
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.training = training
        self.fwd = []
        self.bwd = []
        # id(traced array-or-scalar) -> array used on replay.  In float64 mode
        # traced arrays are reused in place; float32 mode re-materializes every
        # float64 intermediate at reduced precision.
        self.amap = {}
        self.param_arrays = []  # (param Tensor, replay array) in trace order
        self.param_binds = []  # (param Tensor, grad buffer) after backward
        self.rngs = []  # dropout generators consumed on replay
        self._gbufs = {}  # id(tensor) -> gradient buffer (backward compile)
        # Leaf gradients are packed into one contiguous arena so the
        # optimizer can update every parameter with a handful of flat
        # ufunc calls instead of ~10 tiny ones per parameter.
        self.grad_arena = None
        self.grad_slices = []  # (leaf Tensor, offset, size) in packing order
        self._leaf_views = {}
        self._seen_params = set()
        # Keep traced outputs alive: amap keys are id()s of these objects.
        self._pins = [r.out.data for r in records]

    # ------------------------------------------------------------------
    # buffer resolution

    def _out_buffer(self, rec):
        data = rec.out.data
        if isinstance(data, np.ndarray):
            if self.dtype is not None and data.dtype == np.float64:
                buf = np.empty(data.shape, dtype=self.dtype)
            else:
                buf = data
        else:
            # Full reductions store numpy scalars; replay needs a writable
            # 0-d buffer (scalar-vs-0-d arithmetic is bitwise identical).
            target = np.asarray(data).dtype
            if self.dtype is not None and target == np.float64:
                target = self.dtype
            buf = np.empty((), dtype=target)
        self.amap[id(data)] = buf
        return buf

    def _resolve(self, tensor):
        data = tensor.data
        key = id(data)
        if key in self.amap:
            return self.amap[key]
        if tensor.requires_grad:
            # Parameter leaf: replay reads the live parameter array (float64)
            # or a refreshable reduced-precision copy (float32 mode).
            if self.dtype is not None and data.dtype == np.float64:
                arr = data.astype(self.dtype)
            else:
                arr = data
            self.amap[key] = arr
            if id(tensor) not in self._seen_params:
                self._seen_params.add(id(tensor))
                self.param_arrays.append((tensor, arr))
            return arr
        if isinstance(data, np.ndarray) and id(_root(data)) in self.owned_ids:
            # View of an input buffer the tape owns and refills.
            self.amap[key] = data
            return data
        if np.size(data) == 1:
            # Single-element leaf: a frozen constant baked into the tape.
            arr = np.asarray(data)
            if self.dtype is not None and arr.dtype == np.float64:
                arr = arr.astype(self.dtype)
            self.amap[key] = arr
            return arr
        raise TapeUnsupported(
            "forward pass consumed a non-constant array the tape does not "
            f"own (shape {np.shape(data)}); cannot replay safely"
        )

    def _replay(self, tensor):
        """Replay array for a tensor already resolved during forward compile."""
        return self.amap[id(tensor.data)]

    # ------------------------------------------------------------------
    # forward compile

    def compile_forward(self):
        for rec in self.records:
            emitter = getattr(self, "_fwd_" + rec.kind, None)
            if emitter is None:
                raise TapeUnsupported(f"unsupported traced op {rec.kind!r}")
            emitter(rec)

    def _binary(self, rec, ufunc):
        a = self._resolve(rec.parents[0])
        b = self._resolve(rec.parents[1])
        o = self._out_buffer(rec)
        self.fwd.append(lambda u=ufunc, a=a, b=b, o=o: u(a, b, out=o))
        return a, b, o

    def _unary(self, rec, ufunc):
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        self.fwd.append(lambda u=ufunc, a=a, o=o: u(a, out=o))
        return a, o

    def _fwd_add(self, rec):
        self._binary(rec, np.add)

    def _fwd_sub(self, rec):
        self._binary(rec, np.subtract)

    def _fwd_mul(self, rec):
        self._binary(rec, np.multiply)

    def _fwd_div(self, rec):
        self._binary(rec, np.divide)

    def _fwd_neg(self, rec):
        self._unary(rec, np.negative)

    def _fwd_exp(self, rec):
        self._unary(rec, np.exp)

    def _fwd_log(self, rec):
        self._unary(rec, np.log)

    def _fwd_abs(self, rec):
        a, o = self._unary(rec, np.absolute)
        if self.training:
            sign = np.empty(np.shape(a), dtype=np.asarray(a).dtype)
            self.fwd.append(lambda a=a, s=sign: np.sign(a, out=s))
            self._aux(rec)["sign"] = sign

    def _fwd_pow(self, rec):
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        self.fwd.append(_pow_step(a, float(rec.params["exponent"]), o))

    def _fwd_clip_min(self, rec):
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        minimum = rec.params["minimum"]
        self.fwd.append(lambda a=a, m=minimum, o=o: np.maximum(a, m, out=o))
        if self.training:
            mask = np.empty(np.shape(a), dtype=np.asarray(a).dtype)
            cond = np.empty(np.shape(a), dtype=bool)

            def step(a=a, m=minimum, mask=mask, cond=cond):
                np.greater(a, m, out=cond)
                np.copyto(mask, cond, casting="unsafe")

            self.fwd.append(step)
            self._aux(rec)["mask"] = mask

    def _fwd_matmul(self, rec):
        a = self._resolve(rec.parents[0])
        b = self._resolve(rec.parents[1])
        if np.ndim(a) != 2 or np.ndim(b) != 2:
            raise TapeUnsupported("only 2-D matmul can be taped")
        o = self._out_buffer(rec)
        self.fwd.append(lambda a=a, b=b, o=o: np.matmul(a, b, out=o))

    def _map_view(self, rec, make_view):
        """Map a view-producing op's output to a live view of the replay array.

        If re-applying the view op copies (non-contiguous reshape), emit a
        per-replay copy step instead.
        """
        parent = rec.parents[0]
        a = self._resolve(parent)
        produced = make_view(a)
        data = rec.out.data
        if not np.shares_memory(produced, a):
            self.fwd.append(lambda a=a, o=produced, mv=make_view: np.copyto(o, mv(a)))
        self.amap[id(data)] = produced

    def _fwd_reshape(self, rec):
        shape = rec.params["shape"]
        self._map_view(rec, lambda arr, s=shape: arr.reshape(s))

    def _fwd_transpose(self, rec):
        self._map_view(rec, lambda arr: arr.T)

    def _fwd_slice_cols(self, rec):
        start, stop = rec.params["start"], rec.params["stop"]
        self._map_view(rec, lambda arr, a=start, b=stop: arr[:, a:b])

    def _fwd_gather_rows(self, rec):
        indices = rec.params["indices"]
        if id(_root(indices)) not in self.owned_ids:
            raise TapeUnsupported(
                "gather_rows indices are not a view of a tape-owned input buffer"
            )
        table = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        self.fwd.append(lambda t=table, i=indices, o=o: np.take(t, i, axis=0, out=o))

    def _fwd_sum(self, rec):
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        axis = rec.params["axis"]
        keepdims = rec.params["keepdims"]
        self.fwd.append(
            lambda a=a, o=o, ax=axis, kd=keepdims: np.sum(a, axis=ax, keepdims=kd, out=o)
        )

    def _fwd_concat(self, rec):
        axis = rec.params["axis"]
        offsets = rec.params["offsets"]
        parts = [self._resolve(p) for p in rec.parents]
        o = self._out_buffer(rec)
        pairs = []
        for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            index = [slice(None)] * o.ndim
            index[axis] = slice(start, stop)
            pairs.append((o[tuple(index)], part))

        def step(pairs=tuple(pairs)):
            for dest, src in pairs:
                np.copyto(dest, src)

        self.fwd.append(step)

    def _fwd_leaky_relu(self, rec):
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        slope = rec.params["negative_slope"]
        positive = np.empty(np.shape(a), dtype=bool)

        def step(a=a, o=o, s=slope, pos=positive):
            np.multiply(a, s, out=o)
            np.greater(a, 0, out=pos)
            np.copyto(o, a, where=pos)

        self.fwd.append(step)
        if self.training:
            # np.where(x > 0, 1.0, slope) is float64 regardless of x.dtype.
            sbuf = np.empty(np.shape(a), dtype=np.float64)

            def slope_step(s=slope, sbuf=sbuf, pos=positive):
                sbuf.fill(s)
                np.copyto(sbuf, 1.0, where=pos)

            self.fwd.append(slope_step)
            self._aux(rec)["slope"] = sbuf

    def _fwd_softmax(self, rec):
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        axis = rec.params["axis"]
        red_shape = list(o.shape)
        red_shape[axis] = 1
        mx = np.empty(red_shape, dtype=o.dtype)
        sm = np.empty(red_shape, dtype=o.dtype)

        def step(a=a, o=o, ax=axis, mx=mx, sm=sm):
            np.amax(a, axis=ax, keepdims=True, out=mx)
            np.subtract(a, mx, out=o)
            np.exp(o, out=o)
            np.sum(o, axis=ax, keepdims=True, out=sm)
            np.divide(o, sm, out=o)

        self.fwd.append(step)

    def _fwd_dropout(self, rec):
        if self.dtype is not None:
            raise TapeUnsupported("float32 tapes do not support dropout")
        a = self._resolve(rec.parents[0])
        o = self._out_buffer(rec)
        p = rec.params["p"]
        rng = rec.params["rng"]
        keep = 1.0 - p
        raw = np.empty(np.shape(a), dtype=np.float64)
        below = np.empty(np.shape(a), dtype=bool)
        mask = np.empty(np.shape(a), dtype=np.asarray(a).dtype)

        def step(a=a, o=o, k=keep, rng=rng, raw=raw, below=below, mask=mask):
            rng.random(out=raw)
            np.less(raw, k, out=below)
            np.copyto(mask, below, casting="unsafe")
            np.divide(mask, k, out=mask)
            np.multiply(a, mask, out=o)

        self.fwd.append(step)
        self.rngs.append(rng)
        self._aux(rec)["mask"] = mask

    def _aux(self, rec):
        key = id(rec.out.data)
        store = getattr(self, "_aux_store", None)
        if store is None:
            store = self._aux_store = {}
        return store.setdefault(key, {})

    def _get_aux(self, rec):
        return getattr(self, "_aux_store", {}).get(id(rec.out.data), {})

    # ------------------------------------------------------------------
    # backward compile

    def compile_backward(self, loss):
        order = loss._topological_order()
        rec_by_out = {id(r.out): r for r in self.records}

        # Pass 1: count gradient contributions per tensor so single-use
        # interior views can alias their consumer's buffer safely.
        counts = {}
        reachable = {id(loss)}
        for node in order:
            if id(node) not in reachable:
                continue
            rec = rec_by_out.get(id(node))
            if rec is None:
                continue
            for parent in rec.parents:
                if parent.requires_grad:
                    counts[id(parent)] = counts.get(id(parent), 0) + 1
                    reachable.add(id(parent))

        # Pack every reachable leaf's gradient into one contiguous arena.
        # The views are the same shape and C-order as dedicated buffers, so
        # every emitted step (and clip/Adam afterwards) is bitwise
        # unaffected — only the memory layout is consolidated.
        leaves = [
            node
            for node in order
            if counts.get(id(node)) and rec_by_out.get(id(node)) is None
        ]
        total = int(sum(np.size(node.data) for node in leaves))
        self.grad_arena = np.empty(total, dtype=np.float64)
        offset = 0
        for node in leaves:
            size = int(np.size(node.data))
            view = self.grad_arena[offset:offset + size].reshape(
                np.shape(node.data)
            )
            self._leaf_views[id(node)] = view
            self.grad_slices.append((node, offset, size))
            offset += size

        seed = np.ones(np.shape(loss.data), dtype=np.float64)
        self._gbufs[id(loss)] = seed
        for node in order:
            g = self._gbufs.get(id(node))
            if g is None:
                continue
            rec = rec_by_out.get(id(node))
            if rec is None:
                continue  # leaf; parameter grads are bound after the loop
            slots = self._slots(rec, g)
            for parent, spec in zip(rec.parents, slots):
                if not parent.requires_grad:
                    continue
                # Aliasing a view of the consumer's buffer is safe only for
                # interior nodes receiving exactly one contribution: leaves
                # need dedicated buffers (optimizers mutate .grad in place).
                alias_ok = (
                    counts.get(id(parent), 0) == 1
                    and rec_by_out.get(id(parent)) is not None
                )
                self._contribute(parent, spec, alias_ok)

        for node in order:
            if node.requires_grad and rec_by_out.get(id(node)) is None:
                grad = self._gbufs.get(id(node))
                self.param_binds.append((node, grad))

    def _grad_buffer(self, key, shape):
        """First-contribution destination: the packed arena view for leaves,
        a dedicated buffer for interior nodes."""
        view = self._leaf_views.get(key)
        return view if view is not None else np.empty(shape, dtype=np.float64)

    def _contribute(self, parent, spec, alias_ok):
        key = id(parent)
        pshape = np.shape(parent.data)
        first = key not in self._gbufs
        if isinstance(spec, _Ready):
            arr = spec.array
            if first:
                if arr.shape == pshape and alias_ok:
                    self._gbufs[key] = arr
                    return
                dest = self._grad_buffer(key, pshape)
                self._gbufs[key] = dest
                if arr.shape == pshape:
                    self.bwd.append(lambda d=dest, s=arr: np.copyto(d, s))
                else:
                    self._emit_unbroadcast(arr, pshape, dest)
            else:
                dest = self._gbufs[key]
                if arr.shape == pshape:
                    self.bwd.append(lambda d=dest, s=arr: np.add(d, s, out=d))
                else:
                    scratch = np.empty(pshape, dtype=np.float64)
                    self._emit_unbroadcast(arr, pshape, scratch)
                    self.bwd.append(lambda d=dest, s=scratch: np.add(d, s, out=d))
            return
        # computed slot
        if first:
            dest = self._grad_buffer(key, pshape)
            self._gbufs[key] = dest
            target = dest
        else:
            target = np.empty(pshape, dtype=np.float64)
        if spec.shape == pshape:
            spec.emit(target)
        else:
            pre = np.empty(spec.shape, dtype=np.float64)
            spec.emit(pre)
            self._emit_unbroadcast(pre, pshape, target)
        if not first:
            dest = self._gbufs[key]
            self.bwd.append(lambda d=dest, s=target: np.add(d, s, out=d))

    def _emit_unbroadcast(self, src, shape, dest):
        """Mirror ``Tensor._unbroadcast``: staged axis sums into ``dest``."""
        extra = src.ndim - len(shape)
        if extra > 0:
            inter_shape = src.shape[extra:]
            lead_axes = tuple(range(extra))
            rest_axes = tuple(
                i for i, n in enumerate(shape) if n == 1 and inter_shape[i] != 1
            )
            if rest_axes:
                stage = np.empty(inter_shape, dtype=np.float64)
                self.bwd.append(
                    lambda s=src, a=lead_axes, o=stage: np.sum(s, axis=a, out=o)
                )
                kd_shape = tuple(
                    1 if i in rest_axes else n for i, n in enumerate(inter_shape)
                )
                view = dest.reshape(kd_shape)
                self.bwd.append(
                    lambda s=stage, a=rest_axes, o=view: np.sum(
                        s, axis=a, keepdims=True, out=o
                    )
                )
            else:
                view = dest.reshape(inter_shape)
                self.bwd.append(
                    lambda s=src, a=lead_axes, o=view: np.sum(s, axis=a, out=o)
                )
            return
        rest_axes = tuple(
            i for i, n in enumerate(shape) if n == 1 and src.shape[i] != 1
        )
        if rest_axes:
            kd_shape = tuple(1 if i in rest_axes else n for i, n in enumerate(src.shape))
            view = dest.reshape(kd_shape)
            self.bwd.append(
                lambda s=src, a=rest_axes, o=view: np.sum(s, axis=a, keepdims=True, out=o)
            )
        else:
            # Same size, possibly different ndim: copy through a contiguous
            # view of dest so a non-contiguous src never forces a compile-time
            # copy.
            view = dest.reshape(src.shape)
            self.bwd.append(lambda d=view, s=src: np.copyto(d, s))

    # ---- per-op slot specs (pre-broadcast gradients, in parent order) ----

    def _slots(self, rec, g):
        return getattr(self, "_bwd_" + rec.kind)(rec, g)

    def _bwd_add(self, rec, g):
        return [_Ready(g), _Ready(g)]

    def _bwd_sub(self, rec, g):
        return [
            _Ready(g),
            _EmitSlot(g.shape, lambda d, g=g: self.bwd.append(
                lambda g=g, d=d: np.negative(g, out=d)
            )),
        ]

    def _bwd_mul(self, rec, g):
        a = self._replay(rec.parents[0])
        b = self._replay(rec.parents[1])
        return [
            _EmitSlot(g.shape, lambda d, g=g, b=b: self.bwd.append(
                lambda g=g, b=b, d=d: np.multiply(g, b, out=d)
            )),
            _EmitSlot(g.shape, lambda d, g=g, a=a: self.bwd.append(
                lambda g=g, a=a, d=d: np.multiply(g, a, out=d)
            )),
        ]

    def _bwd_div(self, rec, g):
        a = self._replay(rec.parents[0])
        b = self._replay(rec.parents[1])

        def emit_other(d, g=g, a=a, b=b):
            bsq = np.empty(np.shape(b), dtype=np.float64)

            def step(g=g, a=a, b=b, d=d, bsq=bsq):
                np.negative(g, out=d)
                np.multiply(d, a, out=d)
                np.square(b, out=bsq)
                np.divide(d, bsq, out=d)

            self.bwd.append(step)

        return [
            _EmitSlot(g.shape, lambda d, g=g, b=b: self.bwd.append(
                lambda g=g, b=b, d=d: np.divide(g, b, out=d)
            )),
            _EmitSlot(g.shape, emit_other),
        ]

    def _bwd_neg(self, rec, g):
        return [
            _EmitSlot(g.shape, lambda d, g=g: self.bwd.append(
                lambda g=g, d=d: np.negative(g, out=d)
            )),
        ]

    def _bwd_pow(self, rec, g):
        a = self._replay(rec.parents[0])
        exponent = float(rec.params["exponent"])

        def emit(d, g=g, a=a, e=exponent):
            powered = np.empty(np.shape(a), dtype=np.float64)
            self.bwd.append(_pow_step(a, e - 1.0, powered))

            def step(g=g, e=e, p=powered, d=d):
                np.multiply(g, e, out=d)
                np.multiply(d, p, out=d)

            self.bwd.append(step)

        return [_EmitSlot(g.shape, emit)]

    def _bwd_matmul(self, rec, g):
        a = self._replay(rec.parents[0])
        b = self._replay(rec.parents[1])
        bT, aT = b.T, a.T
        return [
            _EmitSlot(np.shape(a), lambda d, g=g, bT=bT: self.bwd.append(
                lambda g=g, bT=bT, d=d: np.matmul(g, bT, out=d)
            )),
            _EmitSlot(np.shape(b), lambda d, g=g, aT=aT: self.bwd.append(
                lambda aT=aT, g=g, d=d: np.matmul(aT, g, out=d)
            )),
        ]

    def _bwd_reshape(self, rec, g):
        original = rec.params["original"]
        view = g.reshape(original)
        if np.shares_memory(view, g):
            return [_Ready(view)]

        # g is a non-contiguous alias; reshape copied.  Copy live each replay
        # through a contiguous view of the destination instead.
        def emit(d, g=g):
            dview = d.reshape(g.shape)
            self.bwd.append(lambda o=dview, s=g: np.copyto(o, s))

        return [_EmitSlot(original, emit)]

    def _bwd_transpose(self, rec, g):
        return [_Ready(g.T)]

    def _bwd_slice_cols(self, rec, g):
        start, stop = rec.params["start"], rec.params["stop"]

        def emit(d, g=g, start=start, stop=stop):
            window = d[:, start:stop]

            def step(d=d, w=window, g=g):
                d.fill(0.0)
                np.copyto(w, g)

            self.bwd.append(step)

        return [_EmitSlot(np.shape(rec.parents[0].data), emit)]

    def _bwd_gather_rows(self, rec, g):
        indices = rec.params["indices"]

        def emit(d, g=g, idx=indices):
            def step(d=d, idx=idx, g=g):
                d.fill(0.0)
                np.add.at(d, idx, g)

            self.bwd.append(step)

        return [_EmitSlot(np.shape(rec.parents[0].data), emit)]

    def _bwd_sum(self, rec, g):
        axis = rec.params["axis"]
        keepdims = rec.params["keepdims"]
        parent_shape = np.shape(rec.parents[0].data)

        def emit(d, g=g, axis=axis, keepdims=keepdims):
            src = np.asarray(g)
            if axis is not None and not keepdims:
                expanded = list(src.shape)
                for ax in (axis,) if np.isscalar(axis) else sorted(axis):
                    expanded.insert(ax if ax >= 0 else len(expanded) + 1 + ax, 1)
                src = src.reshape(expanded)
            self.bwd.append(lambda d=d, s=src: np.copyto(d, s))

        return [_EmitSlot(parent_shape, emit)]

    def _bwd_abs(self, rec, g):
        sign = self._get_aux(rec)["sign"]
        return [
            _EmitSlot(g.shape, lambda d, g=g, s=sign: self.bwd.append(
                lambda g=g, s=s, d=d: np.multiply(g, s, out=d)
            )),
        ]

    def _bwd_exp(self, rec, g):
        out = self._replay(rec.out)
        return [
            _EmitSlot(g.shape, lambda d, g=g, o=out: self.bwd.append(
                lambda g=g, o=o, d=d: np.multiply(g, o, out=d)
            )),
        ]

    def _bwd_log(self, rec, g):
        a = self._replay(rec.parents[0])
        return [
            _EmitSlot(g.shape, lambda d, g=g, a=a: self.bwd.append(
                lambda g=g, a=a, d=d: np.divide(g, a, out=d)
            )),
        ]

    def _bwd_clip_min(self, rec, g):
        mask = self._get_aux(rec)["mask"]
        return [
            _EmitSlot(g.shape, lambda d, g=g, m=mask: self.bwd.append(
                lambda g=g, m=m, d=d: np.multiply(g, m, out=d)
            )),
        ]

    def _bwd_concat(self, rec, g):
        axis = rec.params["axis"]
        offsets = rec.params["offsets"]
        slots = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            slots.append(_Ready(g[tuple(index)]))
        return slots

    def _bwd_leaky_relu(self, rec, g):
        slope = self._get_aux(rec)["slope"]
        return [
            _EmitSlot(g.shape, lambda d, g=g, s=slope: self.bwd.append(
                lambda g=g, s=s, d=d: np.multiply(g, s, out=d)
            )),
        ]

    def _bwd_softmax(self, rec, g):
        out = self._replay(rec.out)
        axis = rec.params["axis"]

        def emit(d, g=g, out=out, axis=axis):
            scratch = np.empty(out.shape, dtype=np.float64)
            red_shape = list(out.shape)
            red_shape[axis] = 1
            dot = np.empty(red_shape, dtype=np.float64)

            def step(g=g, o=out, ax=axis, t=scratch, dot=dot, d=d):
                np.multiply(g, o, out=t)
                np.sum(t, axis=ax, keepdims=True, out=dot)
                np.subtract(g, dot, out=t)
                np.multiply(o, t, out=d)

            self.bwd.append(step)

        return [_EmitSlot(out.shape, emit)]

    def _bwd_dropout(self, rec, g):
        mask = self._get_aux(rec)["mask"]
        return [
            _EmitSlot(g.shape, lambda d, g=g, m=mask: self.bwd.append(
                lambda g=g, m=m, d=d: np.multiply(g, m, out=d)
            )),
        ]


def _build_refills(template, buffers, divisors):
    """Compile the per-replay input refill: copy (or scale-copy) each field."""
    steps = []
    for name in template:
        buf = buffers[name]
        factor = (divisors or {}).get(name)
        if factor is not None and float(factor) != 1.0:
            steps.append((name, buf, float(factor)))
        else:
            steps.append((name, buf, None))
    return steps


def _run_refills(steps, batch, rows=None):
    for name, buf, factor in steps:
        src = batch[name]
        dest = buf if rows is None else buf[:rows]
        if factor is None:
            np.copyto(dest, src)
        else:
            np.divide(src, factor, out=dest)


class _FusedAdam:
    """Flat-arena mirror of :class:`repro.nn.optim.Adam`.

    The tape packs every leaf gradient into one contiguous float64 arena;
    this runs the textbook Adam update as ~10 ufunc calls over matching
    moment/scratch arenas instead of ~10 calls per parameter.  Every
    operation is elementwise, so each parameter's update is bitwise
    identical to ``Adam.step()`` — only the call count changes.

    The real optimizer's ``_m``/``_v`` entries are rebound to views of the
    moment arenas, so ``state_dict()`` checkpointing (and a later unfused
    ``step()``) keeps working on live values.  ``lr`` and ``_step_count``
    are read from / written to the real optimizer on every step, so
    schedulers and checkpoint resume behave exactly as without fusion.
    """

    def __init__(self, optimizer, arena, slices):
        self.opt = optimizer
        self._garena = arena
        self._m = np.empty_like(arena)
        self._v = np.empty_like(arena)
        self._a = np.empty_like(arena)
        self._b = np.empty_like(arena)
        self._m_binds = []  # (optimizer index, m view, v view)
        self._applies = []  # (param data, update view)
        self._wd = []  # (param data, grad view, wd scratch view)
        by_id = {id(param): (offset, size) for param, offset, size in slices}
        for index, param in enumerate(optimizer.params):
            placement = by_id.get(id(param))
            if placement is None:
                continue
            offset, size = placement
            shape = param.data.shape
            flat = slice(offset, offset + size)
            m_view = self._m[flat].reshape(shape)
            v_view = self._v[flat].reshape(shape)
            np.copyto(m_view, optimizer._m[index])
            np.copyto(v_view, optimizer._v[index])
            optimizer._m[index] = m_view
            optimizer._v[index] = v_view
            self._m_binds.append((index, m_view, v_view))
            self._applies.append((param.data, self._a[flat].reshape(shape)))
            self._wd.append(
                (param.data, arena[flat], self._b[flat].reshape(shape))
            )

    @classmethod
    def build(cls, optimizer, arena, slices, views_by_param):
        """A fused stepper, or None when fusion would change semantics."""
        from .optim import Adam

        if type(optimizer) is not Adam or arena is None or arena.size == 0:
            return None
        for param in optimizer.params:
            if id(param) not in views_by_param and param.grad is not None:
                # A managed parameter outside the tape still carries a
                # gradient; the unfused step would consume it, so bail.
                return None
        return cls(optimizer, arena, slices)

    def is_valid(self):
        """Fusion holds while the optimizer's moment buffers are still the
        arena views (``load_state_dict`` replaces them)."""
        opt = self.opt
        return all(
            opt._m[index] is m_view and opt._v[index] is v_view
            for index, m_view, v_view in self._m_binds
        )

    def step(self):
        opt = self.opt
        opt._step_count += 1
        t = opt._step_count
        bias1 = 1.0 - opt.beta1 ** t
        bias2 = 1.0 - opt.beta2 ** t
        grad = self._garena
        m, v, a, b = self._m, self._v, self._a, self._b
        if opt.weight_decay:
            for data, g_flat, wd_scratch in self._wd:
                np.multiply(data, opt.weight_decay, out=wd_scratch)
                np.add(
                    g_flat.reshape(wd_scratch.shape), wd_scratch, out=wd_scratch
                )
            grad = self._b
        m *= opt.beta1
        np.multiply(grad, 1.0 - opt.beta1, out=a)
        m += a
        v *= opt.beta2
        np.multiply(grad, 1.0 - opt.beta2, out=a)
        a *= grad
        v += a
        np.divide(m, bias1, out=a)
        a *= opt.lr
        np.divide(v, bias2, out=b)
        np.sqrt(b, out=b)
        b += opt.eps
        a /= b
        for data, update in self._applies:
            data -= update


class TrainingTape:
    """Replay one minibatch's forward + backward as flat preallocated numpy.

    Trace once per (model, loss, batch-row-count); afterwards :meth:`step`
    refills the owned input buffers, runs the taped forward and backward, and
    binds ``param.grad`` — bitwise identical to ``loss = loss_fn(model(batch),
    targets); loss.backward()`` with module dispatch, including dropout RNG
    stream consumption.  The caller still runs gradient clipping and the
    optimizer step (both already allocation-free).

    The trace itself *is* the first rehearsal: dropout RNG states are
    snapshotted before tracing and restored afterwards, so the first
    :meth:`step` replay consumes the exact random numbers the trace observed.
    """

    def __init__(self):
        raise TypeError("use TrainingTape.trace(...)")

    @classmethod
    def trace(cls, model, loss_fn, batch, targets, divisors=None):
        if batch_invariant_enabled():
            raise TapeUnsupported("cannot trace a training tape under batch_invariant()")
        buffers = {name: np.zeros_like(value) for name, value in batch.items()}
        refills = _build_refills(batch, buffers, divisors)
        _run_refills(refills, batch)
        target_buf = np.zeros_like(np.asarray(targets, dtype=np.float64))
        np.copyto(target_buf, targets)

        dropouts = [m for m in model.modules() if isinstance(m, Dropout)]
        rng_states = [copy.deepcopy(m.rng_state) for m in dropouts]
        had_scales = hasattr(model, "input_scales")
        saved_scales = getattr(model, "input_scales", None)
        try:
            if had_scales:
                model.input_scales = None
            with trace_ops() as records:
                predictions = model(buffers)
                loss = loss_fn(predictions, Tensor(target_buf))
        finally:
            if had_scales:
                model.input_scales = saved_scales
            for module, state in zip(dropouts, rng_states):
                module.rng_state = state

        owned = list(buffers.values()) + [target_buf]
        compiler = _Compiler(records, owned, training=True)
        compiler.compile_forward()
        compiler.compile_backward(loss)

        self = cls.__new__(cls)
        self.n_rows = len(target_buf)
        self._refills = refills
        self._target_buf = target_buf
        self._fwd = compiler.fwd
        self._bwd = compiler.bwd
        self._param_binds = compiler.param_binds
        self._loss_buf = compiler.amap[id(loss.data)]
        self._param_ids = {id(p.data) for p, _ in compiler.param_arrays}
        self._grad_arena = compiler.grad_arena
        self._grad_slices = compiler.grad_slices
        self._grad_views = {
            id(p): g for p, g in compiler.param_binds if g is not None
        }
        self._clip_scratch = {}  # id(grad view) -> same-shape scratch
        self._fused = None  # _FusedAdam | None (untried) | False (unsupported)
        self._records = records  # pins traced arrays referenced by id in amap
        return self

    def step(self, batch, targets):
        """Run one taped minibatch; returns the loss as a float.

        Equivalent to ``optimizer.zero_grad(); loss = loss_fn(model(batch),
        Tensor(targets)); loss.backward()`` — every parameter's ``.grad`` is
        rebound (or set to ``None`` if unreached), so ``zero_grad`` is not
        needed before calling.
        """
        self.run_forward(batch, targets)
        self.run_backward()
        return float(self._loss_buf)

    def run_forward(self, batch, targets):
        """Refill inputs and run the taped forward; returns the loss float."""
        _run_refills(self._refills, batch)
        np.copyto(self._target_buf, targets)
        for step in self._fwd:
            step()
        return float(self._loss_buf)

    def run_backward(self):
        """Run the taped backward and rebind every parameter's ``.grad``."""
        for step in self._bwd:
            step()
        for param, grad in self._param_binds:
            param.grad = grad

    def run_clip(self, parameters, max_norm):
        """Bitwise mirror of :func:`repro.nn.clip_gradients` without the
        per-parameter temporaries.

        After :meth:`run_backward`, each parameter's ``.grad`` is a view of
        the packed gradient arena; squaring into cached same-shape scratch
        buffers and accumulating the per-parameter sums in the same order
        reproduces the legacy norm (and in-place scaling) exactly.
        """
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        grads = [p.grad for p in parameters if p.grad is not None]
        if not grads:
            return 0.0
        acc = 0.0
        scratch_map = self._clip_scratch
        for grad in grads:
            scratch = scratch_map.get(id(grad))
            if scratch is None:
                scratch = scratch_map[id(grad)] = np.empty_like(grad)
            np.multiply(grad, grad, out=scratch)
            acc += float(scratch.sum())
        total = float(np.sqrt(acc))
        if total > max_norm:
            scale = max_norm / (total + 1e-12)
            for grad in grads:
                grad *= scale
        return total

    def run_optim(self, optimizer):
        """Apply one fused optimizer step; False => caller must step itself.

        Fusion currently covers :class:`~repro.nn.optim.Adam`; anything
        else (or an optimizer whose state was swapped out underneath, e.g.
        by ``load_state_dict``) falls back to the unfused path, which stays
        correct because gradients are bound to ``param.grad`` either way.
        """
        fused = self._fused
        if fused is False:
            return False
        if fused is not None and (
            fused.opt is not optimizer or not fused.is_valid()
        ):
            fused = self._fused = None
        if fused is None:
            fused = _FusedAdam.build(
                optimizer, self._grad_arena, self._grad_slices, self._grad_views
            )
            if fused is None:
                self._fused = False
                return False
            self._fused = fused
        fused.step()
        return True

    def is_valid(self, model):
        """Replay stays valid while the model's parameter arrays are the same
        objects the tape was traced against (in-place optimizers preserve
        them; ``load_state_dict`` copies in place)."""
        return all(id(p.data) in self._param_ids for p in model.parameters())


class ForwardTape:
    """Inference-only tape at a fixed row count (padding-tolerant replay).

    Traced at ``n_rows`` (default :data:`INVARIANT_BLOCK`) *without*
    ``batch_invariant()``: a full-block plain matmul is bitwise identical to
    the blocked invariant matmul, so replaying full 32-row blocks (padding
    short batches with stale-but-valid rows) reproduces the serving path's
    batch-invariant guarantee exactly, while folding the padding into the tape.

    ``dtype="float32"`` re-materializes every float64 intermediate and
    parameter at reduced precision; call :meth:`refresh_params` after weights
    change.  Float32 replay is *not* bitwise — callers opt in per deployment.
    """

    def __init__(self):
        raise TypeError("use ForwardTape.trace(...)")

    @classmethod
    def trace(cls, model, batch, *, n_rows=INVARIANT_BLOCK, divisors=None, dtype=None):
        if batch_invariant_enabled():
            raise TapeUnsupported("cannot trace a forward tape under batch_invariant()")
        if getattr(model, "training", False):
            raise TapeUnsupported("forward tapes require the model in eval mode")
        buffers = {
            name: np.zeros((n_rows,) + np.shape(value)[1:], dtype=np.asarray(value).dtype)
            for name, value in batch.items()
        }
        refills = _build_refills(batch, buffers, divisors)
        seed_rows = min(n_rows, len(next(iter(batch.values()))))
        _run_refills(refills, {k: np.asarray(v)[:seed_rows] for k, v in batch.items()},
                     rows=seed_rows)

        had_scales = hasattr(model, "input_scales")
        saved_scales = getattr(model, "input_scales", None)
        try:
            if had_scales:
                model.input_scales = None
            with trace_ops() as records:
                output = model(buffers)
        finally:
            if had_scales:
                model.input_scales = saved_scales

        compiler = _Compiler(records, buffers.values(), dtype=dtype, training=False)
        compiler.compile_forward()
        out = compiler.amap[id(output.data)]
        if np.shape(out)[:1] != (n_rows,):
            raise TapeUnsupported("model output does not have one row per input row")

        self = cls.__new__(cls)
        self.n_rows = n_rows
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        self._refills = refills
        self._fwd = compiler.fwd
        self._out = out
        self._param_arrays = compiler.param_arrays
        self._shapes = {name: buf.shape[1:] for name, buf in buffers.items()}
        self._records = records  # pins traced arrays referenced by id in amap
        return self

    def matches(self, batch):
        """True if every field's trailing shape matches the traced shapes."""
        if set(batch) != set(self._shapes):
            return False
        return all(
            np.shape(batch[name])[1:] == shape for name, shape in self._shapes.items()
        )

    def replay(self, batch):
        """Run the taped forward on ``batch`` (≤ ``n_rows`` rows).

        Rows past the batch keep their previous (stale but valid) contents;
        every forward op is row-independent, so padded rows cannot contaminate
        live rows.  Returns a view of the first ``len(batch)`` output rows.
        """
        rows = len(next(iter(batch.values())))
        if rows > self.n_rows:
            raise ValueError(f"batch has {rows} rows; tape was traced at {self.n_rows}")
        _run_refills(self._refills, batch, rows=rows)
        for step in self._fwd:
            step()
        return self._out[:rows]

    def refresh_params(self):
        """Re-copy model parameters into the tape's reduced-precision buffers.

        No-op in float64 mode (the tape reads the live parameter arrays)."""
        for param, array in self._param_arrays:
            if array is not param.data:
                np.copyto(array, param.data)

    def is_valid(self, model):
        """Float64 tapes read parameter arrays by identity; invalidated if any
        parameter array was replaced (float32 copies are refreshable instead)."""
        live = {id(p.data) for p in model.parameters()}
        return all(
            id(param.data) in live and (array is param.data or self.dtype != np.float64)
            for param, array in self._param_arrays
        )

    def params_bound(self):
        """Cheap per-replay validity: every traced parameter tensor still
        owns the array the tape reads (float32 tapes re-copy instead, so
        they are always refreshable).

        Unlike :meth:`is_valid` this does not walk the model tree, so it
        cannot see parameters *added* to the model after tracing — no
        in-repo flow grows a model in place (fine-tuning builds a new
        instance), and :meth:`is_valid` still guards the full contract
        when a tape enters a cache.
        """
        if self.dtype != np.float64:
            return True
        return all(array is param.data for param, array in self._param_arrays)
