"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..layers.base import Parameter


class Optimizer:
    """Base class holding a fixed list of parameters to update.

    Subclasses implement :meth:`step`, reading each parameter's ``.grad``
    (populated by ``loss.backward()``) and updating ``.data`` in place.
    """

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        seen = set()
        for param in self.params:
            if id(param) in seen:
                raise ValueError("optimizer received a duplicate parameter")
            seen.add(id(param))

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
