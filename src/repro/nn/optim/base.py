"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..layers.base import Parameter


class Optimizer:
    """Base class holding a fixed list of parameters to update.

    Subclasses implement :meth:`step`, reading each parameter's ``.grad``
    (populated by ``loss.backward()``) and updating ``.data`` in place,
    and :meth:`state_dict` / :meth:`load_state_dict` so a training run can
    be checkpointed and resumed without losing the optimiser's internal
    buffers (Adam moments, SGD velocity, step counts).
    """

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        seen = set()
        for param in self.params:
            if id(param) in seen:
                raise ValueError("optimizer received a duplicate parameter")
            seen.add(id(param))

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the optimiser's mutable state.

        Per-parameter buffers are lists of array copies (one per managed
        parameter, in registration order); everything else is a plain
        scalar.  The ``type`` key names the concrete class so a mismatched
        resume fails loudly instead of silently mixing buffer semantics.
        """
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, object]) -> None:
        raise NotImplementedError

    def _check_state_type(self, state: Dict[str, object]) -> None:
        expected = type(self).__name__
        got = state.get("type", expected)
        if got != expected:
            raise ValueError(
                f"optimizer state type mismatch: checkpoint {got!r}, "
                f"optimizer {expected!r}"
            )

    def _load_buffers(
        self, name: str, values: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Validate and copy one per-parameter buffer list from a state dict."""
        if len(values) != len(self.params):
            raise ValueError(
                f"optimizer buffer {name!r} has {len(values)} entries "
                f"for {len(self.params)} parameters"
            )
        buffers = []
        for index, (param, value) in enumerate(zip(self.params, values)):
            array = np.asarray(value)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"optimizer buffer {name!r}[{index}] shape {array.shape} "
                    f"does not match parameter shape {param.data.shape}"
                )
            buffers.append(array.astype(param.data.dtype).copy())
        return buffers
