"""Optimisers and learning-rate schedules for :mod:`repro.nn`."""

from .adam import Adam
from .base import Optimizer
from .schedulers import ConstantSchedule, CosineDecay, Scheduler, StepDecay
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "Scheduler",
    "ConstantSchedule",
    "StepDecay",
    "CosineDecay",
]
