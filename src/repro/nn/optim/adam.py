"""Adam optimiser (Kingma & Ba, 2014) — the paper's training algorithm.

Section VI-B3: "We apply the Adaptive Moment Estimation (Adam) method to
train our model.  Adam is a robust mini-batch gradient descent algorithm.
We fix the batch size to be 64."
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..layers.base import Parameter
from .base import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Scratch space so step() allocates nothing: the update below is
        # ~9 temporaries per parameter per step without it, and the update
        # runs once per minibatch.
        self._scratch_a = [np.empty_like(p.data) for p in self.params]
        self._scratch_b = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        """One Adam update, written with explicit ``out=`` scratch buffers.

        Each line mirrors a term of the textbook update in the same
        evaluation order, so the arithmetic (and rounding) is identical to
        the naive expression — only the temporary allocations are gone.
        """
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        buffers = zip(self.params, self._m, self._v, self._scratch_a, self._scratch_b)
        for param, m, v, a, b in buffers:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                # grad + weight_decay * data, evaluated in that order.
                np.multiply(param.data, self.weight_decay, out=b)
                np.add(grad, b, out=b)
                grad = b
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=a)
            m += a
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=a)
            a *= grad
            v += a
            # lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(m, bias1, out=a)
            a *= self.lr
            np.divide(v, bias2, out=b)
            np.sqrt(b, out=b)
            b += self.eps
            a /= b
            param.data -= a

    def state_dict(self) -> Dict[str, object]:
        """Moments, step count and hyper-parameters — everything a resumed
        run needs for bitwise-identical updates."""
        return {
            "type": "Adam",
            "step_count": self._step_count,
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._check_state_type(state)
        m: List[np.ndarray] = self._load_buffers("m", state["m"])
        v: List[np.ndarray] = self._load_buffers("v", state["v"])
        self._m = m
        self._v = v
        self._step_count = int(state["step_count"])
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
