"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..layers.base import Parameter
from .base import Optimizer


class SGD(Optimizer):
    """Mini-batch SGD: ``w ← w - lr * g`` with optional classical momentum.

    Kept as the simple baseline optimiser; the paper itself trains with Adam
    (:class:`repro.nn.optim.Adam`).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * grad
                param.data += velocity
            else:
                param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        return {
            "type": "SGD",
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._check_state_type(state)
        self._velocity = self._load_buffers("velocity", state["velocity"])
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
