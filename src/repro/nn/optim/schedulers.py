"""Learning-rate schedules.

The paper trains with a fixed Adam learning rate; schedules are provided as
infrastructure for the longer paper-scale runs, where a gentle decay
stabilises the last epochs.  A scheduler wraps an optimizer and mutates its
``lr`` when :meth:`step` is called (once per epoch).
"""

from __future__ import annotations

import math
from typing import Dict

from .base import Optimizer

__all__ = ["Scheduler", "StepDecay", "CosineDecay", "ConstantSchedule"]


class Scheduler:
    """Base class: tracks the epoch count and the initial learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.initial_lr = float(optimizer.lr)
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate; returns it."""
        self.epoch += 1
        new_lr = self.learning_rate(self.epoch)
        self.optimizer.lr = new_lr
        return new_lr

    def learning_rate(self, epoch: int) -> float:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Epoch counter and base rate — enough to resume any schedule."""
        return {
            "type": type(self).__name__,
            "epoch": self.epoch,
            "initial_lr": self.initial_lr,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        expected = type(self).__name__
        got = state.get("type", expected)
        if got != expected:
            raise ValueError(
                f"scheduler state type mismatch: checkpoint {got!r}, "
                f"scheduler {expected!r}"
            )
        self.epoch = int(state["epoch"])
        self.initial_lr = float(state["initial_lr"])
        if self.epoch > 0:
            self.optimizer.lr = self.learning_rate(self.epoch)


class ConstantSchedule(Scheduler):
    """No-op schedule (the paper's setting)."""

    def learning_rate(self, epoch: int) -> float:
        return self.initial_lr


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def learning_rate(self, epoch: int) -> float:
        return self.initial_lr * self.gamma ** (epoch // self.step_size)


class CosineDecay(Scheduler):
    """Cosine annealing from the initial rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative, got {min_lr}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def learning_rate(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.initial_lr - self.min_lr) * cosine
