"""Training utilities: mini-batch iteration and gradient checking."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "iterate_minibatches",
    "numeric_gradient",
    "check_gradient",
    "clip_gradients",
]


def clip_gradients(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Heavy-tailed gap targets occasionally
    produce huge MSE gradients on batches containing extreme events;
    clipping keeps Adam's moment estimates sane.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for grad in grads:
            grad *= scale
    return total


def iterate_minibatches(
    n_items: int,
    batch_size: int,
    *,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n_items)`` in batches.

    The caller indexes its own feature arrays with each yielded batch, which
    keeps this helper agnostic to how many arrays make up one example (the
    advanced DeepSD input is a dozen arrays).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    indices = np.arange(n_items)
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, n_items, batch_size):
        batch = indices[start : start + batch_size]
        if drop_last and batch.size < batch_size:
            break
        yield batch


def numeric_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    *,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compare autograd and finite-difference gradients of ``fn``.

    ``fn`` must map a tensor to a scalar tensor.  Returns the pair of
    gradients; raises ``AssertionError`` when they disagree.  Used by the
    property-based tests that validate every op in :mod:`repro.nn`.
    """
    tensor = Tensor(x.astype(np.float64), requires_grad=True)
    out = fn(tensor)
    if out.size != 1:
        raise ValueError("check_gradient requires fn to return a scalar tensor")
    out.backward()
    analytic = tensor.grad.copy()

    def scalar_fn(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr)).data)

    numeric = numeric_gradient(scalar_fn, x.astype(np.float64).copy(), eps=eps)
    if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
        worst = np.max(np.abs(analytic - numeric))
        raise AssertionError(
            f"gradient mismatch: max abs diff {worst:.3e}\n"
            f"analytic:\n{analytic}\nnumeric:\n{numeric}"
        )
    return analytic, numeric
