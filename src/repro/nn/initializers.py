"""Weight initialisation schemes for :mod:`repro.nn` layers.

All initialisers are plain functions ``(shape, rng) -> ndarray`` so layers can
accept them as keyword arguments.  The defaults mirror common practice for the
paper's era: Glorot-uniform for dense weights, small uniform noise for
embedding tables, zeros for biases.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]

__all__ = [
    "Initializer",
    "zeros",
    "ones",
    "uniform",
    "normal",
    "glorot_uniform",
    "he_normal",
    "embedding_uniform",
    "get",
]


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    return np.ones(shape)


def uniform(scale: float = 0.05) -> Initializer:
    """Uniform noise in ``[-scale, scale]``."""

    def init(shape, rng):
        return rng.uniform(-scale, scale, size=shape)

    return init


def normal(stddev: float = 0.05) -> Initializer:
    """Gaussian noise with the given standard deviation."""

    def init(shape, rng):
        return rng.normal(0.0, stddev, size=shape)

    return init


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation for dense layers."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) normal initialisation, suited to rectifier nets."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def embedding_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Small uniform noise, the customary initialisation for embedding tables."""
    return rng.uniform(-0.05, 0.05, size=shape)


_NAMED: dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "embedding_uniform": embedding_uniform,
}


def get(name_or_fn) -> Initializer:
    """Resolve an initialiser by name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _NAMED[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name_or_fn!r}; known: {sorted(_NAMED)}"
        ) from None


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
