"""Saving and loading model weights as ``.npz`` archives.

DeepSD's extendability story (Section V-C) depends on partially reusing a
trained model's parameters: blocks shared between the old and new network
load their weights, new blocks start fresh.  ``load_weights`` therefore
supports non-strict loading.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers.base import Module

__all__ = ["save_weights", "load_weights", "save_state", "load_state"]


def save_state(state: Dict[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a raw state dict to ``path`` as a compressed npz archive.

    The write is atomic: the archive lands in a same-directory temp file
    and is ``os.replace``-d into place, so a reader (or a crashed writer)
    never observes a half-written archive.  The temp name keeps the
    ``.npz`` suffix because ``np.savez`` appends it to bare paths.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp-{os.getpid()}.npz"
    try:
        np.savez_compressed(tmp, **state)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def load_state(path: str | os.PathLike) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(os.fspath(path)) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_weights(model: Module, path: str | os.PathLike) -> None:
    """Serialize every parameter of ``model`` to ``path``."""
    save_state(model.state_dict(), path)


def load_weights(model: Module, path: str | os.PathLike, strict: bool = True) -> None:
    """Load weights saved by :func:`save_weights` into ``model``.

    ``strict=False`` enables the paper's fine-tuning workflow: parameters
    present in the file load, parameters new to the model keep their fresh
    initialisation.
    """
    model.load_state_dict(load_state(path), strict=strict)
