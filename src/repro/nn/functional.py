"""Differentiable neural-network operations used by DeepSD.

The paper's architecture needs exactly three nonlinearity-style ops beyond
basic arithmetic: the leaky rectifier used in every fully-connected layer,
the softmax that turns the (AreaID, WeekID) embedding into the 7-dimensional
weekday combining weights, and inverted dropout applied after each block.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, concat  # re-exported: concat is a functional op
from .tensor import _record

__all__ = [
    "leaky_relu",
    "linear_activation",
    "softmax",
    "dropout",
    "concat",
]


def leaky_relu(x: Tensor, negative_slope: float = 0.001) -> Tensor:
    """The paper's LReL activation: ``max(negative_slope * x, x)``.

    Section VI-B fixes ``negative_slope`` to 0.001 for every
    fully-connected layer.
    """
    data = np.where(x.data > 0, x.data, negative_slope * x.data)
    slope = np.where(x.data > 0, 1.0, negative_slope)

    def backward(grad):
        return ((x, grad * slope),)

    out = Tensor._from_op(data, (x,), backward, "leaky_relu")
    _record("leaky_relu", out, (x,), negative_slope=negative_slope)
    return out


def linear_activation(x: Tensor) -> Tensor:
    """Identity activation (the paper's final output neuron is linear)."""
    return x


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``.

    Used by the weekday-combining layer (Section V-A, Equation 1) to produce
    the weight vector ``p`` over the seven historical day-of-week averages.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return ((x, out * (grad - dot)),)

    result = Tensor._from_op(out, (x,), backward, "softmax")
    _record("softmax", result, (x,), axis=axis)
    return result


def dropout(
    x: Tensor,
    p: float = 0.5,
    *,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` in training.

    Surviving activations are scaled by ``1/(1-p)`` so that inference needs no
    rescaling.  The paper applies dropout with p = 0.5 after every block
    except the identity block (Section VI-B3).
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep

    def backward(grad):
        return ((x, grad * mask),)

    out = Tensor._from_op(x.data * mask, (x,), backward, "dropout")
    _record("dropout", out, (x,), p=p, rng=rng)
    return out
