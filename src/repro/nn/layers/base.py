"""Module and Parameter base classes for the :mod:`repro.nn` layer system.

A :class:`Module` owns :class:`Parameter` tensors and child modules.
Discovery is by attribute scan (no metaclass magic): ``parameters()`` walks
``__dict__`` recursively, also descending into lists and tuples of modules,
which is how the DeepSD blocks hold their per-weekday sublayers.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is optimised during training (``requires_grad=True``)."""

    def __init__(self, data, *, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and child :class:`Module` instances
    as plain attributes; :meth:`parameters`, :meth:`state_dict` and friends
    find them by scanning attributes.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, child in self._children():
            path = f"{prefix}{name}"
            if isinstance(child, Parameter):
                yield path, child
            elif isinstance(child, Module):
                yield from child.named_parameters(prefix=f"{path}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        """Yield self and every descendant module, depth-first."""
        yield self
        for _, child in self._children():
            if isinstance(child, Module):
                yield from child.modules()

    def _children(self) -> Iterator[Tuple[str, object]]:
        for name, value in vars(self).items():
            if name.startswith("_") or name == "training":
                continue
            if isinstance(value, (Parameter, Module)):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, (Parameter, Module)):
                        yield f"{name}.{index}", item

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------

    def train(self) -> "Module":
        """Put the module (and descendants) in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and descendants) in inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        With ``strict=False`` missing keys are left at their current values
        and unknown keys are ignored — this is what the paper's fine-tuning
        strategy relies on: an advanced model grown with new environment
        blocks loads the old model's weights for the shared blocks only.
        """
        own = dict(self.named_parameters())
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={missing!r} unexpected={unexpected!r}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"checkpoint {value.shape} vs model {param.data.shape}"
                )
            # Copy in place: execution tapes and allocation-free optimizers
            # hold references to the parameter arrays, which must survive
            # checkpoint loads and ensemble state swaps.
            np.copyto(param.data, value, casting="unsafe")
