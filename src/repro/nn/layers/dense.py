"""Fully-connected layer — the paper's ``FC_sz`` building block."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import functional as F
from .. import initializers
from ..tensor import Tensor
from .base import Module, Parameter


class Dense(Module):
    """Fully-connected layer ``f(x W + b)``.

    The paper writes this as ``FC_sz(x) = f(x·W + b)`` with ``f`` the leaky
    rectifier for hidden layers and identity for the final output neuron
    (Section IV-B, Section VI-B2).

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    activation:
        ``"lrelu"`` (default, slope 0.001), ``"linear"``, or any callable
        mapping a tensor to a tensor.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str | Callable[[Tensor], Tensor] = "lrelu",
        *,
        weight_init=initializers.glorot_uniform,
        bias_init=initializers.zeros,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer widths must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializers.get(weight_init)((in_features, out_features), rng))
        self.bias = Parameter(initializers.get(bias_init)((out_features,), rng))
        self.activation = _resolve_activation(activation)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected input width {self.in_features}, got {x.shape[-1]}"
            )
        return self.activation(x @ self.weight + self.bias)


def _resolve_activation(activation) -> Callable[[Tensor], Tensor]:
    if callable(activation):
        return activation
    if activation == "lrelu":
        return F.leaky_relu
    if activation == "linear":
        return F.linear_activation
    raise ValueError(f"unknown activation {activation!r} (use 'lrelu' or 'linear')")
