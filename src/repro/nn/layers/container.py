"""Composite modules: Sequential chains and explicit module lists."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..tensor import Tensor
from .base import Module


class Sequential(Module):
    """Apply child modules in order: ``y = f_n(...f_2(f_1(x)))``."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A plain list of modules that participates in parameter discovery."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self.items: List[Module] = list(modules)

    def append(self, module: Module) -> "ModuleList":
        self.items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its children directly")
