"""Dropout layer wrapping :func:`repro.nn.functional.dropout`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..tensor import Tensor
from .base import Module


class Dropout(Module):
    """Inverted dropout with a module-owned random stream.

    The paper applies dropout with probability 0.5 after each block except
    the identity block (Section VI-B3).  Dropout is only active in training
    mode; :meth:`Module.eval` disables it.
    """

    def __init__(self, p: float = 0.5, *, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def reseed(self, seed: int) -> None:
        """Reset the dropout noise stream (for reproducible training runs)."""
        self._rng = np.random.default_rng(seed)

    @property
    def rng_state(self) -> dict:
        """Bit-generator state of the noise stream (for checkpointing)."""
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        name = state.get("bit_generator")
        if name != type(self._rng.bit_generator).__name__:
            bit_generator = getattr(np.random, name)()
            self._rng = np.random.Generator(bit_generator)
        self._rng.bit_generator.state = state

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)
