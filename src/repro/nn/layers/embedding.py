"""Embedding layer mapping categorical ids into a dense low-dimensional space.

Section III-A of the paper: a parameter matrix ``W ∈ R^{I×O}`` where ``I`` is
the vocabulary size and ``O ≪ I`` the embedding width; looking up id ``i``
returns row ``i`` of ``W`` (equivalently ``onehot(i) · W``).  The matrix is
trained jointly with the rest of the network through backpropagation — there
is no separate pre-training step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import initializers
from ..tensor import Tensor
from .base import Module, Parameter


class Embedding(Module):
    """Trainable lookup table for one categorical feature.

    Parameters
    ----------
    vocab_size:
        Number of distinct category values (``I`` in the paper).
    embedding_dim:
        Width of the embedded vectors (``O`` in the paper).
    """

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        *,
        weight_init=initializers.embedding_uniform,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if vocab_size <= 0 or embedding_dim <= 0:
            raise ValueError("vocab_size and embedding_dim must be positive")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            initializers.get(weight_init)((vocab_size, embedding_dim), rng)
        )

    def forward(self, ids) -> Tensor:
        """Embed a batch of integer ids -> ``(batch, embedding_dim)`` tensor."""
        ids = np.asarray(ids)
        if ids.ndim != 1:
            raise ValueError(f"Embedding expects a 1-D id array, got shape {ids.shape}")
        if ids.size:
            lo, hi = int(ids.min()), int(ids.max())
            if lo < 0 or hi >= self.vocab_size:
                raise IndexError(
                    f"id out of range [0, {self.vocab_size}): min={lo}, max={hi}"
                )
        return self.weight.gather_rows(ids)

    def distances(self) -> np.ndarray:
        """Pairwise Euclidean distances between all embedded category vectors.

        Used by the paper's Table IV analysis: areas whose supply-demand
        patterns are similar end up close in the embedding space.
        """
        w = self.weight.data
        sq = (w ** 2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (w @ w.T)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)
