"""Layer library for the :mod:`repro.nn` substrate."""

from .base import Module, Parameter
from .container import ModuleList, Sequential
from .dense import Dense
from .dropout import Dropout
from .embedding import Embedding

__all__ = [
    "Module",
    "Parameter",
    "Dense",
    "Embedding",
    "Dropout",
    "Sequential",
    "ModuleList",
]
