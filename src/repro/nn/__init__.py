"""From-scratch neural-network substrate used by the DeepSD reproduction.

The original paper implemented DeepSD in Theano 0.8.2 on a GPU; this package
provides the (much smaller) subset of a deep-learning framework the model
actually needs, built on numpy:

- :class:`~repro.nn.tensor.Tensor` — reverse-mode autograd;
- layers — :class:`Dense`, :class:`Embedding`, :class:`Dropout`,
  :class:`Sequential`;
- :mod:`~repro.nn.functional` — leaky ReLU, softmax, dropout, concat;
- losses — MSE / MAE / Huber;
- optimisers — :class:`SGD`, :class:`Adam`;
- serialization — npz state dicts with non-strict loading for fine-tuning.
"""

from . import functional, initializers, losses, optim
from .functional import concat, dropout, leaky_relu, softmax
from .layers import Dense, Dropout, Embedding, Module, ModuleList, Parameter, Sequential
from .losses import huber_loss, mae_loss, mse_loss, pinball_loss, quantile_loss
from .optim import (
    SGD,
    Adam,
    ConstantSchedule,
    CosineDecay,
    Optimizer,
    Scheduler,
    StepDecay,
)
from .serialization import load_state, load_weights, save_state, save_weights
from .tape import ForwardTape, TapeUnsupported, TrainingTape
from .tensor import (
    INVARIANT_BLOCK,
    Tensor,
    batch_invariant,
    batch_invariant_enabled,
    get_default_dtype,
    set_default_dtype,
    trace_ops,
)
from .utils import (
    check_gradient,
    clip_gradients,
    iterate_minibatches,
    numeric_gradient,
)

__all__ = [
    "Tensor",
    "Module",
    "Parameter",
    "Dense",
    "Embedding",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Optimizer",
    "SGD",
    "Adam",
    "Scheduler",
    "ConstantSchedule",
    "StepDecay",
    "CosineDecay",
    "clip_gradients",
    "functional",
    "initializers",
    "losses",
    "optim",
    "concat",
    "leaky_relu",
    "softmax",
    "dropout",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "pinball_loss",
    "quantile_loss",
    "save_weights",
    "load_weights",
    "save_state",
    "load_state",
    "iterate_minibatches",
    "check_gradient",
    "numeric_gradient",
    "batch_invariant",
    "batch_invariant_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "trace_ops",
    "INVARIANT_BLOCK",
    "TrainingTape",
    "ForwardTape",
    "TapeUnsupported",
]
