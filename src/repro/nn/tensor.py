"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper
trained DeepSD with Theano on a GPU; no deep-learning library is available in
this environment, so we implement the required subset of a tensor library
ourselves: a :class:`Tensor` wrapping a numpy array, a tape of parent links
built while the forward pass runs, and a topological-order backward pass.

Only the operations DeepSD needs are provided (dense matmul, broadcasting
arithmetic, concatenation, row gather for embeddings, leaky ReLU, softmax,
dropout and reductions).  Everything is expressed with numpy vectorised
primitives; there are no per-element Python loops on the hot path.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64

# ---------------------------------------------------------------------------
# Op recording (the execution tape's trace hook)
# ---------------------------------------------------------------------------
#
# ``repro.nn.tape`` compiles a recorded forward pass into a flat list of
# preallocated numpy calls.  Recording is a per-thread list of OpRecord
# entries appended by every tensor op while a trace is active; the normal
# (untraced) path pays one thread-local attribute read per op.

_trace_state = threading.local()


class OpRecord:
    """One recorded tensor op: kind, output tensor, parents and op params."""

    __slots__ = ("kind", "out", "parents", "params")

    def __init__(self, kind, out, parents, params):
        self.kind = kind
        self.out = out
        self.parents = tuple(parents)
        self.params = params


def _record(kind, out, parents, **params):
    records = getattr(_trace_state, "records", None)
    if records is not None:
        records.append(OpRecord(kind, out, parents, params))


@contextlib.contextmanager
def trace_ops():
    """Record every tensor op executed by this thread into a list.

    Yields the (live) list of :class:`OpRecord` entries, in execution
    order.  Traces do not nest — the tape compiler owns the whole pass.
    """
    if getattr(_trace_state, "records", None) is not None:
        raise RuntimeError("tensor op tracing does not nest")
    records: list = []
    _trace_state.records = records
    try:
        yield records
    finally:
        _trace_state.records = None

#: Row-block size of the batch-invariant matmul (see :func:`batch_invariant`).
#: Any fixed value works; 32 keeps the padding waste of a single-row forward
#: negligible while amortising the per-block BLAS call overhead.
INVARIANT_BLOCK = 32

_invariant_state = threading.local()


def batch_invariant_enabled() -> bool:
    """Whether the calling thread is inside a :func:`batch_invariant` block."""
    return getattr(_invariant_state, "depth", 0) > 0


@contextlib.contextmanager
def batch_invariant():
    """Make matmul results independent of the batch's row count.

    BLAS picks kernels and accumulation orders by operand shape, so row i of
    ``X @ W`` is *not* bitwise-identical across different numbers of rows in
    ``X`` — a one-row forward pass and a 64-row forward pass of the same item
    differ in the last bits.  Online serving promises the opposite: a
    micro-batched response must be bitwise-identical to the same query served
    alone (the serving determinism contract, see ``docs/serving.md``).

    Inside this context every 2-D ``@`` runs in zero-padded row blocks of
    exactly :data:`INVARIANT_BLOCK`, so each output row's arithmetic depends
    only on that row, the weights and the fixed block size — never on how
    many other rows shared the pass.  The flag is per-thread and re-entrant;
    the training hot path never enters it and keeps full-speed BLAS calls.
    """
    depth = getattr(_invariant_state, "depth", 0)
    _invariant_state.depth = depth + 1
    try:
        yield
    finally:
        _invariant_state.depth = depth


def _blocked_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` computed in fixed-size zero-padded row blocks of ``a``."""
    m = a.shape[0]
    out = np.empty((m, b.shape[1]), dtype=np.result_type(a, b))
    block = INVARIANT_BLOCK
    for start in range(0, m, block):
        rows = a[start : start + block]
        if rows.shape[0] == block:
            np.matmul(rows, b, out=out[start : start + block])
        else:
            padded = np.zeros((block, a.shape[1]), dtype=a.dtype)
            padded[: rows.shape[0]] = rows
            out[start : start + rows.shape[0]] = (padded @ b)[: rows.shape[0]]
    return out


def _matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if batch_invariant_enabled() and a.ndim == 2 and b.ndim == 2:
        return _blocked_matmul(a, b)
    return a @ b


def set_default_dtype(dtype) -> None:
    """Set the dtype used when constructing tensors from Python data.

    Gradient-check tests use float64 (the default); large trainings may switch
    to float32 for speed.
    """
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = np.dtype(dtype)


def get_default_dtype():
    """Return the dtype new tensors are created with."""
    return _DEFAULT_DTYPE


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, np.ndarray):
        arr = value
    else:
        arr = np.asarray(value, dtype=dtype or _DEFAULT_DTYPE)
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(dtype or _DEFAULT_DTYPE)
    return arr


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast an operand of ``shape`` up to the output
    shape, the operand's gradient is the output gradient summed over every
    broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes numpy added in front.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation.

    Parameters
    ----------
    data:
        Array (or nested sequence / scalar) holding the tensor's value.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(self, data, requires_grad: bool = False, *, dtype=None):
        self.data: np.ndarray = _as_array(data, dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.op: str = "leaf"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        parents = tuple(parents)
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        out.requires_grad = any(p.requires_grad for p in parents)
        out._parents = parents if out.requires_grad else ()
        out._backward = backward if out.requires_grad else None
        out.op = op
        return out

    @staticmethod
    def ensure(value: ArrayLike) -> "Tensor":
        """Coerce ``value`` to a (non-differentiable) :class:`Tensor`."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones, which for a scalar loss is the usual
        seed dL/dL = 1.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad).reshape(self.data.shape)

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.requires_grad:
                    if node.grad is None:
                        node.grad = node_grad.copy()
                    else:
                        node.grad += node_grad
                continue
            node._accumulate_parent_grads(node_grad, grads)
            if node.requires_grad and node.grad is not None:
                # Intermediate tensors normally do not retain grad; only if a
                # caller pre-set .grad = 0-array do we accumulate (retain).
                node.grad += node_grad

    def _accumulate_parent_grads(self, node_grad: np.ndarray, grads: dict) -> None:
        for parent, parent_grad in self._backward(node_grad):
            if not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + parent_grad
            else:
                grads[key] = parent_grad

    def _topological_order(self) -> list:
        """Nodes reachable from self, ordered output-first (reverse topo)."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data + other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(grad, other.shape)),
            )

        out = Tensor._from_op(data, (self, other), backward, "add")
        _record("add", out, (self, other))
        return out

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data - other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(-grad, other.shape)),
            )

        out = Tensor._from_op(data, (self, other), backward, "sub")
        _record("sub", out, (self, other))
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor.ensure(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data * other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad * other.data, self.shape)),
                (other, _unbroadcast(grad * self.data, other.shape)),
            )

        out = Tensor._from_op(data, (self, other), backward, "mul")
        _record("mul", out, (self, other))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data / other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad / other.data, self.shape)),
                (other, _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)),
            )

        out = Tensor._from_op(data, (self, other), backward, "div")
        _record("div", out, (self, other))
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor.ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return ((self, -grad),)

        out = Tensor._from_op(-self.data, (self,), backward, "neg")
        _record("neg", out, (self,))
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        out = Tensor._from_op(data, (self,), backward, "pow")
        _record("pow", out, (self,), exponent=exponent)
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = Tensor.ensure(other)
        data = _matmul_data(self.data, other.data)

        def backward(grad):
            return (
                (self, grad @ other.data.T),
                (other, self.data.T @ grad),
            )

        out = Tensor._from_op(data, (self, other), backward, "matmul")
        _record("matmul", out, (self, other))
        return out

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad):
            return ((self, grad.reshape(original)),)

        out = Tensor._from_op(data, (self,), backward, "reshape")
        _record("reshape", out, (self,), shape=data.shape, original=original)
        return out

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad):
            return ((self, grad.T),)

        out = Tensor._from_op(data, (self,), backward, "transpose")
        _record("transpose", out, (self,))
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def slice_cols(self, start: int, stop: int) -> "Tensor":
        """Differentiable column slice ``self[:, start:stop]`` of a matrix."""
        data = self.data[:, start:stop]
        shape = self.shape

        def backward(grad):
            full = np.zeros(shape, dtype=grad.dtype)
            full[:, start:stop] = grad
            return ((self, full),)

        out = Tensor._from_op(data, (self,), backward, "slice_cols")
        _record("slice_cols", out, (self,), start=start, stop=stop)
        return out

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Differentiable row gather ``self[indices]`` (embedding lookup).

        ``indices`` is a 1-D integer array; the gradient scatter-adds back
        into the gathered rows.
        """
        indices = np.asarray(indices, dtype=np.intp)
        data = self.data[indices]
        shape = self.shape

        def backward(grad):
            full = np.zeros(shape, dtype=grad.dtype)
            np.add.at(full, indices, grad)
            return ((self, full),)

        out = Tensor._from_op(data, (self,), backward, "gather_rows")
        _record("gather_rows", out, (self,), indices=indices)
        return out

    # ------------------------------------------------------------------
    # Reductions and elementwise nonlinearities
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad):
            if axis is None:
                return ((self, np.broadcast_to(grad, shape).copy()),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return ((self, np.broadcast_to(g, shape).copy()),)

        out = Tensor._from_op(data, (self,), backward, "sum")
        _record("sum", out, (self,), axis=axis, keepdims=keepdims)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad):
            return ((self, grad * sign),)

        out = Tensor._from_op(data, (self,), backward, "abs")
        _record("abs", out, (self,))
        return out

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return ((self, grad * data),)

        out = Tensor._from_op(data, (self,), backward, "exp")
        _record("exp", out, (self,))
        return out

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            return ((self, grad / self.data),)

        out = Tensor._from_op(data, (self,), backward, "log")
        _record("log", out, (self,))
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def clip_min(self, minimum: float) -> "Tensor":
        """max(self, minimum); gradient passes where self > minimum."""
        data = np.maximum(self.data, minimum)
        mask = (self.data > minimum).astype(self.data.dtype)

        def backward(grad):
            return ((self, grad * mask),)

        out = Tensor._from_op(data, (self,), backward, "clip_min")
        _record("clip_min", out, (self,), minimum=minimum)
        return out


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Differentiable concatenation along ``axis``.

    This realises the paper's Concatenate Layer: it joins the outputs of
    embedding layers and blocks into one feature vector per batch row.
    """
    tensors = [Tensor.ensure(t) for t in tensors]
    if not tensors:
        raise ValueError("concat() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            pieces.append((tensor, grad[tuple(index)]))
        return tuple(pieces)

    out = Tensor._from_op(data, tensors, backward, "concat")
    _record("concat", out, tensors, axis=axis, offsets=tuple(int(o) for o in offsets))
    return out
