"""Online inference: batched low-latency gap serving.

The deployment story the paper's conclusion describes — DeepSD answering
live "what will the gap be here, now?" queries inside a dispatch system:

- :class:`PredictionService` — loads a checkpoint bundle, keeps warm
  per-city featurization state, micro-batches concurrent requests into
  single vectorized forwards, caches results (LRU + TTL + targeted
  invalidation) and hot-swaps checkpoints without downtime;
- :class:`MicroBatcher` / :class:`TTLCache` — the reusable pieces;
- :class:`ServiceApp` (:mod:`repro.serving.app`) — the transport-
  agnostic route layer both server front-ends share;
- :mod:`repro.serving.http` — the threaded stdlib JSON endpoint behind
  ``repro serve``;
- :class:`SelectorHTTPServer` (:mod:`repro.serving.aio`) — the selector
  event-loop front-end behind ``repro serve --io-loop selector``:
  persistent keep-alive connections, pipelining, one loop thread;
- :class:`FleetSupervisor` / :mod:`repro.serving.router` — the sharded
  multi-worker fleet behind ``repro serve --workers N``: supervised
  worker processes, hash-partitioned queries, broadcast observations,
  retry-on-reconnect and aggregated metrics;
- :class:`CheckpointWatcher` — per-process checkpoint-directory polling
  for zero-touch hot-swaps (``repro serve --watch-checkpoint``);
- :func:`run_loadtest` — the ``repro loadtest`` concurrency driver that
  records ``serving.fleet.*`` latency/throughput into the bench
  trajectory.

Batched responses are bitwise-identical to one-at-a-time
``Trainer.predict`` on the same checkpoint — and a sharded fleet is
bitwise-identical to one process (see ``docs/serving.md``).
"""

from .aio import SelectorHTTPServer
from .app import ServiceApp
from .batcher import MicroBatcher
from .cache import TTLCache
from .fleet import FleetConfig, FleetSupervisor
from .http import IO_LOOPS, build_server, serve_forever
from .loadtest import (
    LoadTestResult,
    generate_ops,
    group_batches,
    merge_bench,
    run_loadtest,
    verify_batch_identical,
)
from .router import (
    SHARD_STRATEGIES,
    PredictCoalescer,
    RouterApp,
    aggregate_prometheus,
    build_router,
    close_pools,
    shard_for,
)
from .service import (
    CheckpointWatcher,
    ObservationKind,
    PredictionResult,
    PredictionService,
    ServingConfig,
)

__all__ = [
    "IO_LOOPS",
    "SHARD_STRATEGIES",
    "CheckpointWatcher",
    "FleetConfig",
    "FleetSupervisor",
    "LoadTestResult",
    "MicroBatcher",
    "ObservationKind",
    "PredictCoalescer",
    "PredictionResult",
    "PredictionService",
    "RouterApp",
    "SelectorHTTPServer",
    "ServiceApp",
    "ServingConfig",
    "TTLCache",
    "aggregate_prometheus",
    "build_router",
    "build_server",
    "close_pools",
    "generate_ops",
    "group_batches",
    "merge_bench",
    "run_loadtest",
    "serve_forever",
    "shard_for",
    "verify_batch_identical",
]
