"""Online inference: batched low-latency gap serving.

The deployment story the paper's conclusion describes — DeepSD answering
live "what will the gap be here, now?" queries inside a dispatch system:

- :class:`PredictionService` — loads a checkpoint bundle, keeps warm
  per-city featurization state, micro-batches concurrent requests into
  single vectorized forwards, caches results (LRU + TTL + targeted
  invalidation) and hot-swaps checkpoints without downtime;
- :class:`MicroBatcher` / :class:`TTLCache` — the reusable pieces;
- :mod:`repro.serving.http` — the stdlib JSON endpoint behind
  ``repro serve``.

Batched responses are bitwise-identical to one-at-a-time
``Trainer.predict`` on the same checkpoint (see ``docs/serving.md``).
"""

from .batcher import MicroBatcher
from .cache import TTLCache
from .http import build_server, serve_forever
from .service import (
    ObservationKind,
    PredictionResult,
    PredictionService,
    ServingConfig,
)

__all__ = [
    "MicroBatcher",
    "ObservationKind",
    "PredictionResult",
    "PredictionService",
    "ServingConfig",
    "TTLCache",
    "build_server",
    "serve_forever",
]
