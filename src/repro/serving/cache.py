"""LRU + TTL cache for served predictions.

Keys are ``(engine_version, area, day, timeslot, env_hash)`` tuples (see
:mod:`repro.serving.service`), so a checkpoint hot-swap needs no explicit
flush: the new engine version changes every key and the stale entries age
out via LRU/TTL.  Targeted invalidation (:meth:`TTLCache.invalidate`) is
for *data* changes — a new weather or traffic observation makes specific
``(area, timeslot)`` windows stale before their TTL elapses.

All operations are guarded by one internal lock; stats are exact even
under the serving threads' concurrency.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

from ..exceptions import ConfigError
from ..obs import MetricsRegistry

__all__ = ["TTLCache"]

_MISSING = object()


class TTLCache:
    """Bounded mapping with least-recently-used eviction and expiry.

    Parameters
    ----------
    max_size:
        Maximum number of live entries; inserting beyond it evicts the
        least recently used entry.
    ttl_seconds:
        Entries older than this are treated as absent on lookup (and
        removed).  ``None`` disables time-based expiry.
    clock:
        Monotonic time source — injectable so tests can step time
        deterministically.
    registry:
        Optional metrics sink.  When given, capacity churn is observable
        live (not just via :meth:`stats`): ``<prefix>.evictions``,
        ``<prefix>.expirations`` and ``<prefix>.invalidated_entries``
        counters (prefix defaults to ``repro.serving.cache``; hits and
        misses are counted by the owning service, which sees lookups the
        cache itself cannot attribute).
    """

    def __init__(
        self,
        max_size: int = 4096,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        metric_prefix: str = "repro.serving.cache",
    ) -> None:
        if max_size <= 0:
            raise ConfigError(f"cache max_size must be positive, got {max_size}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ConfigError(f"cache ttl_seconds must be positive, got {ttl_seconds}")
        self.max_size = max_size
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self._registry = registry
        self._metric_prefix = metric_prefix
        self._entries: "OrderedDict[Hashable, Tuple[object, Optional[float]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0

    def _count(self, metric: str, value: int = 1) -> None:
        # Called while holding self._lock; the registry has its own lock
        # and never calls back into the cache, so the ordering is safe.
        if self._registry is not None and value:
            self._registry.counter(f"{self._metric_prefix}.{metric}", value)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def get(self, key: Hashable, default=None):
        """The cached value, or ``default`` on miss/expiry."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                return default
            value, expires_at = entry
            if expires_at is not None and self.clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                self._count("expirations")
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def note_hit(self) -> None:
        """Count a hit served outside the cache proper.

        ``predict_batch`` resolves a within-batch duplicate from the
        batch's own pending results — sequentially that lookup would
        have been a cache hit, so the stats must say so without the
        entry existing yet.
        """
        with self._lock:
            self._hits += 1

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite ``key``, evicting LRU entries past ``max_size``."""
        expires_at = (
            self.clock() + self.ttl_seconds if self.ttl_seconds is not None else None
        )
        with self._lock:
            self._entries[key] = (value, expires_at)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            self._count("evictions", evicted)

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Returns the number of entries removed.  The predicate runs under
        the cache lock — keep it cheap (tuple-field comparisons).
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            self._count("invalidated_entries", len(stale))
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._invalidations += count
            self._count("invalidated_entries", count)
            return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-mutating membership test (no stats, no LRU touch)."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return False
            _, expires_at = entry
            return expires_at is None or self.clock() < expires_at

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "invalidations": self._invalidations,
            }
