"""Supervised multi-worker prediction fleet.

One :class:`FleetSupervisor` owns N worker processes, each a plain
``repro serve`` subprocess loading the same city snapshot and checkpoint
bundle.  Workers are full replicas of the serving state; the
:mod:`repro.serving.router` partitions the *query* space across them, so
the fleet behaves — bit for bit — like one big :class:`PredictionService`
with N batcher threads and N times the cache/feature memory.

Lifecycle guarantees:

- **Supervised death.**  A monitor thread polls worker processes; a dead
  worker (crash, OOM, SIGKILL) is respawned with the fleet's *current*
  checkpoint, the full observation journal is replayed into it, and only
  then does its shard go back into rotation.  The router retries
  requests that were in flight on the dead process, so a kill costs
  latency, never correctness.
- **Observation journal.**  ``/observe`` broadcasts reach every live
  worker and are appended to an in-memory journal under one lock;
  respawn replay holds the same lock through the ready flip, so every
  observation lands on every worker exactly once — either live or via
  replay — and a respawned replica converges to the same city state as
  its peers.
- **Checkpoint distribution.**  Workers can watch the bundle directory
  (``watch_interval``) and hot-swap themselves when a new atomic bundle
  lands, or the router's ``/reload`` broadcast swaps them eagerly; the
  supervisor remembers the newest checkpoint so respawned workers load
  it directly.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigError
from ..obs import MetricsRegistry, get_logger, get_registry
from .http import IO_LOOPS
from .router import (
    SHARD_STRATEGIES,
    TRANSPORT_ERRORS,
    aggregate_prometheus,
    close_pools,
    request_json,
    request_text,
    shard_for,
)

__all__ = ["FleetConfig", "FleetSupervisor"]

_log = get_logger(__name__)

_READY_LINE = re.compile(r"^serving (\S+) on http://(\S+):(\d+)", re.MULTILINE)


@dataclass(frozen=True)
class FleetConfig:
    """Deployment shape of one fleet."""

    city: str
    checkpoint: str
    scale: str = "tiny"
    workers: int = 2
    shard_by: str = "area-slot"
    host: str = "127.0.0.1"
    max_batch: int = 32
    max_wait_ms: float = 2.0
    cache_size: int = 4096
    #: Forwarded to workers as ``--no-tape`` / ``--no-eager-flush``.
    use_tape: bool = True
    eager_flush: bool = True
    #: Connection model for each worker's HTTP front-end (forwarded as
    #: ``--io-loop``): ``threaded`` or ``selector``.
    io_loop: str = "threaded"
    #: Seconds between checkpoint-directory polls in each worker
    #: (0 disables the per-worker watcher).
    watch_interval: float = 0.0
    #: Where worker stdout/stderr/manifests land (default: a temp dir).
    run_dir: Optional[str] = None
    startup_timeout: float = 120.0
    #: Router budget for retrying a shard whose worker died.
    retry_timeout: float = 30.0
    #: Monitor poll cadence for worker death detection.
    poll_interval: float = 0.2
    #: Observation journal bound; beyond it respawned replicas no longer
    #: converge (the overflow is counted and logged, never silent).
    journal_limit: int = 100_000

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ConfigError(f"workers must be positive, got {self.workers}")
        if self.shard_by not in SHARD_STRATEGIES:
            raise ConfigError(
                f"unknown shard_by {self.shard_by!r}; known: {SHARD_STRATEGIES}"
            )
        if self.io_loop not in IO_LOOPS:
            raise ConfigError(
                f"unknown io_loop {self.io_loop!r}; known: {IO_LOOPS}"
            )


class _Worker:
    """Book-keeping for one supervised serve subprocess."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Optional[subprocess.Popen] = None
        self.address: Optional[str] = None
        self.version: Optional[str] = None
        self.generation = 0
        self.stdout_path: Optional[str] = None
        self.stderr_path: Optional[str] = None
        #: Set while the worker is serving; cleared on detected death and
        #: re-set only after respawn + journal replay.
        self.ready = threading.Event()


class FleetSupervisor:
    """Spawn, monitor, respawn and aggregate N serve workers."""

    def __init__(
        self,
        config: FleetConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.run_dir = os.path.abspath(
            config.run_dir or tempfile.mkdtemp(prefix="repro_fleet_")
        )
        os.makedirs(self.run_dir, exist_ok=True)
        self._city = os.path.abspath(config.city)
        self._checkpoint = os.path.abspath(config.checkpoint)
        self.workers = [_Worker(i) for i in range(config.workers)]
        self.retry_timeout = config.retry_timeout
        self.respawns = 0
        self._journal: List[dict] = []
        self._journal_dropped = 0
        self._journal_lock = threading.Lock()
        self._shutting_down = False
        self._stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        """Spawn every worker, wait until all are serving, start the
        monitor.  Raises (and reaps) if any worker fails to come up."""
        try:
            for worker in self.workers:
                self._spawn(worker)
            for worker in self.workers:
                self._wait_ready(worker)
                worker.ready.set()
        except Exception:
            self.shutdown()
            raise
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-fleet-monitor", daemon=True
        )
        self._monitor_thread.start()
        _log.event(
            "fleet.started",
            workers=len(self.workers),
            shard_by=self.config.shard_by,
            addresses=[worker.address for worker in self.workers],
        )
        return self

    def shutdown(self, timeout: float = 15.0) -> None:
        """Stop workers cleanly (HTTP /shutdown), escalating to kill."""
        self._shutting_down = True
        self._stop.set()
        if self._monitor_thread is not None and self._monitor_thread.is_alive():
            self._monitor_thread.join(timeout=5.0)
        for worker in self.workers:
            worker.ready.clear()
            if worker.proc is None or worker.proc.poll() is not None:
                continue
            if worker.address:
                try:
                    request_json(
                        worker.address, "POST", "/shutdown", {}, timeout=5.0
                    )
                except TRANSPORT_ERRORS:
                    pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            if worker.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.proc.terminate()
                try:
                    worker.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    worker.proc.kill()
                    worker.proc.wait(timeout=5.0)
        # Release every pooled keep-alive connection to the (now dead)
        # workers, whichever thread opened it.
        close_pools()
        _log.event("fleet.stopped", respawns=self.respawns)

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @property
    def label(self) -> str:
        """Display tag for the ``serving ... on http://...`` banner."""
        return f"fleet[{len(self.workers)}x/{self.config.shard_by}]"

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _command(self, worker: _Worker) -> List[str]:
        cfg = self.config
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--city", self._city,
            "--checkpoint", self._checkpoint,
            "--scale", cfg.scale,
            "--host", cfg.host,
            "--port", "0",
            "--max-batch", str(cfg.max_batch),
            "--max-wait-ms", str(cfg.max_wait_ms),
            "--cache-size", str(cfg.cache_size),
            "--io-loop", cfg.io_loop,
            "--manifest",
            os.path.join(self.run_dir, f"worker-{worker.index}.manifest.json"),
            "--quiet",
        ]
        if not cfg.use_tape:
            cmd.append("--no-tape")
        if not cfg.eager_flush:
            cmd.append("--no-eager-flush")
        if cfg.watch_interval > 0:
            cmd += ["--watch-checkpoint", str(cfg.watch_interval)]
        return cmd

    def _spawn(self, worker: _Worker) -> None:
        worker.generation += 1
        stem = os.path.join(
            self.run_dir, f"worker-{worker.index}.g{worker.generation}"
        )
        worker.stdout_path = f"{stem}.out"
        worker.stderr_path = f"{stem}.err"
        # Workers must import the exact repro tree the supervisor runs,
        # even when it reaches it via a relative PYTHONPATH or cwd trick.
        env = os.environ.copy()
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
        with open(worker.stdout_path, "wb") as out, \
                open(worker.stderr_path, "wb") as err:
            worker.proc = subprocess.Popen(
                self._command(worker), stdout=out, stderr=err, env=env
            )
        _log.event(
            "fleet.worker_spawned",
            worker=worker.index,
            generation=worker.generation,
            pid=worker.proc.pid,
        )

    def _wait_ready(self, worker: _Worker) -> None:
        """Poll the worker's stdout for its serving banner."""
        deadline = time.monotonic() + self.config.startup_timeout
        while time.monotonic() < deadline:
            if worker.proc.poll() is not None:
                raise RuntimeError(
                    f"fleet worker {worker.index} exited with code "
                    f"{worker.proc.returncode} during startup: "
                    f"{self._stderr_tail(worker)}"
                )
            try:
                with open(worker.stdout_path, "r", encoding="utf-8") as handle:
                    match = _READY_LINE.search(handle.read())
            except OSError:
                match = None
            if match:
                worker.version = match.group(1)
                worker.address = f"{match.group(2)}:{match.group(3)}"
                return
            time.sleep(0.05)
        raise RuntimeError(
            f"fleet worker {worker.index} did not start within "
            f"{self.config.startup_timeout:.0f}s: {self._stderr_tail(worker)}"
        )

    def _stderr_tail(self, worker: _Worker, limit: int = 2000) -> str:
        try:
            with open(worker.stderr_path, "r", encoding="utf-8",
                      errors="replace") as handle:
                return handle.read()[-limit:]
        except OSError:
            return "<no stderr captured>"

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            for worker in self.workers:
                if self._shutting_down:
                    return
                proc = worker.proc
                if proc is None or proc.poll() is None:
                    continue
                worker.ready.clear()
                _log.event(
                    "fleet.worker_died",
                    worker=worker.index,
                    returncode=proc.returncode,
                    generation=worker.generation,
                )
                try:
                    self._respawn(worker)
                except Exception as error:  # noqa: BLE001 — retried next tick
                    _log.event(
                        "fleet.respawn_failed",
                        worker=worker.index,
                        error=repr(error),
                    )
                    # Leave no half-started process behind: a live-but-
                    # never-ready worker would stall its shard forever,
                    # while a dead one is retried on the next tick.
                    if worker.proc is not None and worker.proc.poll() is None:
                        worker.proc.kill()

    def _respawn(self, worker: _Worker) -> None:
        self._spawn(worker)
        self._wait_ready(worker)
        self._replay_and_activate(worker)
        self.respawns += 1
        self.registry.counter("repro.fleet.respawns")
        _log.event(
            "fleet.worker_respawned",
            worker=worker.index,
            generation=worker.generation,
            address=worker.address,
            replayed=len(self._journal),
        )

    def _replay_and_activate(self, worker: _Worker) -> None:
        """Replay the observation journal, then put the shard back.

        Holds the journal lock through the ready flip so a concurrent
        ``broadcast_observe`` either lands in the journal we replay or
        reaches the worker live — never neither.
        """
        with self._journal_lock:
            for body in self._journal:
                status, payload = request_json(
                    worker.address, "POST", "/observe", body,
                    timeout=self.retry_timeout,
                )
                if status != 200:
                    _log.event(
                        "fleet.replay_rejected",
                        worker=worker.index,
                        status=status,
                        error=payload.get("error"),
                    )
            worker.ready.set()

    # ------------------------------------------------------------------
    # Router surface
    # ------------------------------------------------------------------

    def shard_for_query(self, area_id: int, timeslot: int) -> int:
        return shard_for(area_id, timeslot, len(self.workers), self.config.shard_by)

    def address_of(self, shard: int, deadline: float) -> str:
        """The shard's current address, waiting out a respawn if needed."""
        worker = self.workers[shard]
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not worker.ready.wait(timeout=remaining):
            raise TimeoutError(
                f"shard {shard} unavailable (worker respawning too slowly)"
            )
        return worker.address

    def report_failure(self, shard: int, address: str) -> None:
        """Router saw a transport failure against ``address``.

        If the process is actually dead, pull the shard out of rotation
        immediately instead of waiting for the next monitor tick (the
        router's retry loop then blocks in :meth:`address_of` until the
        respawn completes).  Transient socket errors against a live
        process leave the shard in rotation.
        """
        worker = self.workers[shard]
        if (
            worker.address == address
            and worker.proc is not None
            and worker.proc.poll() is not None
        ):
            worker.ready.clear()

    def broadcast_observe(self, body: dict) -> Tuple[int, dict]:
        """Journal + fan an observation out to every live worker.

        Returns the summed ``invalidated``/``profiles_dropped`` counts.
        Because each cached prediction lives on exactly one shard (the
        router partitions queries), the fleet-wide ``invalidated`` sum
        equals what a single process with every entry in one cache would
        report — the exact-set invariant survives sharding.
        """
        with self._journal_lock:
            journaled = False
            if len(self._journal) < self.config.journal_limit:
                self._journal.append(body)
                journaled = True
            else:
                self._journal_dropped += 1
                _log.event(
                    "fleet.journal_overflow", dropped=self._journal_dropped
                )
            totals = {"invalidated": 0, "profiles_dropped": 0}
            reached = 0
            failure: Optional[Tuple[int, dict]] = None
            for worker in self.workers:
                if not worker.ready.is_set():
                    continue  # replay delivers it after respawn
                try:
                    status, payload = request_json(
                        worker.address, "POST", "/observe", body,
                        timeout=self.retry_timeout,
                    )
                except TRANSPORT_ERRORS:
                    self.report_failure(worker.index, worker.address)
                    continue  # replay delivers it after respawn
                if status != 200:
                    failure = (status, payload)
                    break
                reached += 1
                for key in totals:
                    totals[key] += int(payload.get(key, 0))
            if failure is not None:
                # Validation failures are deterministic across replicas
                # (same code, same state): nothing mutated anywhere, so
                # drop the journal entry and pass the error through.
                if journaled and self._journal and self._journal[-1] is body:
                    self._journal.pop()
                return failure
            self.registry.counter("repro.fleet.observes")
            totals["workers_reached"] = reached
            return 200, totals

    def broadcast_reload(self, checkpoint: str) -> Tuple[int, dict]:
        """Hot-swap every worker to ``checkpoint``; respawns load it too."""
        path = os.path.abspath(checkpoint)
        versions: Dict[str, str] = {}
        for worker in self.workers:
            if not worker.ready.is_set():
                continue
            try:
                status, payload = request_json(
                    worker.address, "POST", "/reload",
                    {"checkpoint": path}, timeout=self.retry_timeout,
                )
            except TRANSPORT_ERRORS:
                self.report_failure(worker.index, worker.address)
                continue
            if status != 200:
                return status, payload
            versions[str(worker.index)] = payload.get("version", "")
        self._checkpoint = path
        self.registry.counter("repro.fleet.reloads")
        return 200, {"versions": versions}

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def healthz(self) -> Tuple[int, dict]:
        workers = []
        all_ok = True
        for worker in self.workers:
            entry = {
                "shard": worker.index,
                "address": worker.address,
                "generation": worker.generation,
                "ready": worker.ready.is_set(),
            }
            if worker.ready.is_set():
                try:
                    status, payload = request_json(
                        worker.address, "GET", "/healthz", timeout=5.0
                    )
                    entry["status"] = payload.get("status", f"http {status}")
                    entry["version"] = payload.get("version")
                    if status != 200:
                        all_ok = False
                except TRANSPORT_ERRORS:
                    entry["status"] = "unreachable"
                    all_ok = False
            else:
                entry["status"] = "respawning"
                all_ok = False
            workers.append(entry)
        status = 200 if all_ok else 503
        return status, {
            "status": "ok" if all_ok else "degraded",
            "workers": workers,
        }

    def stats(self) -> dict:
        workers = []
        for worker in self.workers:
            entry = {
                "shard": worker.index,
                "address": worker.address,
                "generation": worker.generation,
                "ready": worker.ready.is_set(),
            }
            if worker.ready.is_set():
                try:
                    status, payload = request_json(
                        worker.address, "GET", "/stats", timeout=5.0
                    )
                    if status == 200:
                        entry["stats"] = payload
                except TRANSPORT_ERRORS:
                    pass
            workers.append(entry)
        with self._journal_lock:
            journal_size = len(self._journal)
        return {
            "fleet": {
                "workers": len(self.workers),
                "shard_by": self.config.shard_by,
                "respawns": self.respawns,
                "journal_entries": journal_size,
                "journal_dropped": self._journal_dropped,
                "checkpoint": self._checkpoint,
            },
            "workers": workers,
        }

    def metrics_text(self) -> str:
        """Fleet-wide Prometheus exposition: workers merged + router's own."""
        texts = []
        for worker in self.workers:
            if not worker.ready.is_set():
                continue
            try:
                status, text, _ = request_text(worker.address, "/metrics",
                                               timeout=5.0)
            except TRANSPORT_ERRORS:
                continue
            if status == 200:
                texts.append(text)
        texts.append(self.registry.to_prometheus())
        return aggregate_prometheus(texts)
