"""Selector-based non-blocking HTTP server (``--io-loop selector``).

The threaded front-end pays one OS thread per connection — fine for a
handful of clients, painful for a fleet router holding hundreds of
persistent keep-alive sockets on a small box.  This module multiplexes
every connection on ONE event loop built from stdlib ``selectors``:

- the loop owns all socket I/O: accept, non-blocking reads into a
  per-connection buffer, incremental HTTP/1.1 parsing, and buffered
  writes;
- complete requests are handed to a small worker pool that runs the
  same :class:`repro.serving.app.ServiceApp`/``RouterApp`` object the
  threaded server runs (responses are byte-identical), because
  application handlers block — on the micro-batcher, on upstream shard
  calls — and must never stall the loop;
- per-connection requests are strictly single-flight and FIFO, so
  pipelined clients get replies in request order.

Parsing keeps PR 7's short-read hardening: a body is dispatched only
once every ``Content-Length`` byte has arrived — a prefix is never
parsed — and a connection that ends mid-body is dropped without ever
reaching the application.  Oversized or malformed requests get a loud
400 and the connection is closed (framing can no longer be trusted).

The public surface mirrors ``ThreadingHTTPServer`` where the serving
stack touches it: ``server_address``, ``serve_forever()``,
``shutdown()``, ``server_close()``, plus the ``shutdown_action``
attribute the app-level ``POST /shutdown`` runs after its reply is
flushed.
"""

from __future__ import annotations

import selectors
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Optional, Tuple

from ..exceptions import ConfigError
from ..obs import get_logger
from .app import MAX_BODY_BYTES, Response, json_response

__all__ = ["SelectorHTTPServer"]

_log = get_logger(__name__)

_MAX_HEADER_BYTES = 64 * 1024
_RECV_SIZE = 1 << 16

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Framing-level request error; replied as a 400, then close."""


class _Conn:
    """One client connection's loop-side state."""

    __slots__ = (
        "sock", "inbuf", "outbuf", "pending", "busy",
        "close_after_flush", "after_flush", "closed",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        #: Parsed requests waiting their (strictly ordered) turn.
        self.pending: Deque[Tuple[str, str, bytes, bool]] = deque()
        #: A request is in the worker pool; replies stay FIFO because
        #: the next one is dispatched only after this one's reply is
        #: queued.
        self.busy = False
        self.close_after_flush = False
        self.after_flush = None
        self.closed = False


def _parse_one(conn: _Conn):
    """Pop one complete request off ``conn.inbuf``, or return ``None``.

    Raises :class:`_BadRequest` for malformed or oversized framing.  A
    request is returned only when the FULL advertised body has arrived —
    the selector-loop equivalent of the threaded adapter's short-read
    loop.
    """
    buf = conn.inbuf
    head_end = buf.find(b"\r\n\r\n")
    if head_end < 0:
        if len(buf) > _MAX_HEADER_BYTES:
            raise _BadRequest("request headers too large")
        return None
    head = bytes(buf[:head_end]).decode("latin-1", errors="replace")
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise _BadRequest(f"malformed HTTP version: {version!r}")
    headers = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as error:
        raise _BadRequest(f"malformed Content-Length: {error}") from error
    if length < 0:
        raise _BadRequest(f"negative Content-Length: {length}")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(f"request body larger than {MAX_BODY_BYTES} bytes")
    total = head_end + 4 + length
    if len(buf) < total:
        return None  # short read — wait for the rest of the body
    body = bytes(buf[head_end + 4:total])
    del buf[:total]
    keep_alive = (
        headers.get("connection", "").lower() != "close"
        and version != "HTTP/1.0"
    )
    return method, target, body, keep_alive


def _frame(response: Response, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "OK")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.data)}\r\n"
    )
    if not keep_alive:
        head += "Connection: close\r\n"
    head += "\r\n"
    return head.encode("latin-1") + response.data


class SelectorHTTPServer:
    """One event loop, many keep-alive connections, a small app pool.

    Parameters
    ----------
    app:
        Anything with ``handle(method, target, body) -> Response`` —
        the same application objects the threaded server runs.
    host, port:
        Bind address (port 0 picks a free port; see ``server_address``).
    max_workers:
        Worker-pool width for application handlers.  The loop itself
        never blocks on the application; this bounds how many requests
        can be *computing* concurrently (queued requests wait FIFO).
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
    ) -> None:
        if max_workers <= 0:
            raise ConfigError(f"max_workers must be positive, got {max_workers}")
        self._app = app
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        # Self-pipe: worker threads (and shutdown()) wake the loop.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-aio"
        )
        self._completions: Deque[Tuple[_Conn, bytes, Optional[object], bool]] = (
            deque()
        )
        self._completions_lock = threading.Lock()
        self._conns: set = set()
        self._stopping = threading.Event()
        self._closed = False
        #: Run after a ``Response.shutdown`` reply is flushed (the CLI
        #: and ``build_router`` point this at fleet/server teardown).
        self.shutdown_action = self.shutdown

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    events = self._selector.select(timeout=0.5)
                except OSError:
                    # server_close() may close the selector while this
                    # thread is parked in select(); that is an ordinary
                    # stop, not an error.
                    if self._stopping.is_set() or self._closed:
                        break
                    raise
                for key, mask in events:
                    if key.data is None:
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wakeups()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self._on_writable(conn)
                self._apply_completions()
        finally:
            # Bounded final flush: replies already queued (the /shutdown
            # acknowledgement in particular) go out before the loop dies.
            self._flush_remaining(timeout=2.0)

    def shutdown(self) -> None:
        self._stopping.set()
        self._wakeup()

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        self._pool.shutdown(wait=False, cancel_futures=True)
        for conn in list(self._conns):
            self._close_conn(conn)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    # ------------------------------------------------------------------
    # Loop-side I/O
    # ------------------------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(sock)
            self._conns.add(conn)
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _on_readable(self, conn: _Conn) -> None:
        try:
            chunk = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn)
            return
        if not chunk:
            # EOF.  A partial request in the buffer is a truncated body /
            # truncated headers — it never reaches the application.
            if conn.inbuf and not conn.busy and not conn.pending:
                _log.event(
                    "serving.aio_truncated", buffered=len(conn.inbuf)
                )
            self._close_conn(conn)
            return
        conn.inbuf += chunk
        while True:
            try:
                request = _parse_one(conn)
            except _BadRequest as error:
                response = json_response(400, {"error": str(error)})
                conn.outbuf += _frame(response, keep_alive=False)
                conn.close_after_flush = True
                conn.inbuf.clear()
                self._update_interest(conn)
                return
            if request is None:
                break
            conn.pending.append(request)
        self._pump(conn)

    def _on_writable(self, conn: _Conn) -> None:
        if conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except BlockingIOError:
                return
            except OSError:
                self._close_conn(conn)
                return
            del conn.outbuf[:sent]
        if not conn.outbuf:
            if conn.after_flush is not None:
                action, conn.after_flush = conn.after_flush, None
                # The action (server/fleet shutdown) blocks until
                # serve_forever returns — run it off the loop thread.
                threading.Thread(target=action, daemon=True).start()
            if conn.close_after_flush:
                self._close_conn(conn)
            else:
                self._update_interest(conn)

    def _pump(self, conn: _Conn) -> None:
        """Dispatch the next pending request if the connection is idle."""
        if conn.busy or conn.closed or not conn.pending:
            return
        request = conn.pending.popleft()
        conn.busy = True
        self._pool.submit(self._run_app, conn, request)

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.discard(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _update_interest(self, conn: _Conn) -> None:
        if conn.closed:
            return
        events = selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    # ------------------------------------------------------------------
    # Worker-pool side
    # ------------------------------------------------------------------

    def _run_app(self, conn: _Conn, request) -> None:
        method, target, body, keep_alive = request
        try:
            response = self._app.handle(method, target, body)
        except Exception as error:  # noqa: BLE001 — the app's own last
            # resort failed; never lose the reply slot (FIFO would hang).
            _log.event("serving.aio_app_error", target=target, error=repr(error))
            response = json_response(500, {"error": repr(error)})
        data = _frame(response, keep_alive=keep_alive)
        after = (
            getattr(self, "shutdown_action", None) if response.shutdown else None
        )
        with self._completions_lock:
            self._completions.append((conn, data, after, keep_alive))
        self._wakeup()

    def _wakeup(self) -> None:
        try:
            self._wake_send.send(b"x")
        except (BlockingIOError, OSError):
            pass  # pipe already saturated — the loop is awake anyway

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(1024):
                pass
        except (BlockingIOError, OSError):
            pass

    def _apply_completions(self) -> None:
        while True:
            with self._completions_lock:
                if not self._completions:
                    return
                conn, data, after, keep_alive = self._completions.popleft()
            if conn.closed:
                # The client is gone; a shutdown request still counts.
                if after is not None:
                    threading.Thread(target=after, daemon=True).start()
                continue
            conn.outbuf += data
            conn.busy = False
            if after is not None:
                conn.after_flush = after
            if not keep_alive:
                conn.close_after_flush = True
            # Opportunistic immediate write: most replies fit the socket
            # buffer, saving a full selector round-trip per request.
            self._on_writable(conn)
            if not conn.closed:
                self._update_interest(conn)
                self._pump(conn)

    def _flush_remaining(self, timeout: float) -> None:
        import time as _time

        deadline = _time.monotonic() + timeout
        self._apply_completions()
        while _time.monotonic() < deadline:
            dirty = [
                conn for conn in list(self._conns)
                if conn.outbuf and not conn.closed
            ]
            if not dirty:
                return
            for conn in dirty:
                self._on_writable(conn)
            self._apply_completions()
            _time.sleep(0.01)
