"""The online prediction service: checkpoint in, low-latency gaps out.

:class:`PredictionService` is the deployable wrapper the paper's
conclusion sketches (DeepSD inside Didi's scheduling system).  It loads a
trained model from a checkpoint bundle (:meth:`from_checkpoint`), keeps
warm per-city featurization state (the :class:`~repro.core.GapPredictor`
profile cache), and answers ``predict(area, day, timeslot)`` queries
through a micro-batching queue: concurrent requests accumulate while the
previous batch is in flight (eager flush, the default) or for up to
``max_wait_ms`` (``eager_flush=False``), then are featurized and
forwarded in one vectorized pass and fanned back out.

Correctness contract
--------------------
Batched responses are **bitwise identical** to one-at-a-time
``Trainer.predict`` on the same checkpoint, for every batch size and
interleaving.  Inference forwards run in batch-invariant matmul mode
(:func:`repro.nn.batch_invariant`), which makes each output row depend
only on that row's features and the weights — never on who else shares
the batch.

Consistency model
-----------------
- An immutable ``_Engine`` snapshot (trainer + predictor + version tag)
  is read exactly once per request and once per batch, so every response
  is produced by exactly one checkpoint version even while
  :meth:`load_checkpoint` hot-swaps underneath.
- Cache keys embed the engine version plus an 8-byte hash of the query's
  weather/traffic windows, so a hot-swap or an environment change can
  never serve a stale hit; old entries age out via LRU/TTL.
- :meth:`observe` additionally invalidates the exact ``(area, timeslot)``
  windows an observation touches — load-bearing for order-count updates,
  which the environment hash does not cover.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import FeatureConfig
from ..core import GapPredictor, GapQuery, Trainer
from ..exceptions import ConfigError, DataError
from ..obs import MetricsRegistry, Tracer, get_logger, get_registry, resolve_tracer
from .batcher import MicroBatcher
from .cache import TTLCache

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset

__all__ = [
    "CheckpointWatcher",
    "ObservationKind",
    "PredictionResult",
    "PredictionService",
    "ServingConfig",
]

_log = get_logger(__name__)

_MISS = object()

MINUTES_PER_DAY = 1440

#: Observation kinds accepted by :meth:`PredictionService.observe`.
ObservationKind = ("weather", "traffic", "orders")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for the serving hot path."""

    max_batch: int = 32
    max_wait_ms: float = 2.0
    eager_flush: bool = True
    cache_size: int = 4096
    cache_ttl_seconds: Optional[float] = None
    max_profiles: Optional[int] = None
    #: Execution-tape forwards: None defers to the trainer/model default
    #: (on for tape-safe models); False forces module dispatch.  Applied
    #: to every engine, including hot-swapped checkpoints.
    use_tape: Optional[bool] = None


@dataclass(frozen=True)
class PredictionResult:
    """One answered query.

    ``intervals`` is present when the serving checkpoint carries a trained
    quantile head (``{"p10": …, "p50": …, "p90": …}``, keys ascending by
    level); point-only checkpoints leave it ``None`` and the HTTP layer
    omits the fields entirely.
    """

    gap: float
    version: str
    cached: bool
    intervals: Optional[Dict[str, float]] = None


class _Engine:
    """Immutable (trainer, predictor, version, quantile head) snapshot.

    The service swaps whole engines atomically; request threads read
    ``service._engine`` once and use that snapshot throughout, so a
    response always comes from exactly one checkpoint version.
    """

    __slots__ = ("trainer", "predictor", "version", "quantiles")

    def __init__(self, trainer: Trainer, predictor: GapPredictor, version: str):
        self.trainer = trainer
        self.predictor = predictor
        self.version = version
        # The checkpoint's P10/P50/P90 residual head (or None).  Snapshot
        # alongside the weights so gaps and intervals always come from the
        # same checkpoint version, even mid-hot-swap.
        self.quantiles = getattr(trainer, "quantile_head", None)


class _BatchGroup:
    """N cache-missed queries travelling the batcher queue as ONE item.

    :meth:`PredictionService.predict_batch` partitions its items into
    cache hits and misses and submits all misses as a single group — one
    queue entry, one worker wakeup, one vectorized featurize+forward —
    instead of N per-item round-trips through the queue.  The handler
    still runs on the single batcher thread (model forwards are not
    thread-safe), so groups coalesce freely with concurrent single
    predicts in the same dispatch.
    """

    __slots__ = ("queries",)

    def __init__(self, queries: List[GapQuery]):
        self.queries = queries


class PredictionService:
    """Batched, cached, hot-swappable gap serving for one city.

    Parameters
    ----------
    trainer:
        A trained :class:`Trainer` (or one built by
        :meth:`Trainer.from_checkpoint`).
    dataset:
        The city whose live streams feed featurization — and the target
        of :meth:`observe` updates.
    config:
        Featurization constants; must match training.
    scalers:
        Training-set environment scalers
        ``{"temperature": (mean, std), "pm25": (mean, std)}``.
    serving_config, registry, clock:
        Batching/cache knobs, metrics sink and cache clock (injectable
        for deterministic tests).
    trace:
        Span tracing knob: ``None`` uses the process tracer (off unless
        enabled via ``repro.obs.configure_tracing`` / ``--trace``),
        ``True``/``False`` creates a private tracer in that state, or
        pass a :class:`repro.obs.Tracer` directly.  Tracing observes
        timings only — responses are bitwise-identical either way.
    """

    def __init__(
        self,
        trainer: Trainer,
        dataset: "CityDataset",
        config: FeatureConfig,
        scalers: Dict[str, Tuple[float, float]],
        serving_config: Optional[ServingConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        version: str = "v0:in-memory",
        trace=None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.serving_config = serving_config or ServingConfig()
        self._registry = registry if registry is not None else get_registry()
        self._tracer = resolve_tracer(trace)
        self.cache = TTLCache(
            max_size=self.serving_config.cache_size,
            ttl_seconds=self.serving_config.cache_ttl_seconds,
            clock=clock or time.monotonic,
            registry=self._registry,
        )
        self._swap_count = 0
        self._apply_tape_policy(trainer)
        self._engine = _Engine(
            trainer, self._make_predictor(trainer, scalers), version
        )
        self._batcher = MicroBatcher(
            self._handle_batch,
            max_batch=self.serving_config.max_batch,
            max_wait_ms=self.serving_config.max_wait_ms,
            registry=self._registry,
            tracer=self._tracer,
            eager_flush=self.serving_config.eager_flush,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        dataset: "CityDataset",
        config: FeatureConfig,
        serving_config: Optional[ServingConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        trace=None,
    ) -> "PredictionService":
        """Stand up a service from a checkpoint bundle alone.

        The checkpoint's ``serving`` extras (model spec, input scales,
        feature scalers, training window/area counts) are cross-checked
        against ``config`` and ``dataset`` — a mismatch is a loud
        :class:`ConfigError`, never a silently wrong prediction.
        """
        trainer = Trainer.from_checkpoint(path)
        scalers = cls._check_serving_meta(trainer, dataset, config, source=path)
        return cls(
            trainer,
            dataset,
            config,
            scalers,
            serving_config=serving_config,
            registry=registry,
            clock=clock,
            version=f"v0:{os.path.basename(path)}",
            trace=trace,
        )

    @staticmethod
    def _check_serving_meta(
        trainer: Trainer,
        dataset: "CityDataset",
        config: FeatureConfig,
        source: str,
    ) -> Dict[str, Tuple[float, float]]:
        meta = trainer.serving_meta or {}
        window = meta.get("window")
        if window is not None and int(window) != config.window_minutes:
            raise ConfigError(
                f"checkpoint {source} was trained with window={window} but the "
                f"serving FeatureConfig uses window={config.window_minutes}"
            )
        n_areas = meta.get("n_areas")
        if n_areas is not None and int(n_areas) != dataset.n_areas:
            raise ConfigError(
                f"checkpoint {source} was trained on {n_areas} areas but the "
                f"serving dataset has {dataset.n_areas}"
            )
        raw = meta.get("feature_scalers")
        if not raw:
            raise ConfigError(
                f"checkpoint {source} has no feature scalers in its serving "
                "extras; re-train with a current version to serve from it"
            )
        return {name: (float(pair[0]), float(pair[1])) for name, pair in raw.items()}

    def _apply_tape_policy(self, trainer: Trainer) -> None:
        if self.serving_config.use_tape is not None:
            trainer.use_tape = bool(self.serving_config.use_tape)

    def _make_predictor(
        self, trainer: Trainer, scalers: Dict[str, Tuple[float, float]]
    ) -> GapPredictor:
        predictor = GapPredictor(
            trainer,
            self.dataset,
            self.config,
            scalers,
            max_profiles=self.serving_config.max_profiles,
        )
        # Serving only ever consumes predictions, so featurize just the
        # arrays the model reads — a model without history inputs then
        # skips prior-day profile builds, the bulk of the cold-path cost.
        predictor.feature_fields = "model"
        return predictor

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def version(self) -> str:
        """The current engine's checkpoint version tag."""
        return self._engine.version

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink this service records into (``/metrics``)."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The span sink this service records into (``/trace``)."""
        return self._tracer

    def predict(self, area_id: int, day: int, timeslot: int) -> PredictionResult:
        """Predicted gap for ``[timeslot, timeslot + C)`` in one area.

        Thread-safe.  Invalid queries raise :class:`DataError`
        synchronously (they never poison a batch); valid ones are served
        from the cache or folded into the next micro-batch.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        engine = self._engine
        query = GapQuery(int(area_id), int(day), int(timeslot))
        engine.predictor._validate(query)
        self._registry.counter("repro.serving.requests")
        with self._tracer.span(
            "serving.predict", area=query.area_id, day=query.day,
            timeslot=query.timeslot,
        ) as span:
            with self._registry.timer("repro.serving.request_seconds"):
                with self._tracer.span("cache.lookup"):
                    key = self._cache_key(engine.version, query)
                    value = self.cache.get(key, _MISS)
                if value is not _MISS:
                    self._registry.counter("repro.serving.cache.hits")
                    span.set(cached=True)
                    return PredictionResult(
                        gap=value,
                        version=engine.version,
                        cached=True,
                        intervals=self._intervals(engine, value, query.timeslot),
                    )
                self._registry.counter("repro.serving.cache.misses")
                span.set(cached=False)
                gap, version, intervals = self._batcher.submit(query).result()
        return PredictionResult(
            gap=gap, version=version, cached=False, intervals=intervals
        )

    def predict_many(
        self, queries: Sequence[Tuple[int, int, int]]
    ) -> List[PredictionResult]:
        """Answer ``(area, day, timeslot)`` triples concurrently.

        Submits everything before waiting, so the batcher can coalesce
        the lot into a few forward passes.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        with self._tracer.span("serving.predict_many", n=len(queries)):
            pending: List[Tuple[Optional[object], Optional[PredictionResult]]] = []
            for area_id, day, timeslot in queries:
                engine = self._engine
                query = GapQuery(int(area_id), int(day), int(timeslot))
                engine.predictor._validate(query)
                self._registry.counter("repro.serving.requests")
                key = self._cache_key(engine.version, query)
                value = self.cache.get(key, _MISS)
                if value is not _MISS:
                    self._registry.counter("repro.serving.cache.hits")
                    pending.append(
                        (
                            None,
                            PredictionResult(
                                value,
                                engine.version,
                                cached=True,
                                intervals=self._intervals(
                                    engine, value, query.timeslot
                                ),
                            ),
                        )
                    )
                else:
                    self._registry.counter("repro.serving.cache.misses")
                    pending.append((self._batcher.submit(query), None))
            results: List[PredictionResult] = []
            for future, ready in pending:
                if ready is not None:
                    results.append(ready)
                else:
                    gap, version, intervals = future.result()
                    results.append(
                        PredictionResult(
                            gap, version, cached=False, intervals=intervals
                        )
                    )
            return results

    def predict_batch(
        self, items: Sequence[Tuple[int, int, int]]
    ) -> List[PredictionResult]:
        """Answer N ``(area, day, timeslot)`` triples in one shot.

        The batched transport hot path: items are partitioned into cache
        hits and misses, and *all* misses ride the batcher queue as a
        single :class:`_BatchGroup` — one wakeup, one vectorized
        featurize+forward over the unique queries (the fixed-block
        ``batch_invariant()`` matmul mode and the per-block-size tape
        cache make every row independent of its batch-mates), then one
        cache fill per unique key.  Responses are bitwise-identical to
        issuing the items as N sequential :meth:`predict` calls: within
        the batch, a duplicate of an earlier miss reports ``cached=True``
        and repeats its float exactly as it would have hit the cache the
        sequential way.

        Every item is validated up front, so an invalid item raises
        :class:`DataError` before any work happens (no partial batch).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        engine = self._engine
        queries = [
            GapQuery(int(area_id), int(day), int(timeslot))
            for area_id, day, timeslot in items
        ]
        for query in queries:
            engine.predictor._validate(query)
        with self._tracer.span("serving.predict_batch", n=len(queries)):
            self._registry.counter("repro.serving.requests", len(queries))
            self._registry.counter("repro.serving.batch_requests")
            results: List[Optional[PredictionResult]] = [None] * len(queries)
            first_miss: Dict[object, int] = {}
            miss_indices: List[int] = []
            with self._tracer.span("cache.lookup", n=len(queries)):
                for index, query in enumerate(queries):
                    key = self._cache_key(engine.version, query)
                    if key in first_miss:
                        # Sequentially, the earlier miss would have filled
                        # the cache by now — mirror that hit exactly,
                        # stats included, without touching the cache.
                        self._registry.counter("repro.serving.cache.hits")
                        self.cache.note_hit()
                        results[index] = first_miss[key]  # placeholder index
                        continue
                    value = self.cache.get(key, _MISS)
                    if value is not _MISS:
                        self._registry.counter("repro.serving.cache.hits")
                        results[index] = PredictionResult(
                            gap=value,
                            version=engine.version,
                            cached=True,
                            intervals=self._intervals(
                                engine, value, query.timeslot
                            ),
                        )
                    else:
                        self._registry.counter("repro.serving.cache.misses")
                        first_miss[key] = index
                        miss_indices.append(index)
            if miss_indices:
                group = _BatchGroup([queries[i] for i in miss_indices])
                answers = self._batcher.submit(group).result()
                for index, (gap, version, intervals) in zip(miss_indices, answers):
                    results[index] = PredictionResult(
                        gap=gap, version=version, cached=False, intervals=intervals
                    )
            # Resolve within-batch duplicates: an int placeholder points
            # at the first occurrence, whose result is now materialized.
            for index, result in enumerate(results):
                if isinstance(result, int):
                    source = results[result]
                    results[index] = PredictionResult(
                        gap=source.gap,
                        version=source.version,
                        cached=True,
                        intervals=source.intervals,
                    )
        return results

    @staticmethod
    def _intervals(
        engine: _Engine, gap: float, timeslot: int
    ) -> Optional[Dict[str, float]]:
        """P10/P50/P90 for a gap, from the engine's quantile head (or None).

        Computed at result-assembly time from the (cached or freshly
        forwarded) point gap — the cache keeps bare floats, so a hit
        derives intervals bitwise-identical to the cold compute: the key
        pins the engine version, hence the exact same offset table.
        """
        if engine.quantiles is None:
            return None
        return engine.quantiles.intervals(gap, timeslot)

    def _cache_key(self, version: str, query: GapQuery):
        return (
            version,
            query.area_id,
            query.day,
            query.timeslot,
            self._env_hash(query.area_id, query.day, query.timeslot),
        )

    def _env_hash(self, area_id: int, day: int, timeslot: int) -> bytes:
        """8-byte digest of the query's weather + traffic windows.

        Keys change whenever the environment inputs the model would see
        change, so cached gaps can never outlive the data they were
        computed from.  Order counts are intentionally NOT hashed (the
        profile vectors are too wide to hash per request); order
        observations rely on targeted invalidation instead.
        """
        L = self.config.window_minutes
        lo, hi = timeslot - L, timeslot
        weather = self.dataset.weather
        digest = hashlib.blake2b(digest_size=8)
        digest.update(weather.types[day, lo:hi].tobytes())
        digest.update(weather.temperature[day, lo:hi].tobytes())
        digest.update(weather.pm25[day, lo:hi].tobytes())
        digest.update(self.dataset.traffic.level_counts[area_id, day, lo:hi].tobytes())
        return digest.digest()

    def _handle_batch(self, items: List[object]) -> List[object]:
        """One vectorized pass for a micro-batch (batcher thread only).

        Items are single :class:`GapQuery` submissions or
        :class:`_BatchGroup` bundles from :meth:`predict_batch`; groups
        are flattened into the same forward pass, so a batch request
        coalesces with concurrent single predicts at zero extra cost.
        Duplicate queries collapse to one forward row, so every duplicate
        gets the same float — bitwise equal to a one-at-a-time answer.
        The batcher runs this under its ``batcher.batch`` span, so the
        stage spans below nest there automatically.
        """
        engine = self._engine
        queries: List[GapQuery] = []
        extents: List[Tuple[int, int]] = []
        for item in items:
            if isinstance(item, _BatchGroup):
                extents.append((len(queries), len(item.queries)))
                queries.extend(item.queries)
            else:
                extents.append((len(queries), 1))
                queries.append(item)
        keys = [self._cache_key(engine.version, query) for query in queries]
        unique: Dict[object, int] = {}
        unique_queries: List[GapQuery] = []
        for key, query in zip(keys, queries):
            if key not in unique:
                unique[key] = len(unique_queries)
                unique_queries.append(query)
        with self._tracer.span("batch.featurize", rows=len(unique_queries)):
            example_set = engine.predictor._featurize(unique_queries)
        with self._tracer.span("batch.forward", rows=len(unique_queries)):
            gaps = engine.trainer.predict(example_set)
        with self._tracer.span("cache.fill", entries=len(unique)):
            for key, index in unique.items():
                self.cache.put(key, float(gaps[index]))
        self._registry.counter("repro.serving.predictions", len(unique_queries))
        answers = []
        for key, query in zip(keys, queries):
            gap = float(gaps[unique[key]])
            answers.append(
                (gap, engine.version, self._intervals(engine, gap, query.timeslot))
            )
        results: List[object] = []
        for item, (start, count) in zip(items, extents):
            if isinstance(item, _BatchGroup):
                results.append(answers[start:start + count])
            else:
                results.append(answers[start])
        return results

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------

    def load_checkpoint(self, path: str) -> str:
        """Swap in a new checkpoint without dropping in-flight requests.

        The swap is a single reference assignment: requests that already
        read the old engine finish on it; later requests (and the batches
        serving them) see the new one.  No cache flush is needed — the
        new version tag changes every cache key.  Returns the new
        version string.
        """
        trainer = Trainer.from_checkpoint(path)
        scalers = self._check_serving_meta(
            trainer, self.dataset, self.config, source=path
        )
        self._apply_tape_policy(trainer)
        self._swap_count += 1
        version = f"v{self._swap_count}:{os.path.basename(path)}"
        self._engine = _Engine(trainer, self._make_predictor(trainer, scalers), version)
        self._registry.counter("repro.serving.checkpoint_swaps")
        _log.event("serving.checkpoint_swapped", version=version, path=path)
        return version

    # ------------------------------------------------------------------
    # Live observations
    # ------------------------------------------------------------------

    def observe(
        self,
        kind: str,
        day: int,
        minute: int,
        area_id: Optional[int] = None,
        **values,
    ) -> Dict[str, int]:
        """Ingest one observation and invalidate exactly what it staled.

        An observation at minute ``m`` sits inside the lookback window of
        timeslots ``t`` with ``m < t <= m + L`` — only those cache
        entries are dropped (for every area on weather, which is
        city-wide; for ``area_id`` alone on traffic and orders).  Order
        observations additionally drop the warm profile for
        ``(area_id, day)`` and any cached entry for later days in that
        area, whose per-weekday histories may average over the mutated
        day.

        Returns ``{"invalidated": n, "profiles_dropped": m}``.
        """
        if kind not in ObservationKind:
            raise DataError(f"unknown observation kind {kind!r}; known: {ObservationKind}")
        if not 0 <= day < self.dataset.n_days:
            raise DataError(f"day {day} outside the simulation")
        if not 0 <= minute < MINUTES_PER_DAY:
            raise DataError(f"minute {minute} must be in [0, {MINUTES_PER_DAY})")
        if kind in ("traffic", "orders"):
            if area_id is None:
                raise DataError(f"{kind} observations require area_id")
            if not 0 <= area_id < self.dataset.n_areas:
                raise DataError(f"area {area_id} outside the city")

        with self._tracer.span("serving.observe", kind=kind):
            return self._observe(kind, day, minute, area_id, values)

    def _observe(
        self,
        kind: str,
        day: int,
        minute: int,
        area_id: Optional[int],
        values: Dict,
    ) -> Dict[str, int]:
        L = self.config.window_minutes
        profiles_dropped = 0
        if kind == "weather":
            self._apply_weather(day, minute, values)

            def stale(key) -> bool:
                return key[2] == day and minute < key[3] <= minute + L

        elif kind == "traffic":
            self._apply_traffic(area_id, day, minute, values)

            def stale(key) -> bool:
                return (
                    key[1] == area_id
                    and key[2] == day
                    and minute < key[3] <= minute + L
                )

        else:  # orders
            self._apply_orders(area_id, day, minute, values)
            profiles_dropped = self._engine.predictor.drop_profiles(area_id, day)

            def stale(key) -> bool:
                if key[1] != area_id:
                    return False
                if key[2] > day:
                    return True
                return key[2] == day and minute < key[3] <= minute + L

        invalidated = self.cache.invalidate(stale)
        self._registry.counter("repro.serving.observations")
        self._registry.counter("repro.serving.invalidated", invalidated)
        _log.event(
            "serving.observed",
            kind=kind,
            day=day,
            minute=minute,
            area=area_id,
            invalidated=invalidated,
        )
        return {"invalidated": invalidated, "profiles_dropped": profiles_dropped}

    def _apply_weather(self, day: int, minute: int, values: Dict) -> None:
        known = {"weather_type", "temperature", "pm25"}
        self._check_values(values, known)
        weather = self.dataset.weather
        if "weather_type" in values:
            weather.types[day, minute] = int(values["weather_type"])
        if "temperature" in values:
            weather.temperature[day, minute] = float(values["temperature"])
        if "pm25" in values:
            weather.pm25[day, minute] = float(values["pm25"])

    def _apply_traffic(
        self, area_id: int, day: int, minute: int, values: Dict
    ) -> None:
        self._check_values(values, {"level_counts"})
        counts = np.asarray(values["level_counts"], dtype=np.float64)
        if counts.shape != (4,):
            raise DataError(
                f"level_counts must have 4 congestion levels, got shape {counts.shape}"
            )
        self.dataset.traffic.level_counts[area_id, day, minute] = counts

    def _apply_orders(
        self, area_id: int, day: int, minute: int, values: Dict
    ) -> None:
        self._check_values(values, {"valid", "invalid"})
        if "valid" in values:
            self.dataset.valid_counts[area_id, day, minute] = int(values["valid"])
        if "invalid" in values:
            self.dataset.invalid_counts[area_id, day, minute] = int(values["invalid"])
            # Keep the O(1) gap-label cumsum coherent for this (area, day).
            self.dataset._invalid_cumsum[area_id, day, 1:] = self.dataset.invalid_counts[
                area_id, day
            ].cumsum(dtype=np.int64)

    @staticmethod
    def _check_values(values: Dict, known: set) -> None:
        unknown = set(values) - known
        if unknown:
            raise DataError(f"unknown observation fields {sorted(unknown)}; known: {sorted(known)}")
        if not values:
            raise DataError(f"observation needs at least one of {sorted(known)}")

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service-level state for the ``/stats`` endpoint and tests."""
        return {
            "version": self._engine.version,
            "quantiles": self._engine.quantiles is not None,
            "swap_count": self._swap_count,
            "cache": self.cache.stats(),
            "max_batch": self.serving_config.max_batch,
            "max_wait_ms": self.serving_config.max_wait_ms,
            "eager_flush": self.serving_config.eager_flush,
        }

    def close(self) -> None:
        """Drain and stop the batcher (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class CheckpointWatcher:
    """Hot-swap the service whenever a new bundle lands in a directory.

    This is the fleet's checkpoint-distribution mechanism: a trainer (or
    the continuous-learning loop, someday) writes a new atomic bundle
    into the shared checkpoint directory, and every worker's watcher
    notices the ``latest.json`` pointer move and swaps its engine
    snapshot independently — no coordination, no downtime, and never a
    torn read, because bundles are written tmp+rename with the pointer
    updated last.

    A failed swap (e.g. a bundle trained for a different window) is
    logged and retried on the next poll; the worker keeps serving its
    current engine.
    """

    def __init__(
        self,
        service: PredictionService,
        directory: str,
        interval_seconds: float = 2.0,
    ) -> None:
        from ..core.checkpoint import Checkpoint

        if interval_seconds <= 0:
            raise ConfigError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self._checkpoint_cls = Checkpoint
        self._service = service
        self.directory = os.fspath(directory)
        self.interval_seconds = interval_seconds
        self._stem = Checkpoint.latest_stem(self.directory)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serving-ckpt-watcher", daemon=True
        )

    def start(self) -> "CheckpointWatcher":
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    def poll_once(self) -> Optional[str]:
        """Check the pointer; swap if it moved.  Returns the new version."""
        try:
            stem = self._checkpoint_cls.latest_stem(self.directory)
        except OSError:
            return None
        if stem is None or stem == self._stem:
            return None
        try:
            version = self._service.load_checkpoint(self.directory)
        except Exception as error:  # noqa: BLE001 — keep serving old engine
            _log.event(
                "serving.watch_swap_failed",
                directory=self.directory,
                stem=stem,
                error=repr(error),
            )
            return None
        self._stem = stem
        _log.event(
            "serving.watch_swapped", directory=self.directory,
            stem=stem, version=version,
        )
        return version

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.poll_once()
