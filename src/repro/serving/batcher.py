"""Micro-batching request queue.

Request threads submit items and get back futures; one daemon worker
drains the queue, hands the batch to a vectorized handler, and fans the
results back out.  Two flush policies are supported:

* **eager** (``eager_flush=True``): dispatch as soon as the worker is
  free, batching whatever is already queued (up to ``max_batch``).
  Under load, requests naturally accumulate while the previous batch is
  being handled — the handler's own duration is the batching window — so
  throughput self-batches with zero added latency.  A lone request is
  dispatched immediately.
* **linger** (``eager_flush=False``): after the first item, wait up to
  ``max_wait_ms`` for more before dispatching.  This builds larger
  batches at low open-loop load at the cost of up to ``max_wait_ms``
  extra latency per batch — including when no further request is coming,
  which makes it strictly slower for closed-loop callers that block on
  each future.

Model forwards are NOT thread-safe here (the trainer's best-k ensemble
swaps weights in and out of one model instance), so confining every
handler call to the single worker thread is load-bearing, not just an
optimization.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence

from ..exceptions import ConfigError
from ..obs import MetricsRegistry, Tracer, get_registry, get_tracer

__all__ = ["MicroBatcher"]

_STOP = object()


class MicroBatcher:
    """Collect-then-dispatch wrapper around a batch handler.

    Parameters
    ----------
    handler:
        ``handler(items) -> results`` — called on the worker thread with
        1..max_batch items; must return one result per item, in order.
    max_batch:
        Largest batch handed to ``handler``.
    max_wait_ms:
        How long the worker waits for more items after the first one
        (linger policy only).
    eager_flush:
        Dispatch immediately with whatever is queued instead of
        lingering ``max_wait_ms`` for a fuller batch (see module
        docstring).  Defaults to the historical linger behavior.
    registry:
        Metrics sink (defaults to the process registry).  Emits
        ``repro.serving.batcher.queue_depth`` (gauge, sampled per
        dispatch) and ``repro.serving.batch_size`` (histogram).
    tracer:
        Span sink (defaults to the process tracer, off unless enabled).
        When tracing, :meth:`submit` captures the caller's active span
        context and the worker records one ``batcher.queue_wait`` span
        per item under it — the explicit hand-off that keeps parent/child
        nesting intact across the thread boundary — plus one
        ``batcher.batch`` span (parented to the first item's context)
        around the handler call.
    """

    def __init__(
        self,
        handler: Callable[[List[object]], Sequence[object]],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        eager_flush: bool = False,
    ) -> None:
        if max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ConfigError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.eager_flush = eager_flush
        self._registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        # Guards the closed-check + enqueue in submit() against close():
        # without it a submit that passed the check could enqueue after
        # the _STOP sentinel and its future would never resolve.
        self._lifecycle_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, item: object) -> "Future":
        """Enqueue one item; the future resolves to the handler's result."""
        future: "Future" = Future()
        tracer = self._tracer
        if tracer.enabled:
            # Capture the submitting context here: the worker thread has
            # its own (empty) contextvars context, so the parent link must
            # travel with the queue item.
            context = tracer.current()
            enqueued = tracer.clock()
        else:
            context, enqueued = None, 0.0
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.put((item, future, context, enqueued))
        return future

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the worker after it drains what is already queued."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        clock = self._registry.clock
        while True:
            first = self._queue.get()
            if first is _STOP:
                self._drain_closed()
                return
            batch = [first]
            stop_after = False
            if self.eager_flush:
                # Take only what is already queued — never sleep.  The
                # next batch accumulates while the handler runs.
                while len(batch) < self.max_batch:
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if item is _STOP:
                        stop_after = True
                        break
                    batch.append(item)
            else:
                deadline = clock() + self.max_wait_s
                while len(batch) < self.max_batch:
                    remaining = deadline - clock()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if item is _STOP:
                        stop_after = True
                        break
                    batch.append(item)
            self._registry.gauge(
                "repro.serving.batcher.queue_depth", self._queue.qsize()
            )
            self._registry.observe("repro.serving.batch_size", len(batch))
            self._dispatch(batch)
            if stop_after:
                self._drain_closed()
                return

    def _drain_closed(self) -> None:
        """Fail anything still queued when the worker exits.

        The lifecycle lock means nothing should ever follow the ``_STOP``
        sentinel, but a hung future is the worst failure mode a batcher
        can have, so the worker sweeps the queue anyway and resolves any
        stragglers with a loud error instead of leaving them pending
        forever.
        """
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            _, future, _, _ = item
            if not future.done():
                future.set_exception(RuntimeError("batcher closed"))

    def _dispatch(self, batch) -> None:
        items = [item for item, _, _, _ in batch]
        futures = [future for _, future, _, _ in batch]
        tracer = self._tracer
        parent = None
        if tracer.enabled:
            now = tracer.clock()
            for _, _, context, enqueued in batch:
                if context is not None:
                    tracer.record(
                        "batcher.queue_wait",
                        start=enqueued,
                        duration=now - enqueued,
                        parent=context,
                    )
                    if parent is None:
                        parent = context
        try:
            with tracer.span("batcher.batch", parent=parent, batch_size=len(items)):
                with self._registry.timer("repro.serving.batch_seconds"):
                    results = list(self._handler(items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(items)} items"
                )
        except BaseException as error:  # noqa: BLE001 — fanned to callers
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result(result)
