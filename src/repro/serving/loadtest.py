"""Concurrent load generator for the serving API (single node or fleet).

``repro loadtest`` drives a mixed stream of ``/predict`` and ``/observe``
requests — thousands of them, from many threads with keep-alive
connections — against any endpoint speaking the serving JSON API: a lone
``repro serve`` process or a fleet router.  It measures what the bench
harness's in-process loop cannot: the full HTTP + router + retry path
under saturation, including worker deaths mid-load.

The op stream is generated deterministically from ``seed`` and the scale
config (areas/days/valid timeslot range), so two runs against equivalent
deployments issue byte-identical request bodies.  Results land in the
canonical ``BENCH_perf.json`` trajectory under ``serving.fleet.*`` keys
(see ``docs/performance.md``): latency percentiles in milliseconds plus
saturation throughput as ``items_per_sec`` — the key family the perf
regression gate watches.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bench import BENCH_SCHEMA_VERSION, load_bench, write_bench
from ..config import ExperimentScale
from ..exceptions import ConfigError
from ..obs import Histogram, get_logger
from .router import TRANSPORT_ERRORS, request_json

__all__ = ["LoadTestResult", "generate_ops", "run_loadtest", "merge_bench"]

_log = get_logger(__name__)

_MINUTES_PER_DAY = 1440


@dataclass
class LoadTestResult:
    """Outcome of one load-test run."""

    requests: int
    errors: int
    seconds: float
    concurrency: int
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def items_per_sec(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def metrics(self, prefix: str = "serving.fleet") -> Dict[str, float]:
        """Flat metric dict for the ``BENCH_perf.json`` trajectory."""
        return {
            f"{prefix}.requests": float(self.requests),
            f"{prefix}.errors": float(self.errors),
            f"{prefix}.seconds": self.seconds,
            f"{prefix}.concurrency": float(self.concurrency),
            f"{prefix}.items_per_sec": self.items_per_sec,
            f"{prefix}.p50_ms": self.p50_ms,
            f"{prefix}.p95_ms": self.p95_ms,
            f"{prefix}.p99_ms": self.p99_ms,
        }


def generate_ops(
    scale: ExperimentScale,
    n_requests: int,
    observe_fraction: float = 0.2,
    seed: int = 0,
) -> List[Tuple[str, dict]]:
    """A deterministic mixed op stream of ``(path, body)`` pairs.

    Predictions draw uniformly over the city's valid query space (any
    area/day, timeslots with a full lookback window and room for the
    gap); observations split evenly across the three kinds with
    in-domain values.  Everything derives from ``seed`` via one
    ``default_rng``, so the stream is reproducible across runs and
    machines.
    """
    if n_requests <= 0:
        raise ConfigError(f"n_requests must be positive, got {n_requests}")
    if not 0.0 <= observe_fraction <= 1.0:
        raise ConfigError(
            f"observe_fraction must be in [0, 1], got {observe_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_areas = scale.simulation.n_areas
    n_days = scale.features.n_days
    slot_lo = scale.features.window_minutes
    slot_hi = _MINUTES_PER_DAY - scale.features.gap_minutes
    ops: List[Tuple[str, dict]] = []
    for _ in range(n_requests):
        if rng.random() < observe_fraction:
            kind = ("traffic", "weather", "orders")[int(rng.integers(3))]
            day = int(rng.integers(n_days))
            minute = int(rng.integers(_MINUTES_PER_DAY))
            if kind == "traffic":
                body = {
                    "kind": kind, "day": day, "minute": minute,
                    "area": int(rng.integers(n_areas)),
                    "values": {
                        "level_counts": [int(v) for v in rng.integers(0, 30, 4)]
                    },
                }
            elif kind == "weather":
                body = {
                    "kind": kind, "day": day, "minute": minute,
                    "values": {
                        "weather_type": int(rng.integers(4)),
                        "temperature": round(float(rng.uniform(-5, 35)), 2),
                        "pm25": round(float(rng.uniform(5, 300)), 2),
                    },
                }
            else:
                valid = int(rng.integers(0, 40))
                body = {
                    "kind": kind, "day": day, "minute": minute,
                    "area": int(rng.integers(n_areas)),
                    "values": {
                        "valid": valid,
                        "invalid": int(rng.integers(0, max(1, valid))),
                    },
                }
            ops.append(("/observe", body))
        else:
            ops.append((
                "/predict",
                {
                    "area": int(rng.integers(n_areas)),
                    "day": int(rng.integers(n_days)),
                    "timeslot": int(rng.integers(slot_lo, slot_hi + 1)),
                },
            ))
    return ops


def _address_of(url: str) -> str:
    """``http://host:port/...`` or bare ``host:port`` → ``host:port``."""
    stripped = url.strip()
    if "//" in stripped:
        stripped = stripped.split("//", 1)[1]
    return stripped.split("/", 1)[0]


def run_loadtest(
    url: str,
    scale: ExperimentScale,
    n_requests: int = 2000,
    concurrency: int = 8,
    observe_fraction: float = 0.2,
    seed: int = 0,
    timeout: float = 60.0,
) -> LoadTestResult:
    """Drive ``n_requests`` mixed ops at ``url`` from ``concurrency``
    threads; every thread keeps its own keep-alive connection.

    A request counts as an error when it returns a non-200 status or
    dies on a transport error (the fleet router's retry loop makes the
    latter rare even while workers are being killed).  Latency is
    end-to-end per request, recorded into a quantile sketch.
    """
    if concurrency <= 0:
        raise ConfigError(f"concurrency must be positive, got {concurrency}")
    address = _address_of(url)
    ops = generate_ops(scale, n_requests, observe_fraction, seed)
    latencies = Histogram()
    histogram_lock = threading.Lock()
    errors = [0] * concurrency
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def drive(thread_index: int) -> None:
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(ops):
                    return
                cursor["next"] = index + 1
            path, body = ops[index]
            started = time.perf_counter()
            try:
                status, _ = request_json(
                    address, "POST", path, body, timeout=timeout
                )
            except TRANSPORT_ERRORS:
                status = -1
            elapsed = time.perf_counter() - started
            if status != 200:
                errors[thread_index] += 1
            with histogram_lock:
                latencies.observe(elapsed)

    threads = [
        threading.Thread(target=drive, args=(i,), daemon=True,
                         name=f"repro-loadtest-{i}")
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started

    result = LoadTestResult(
        requests=len(ops),
        errors=sum(errors),
        seconds=seconds,
        concurrency=concurrency,
        p50_ms=latencies.quantile(0.50) * 1000.0,
        p95_ms=latencies.quantile(0.95) * 1000.0,
        p99_ms=latencies.quantile(0.99) * 1000.0,
    )
    _log.event(
        "loadtest.finished",
        requests=result.requests,
        errors=result.errors,
        seconds=round(result.seconds, 3),
        items_per_sec=round(result.items_per_sec, 1),
        p99_ms=round(result.p99_ms, 2),
    )
    return result


def merge_bench(
    metrics: Dict[str, float],
    path: str,
    scale_name: Optional[str] = None,
) -> str:
    """Merge ``metrics`` into the bench trajectory at ``path``.

    Existing keys outside ``metrics`` are preserved (the loadtest only
    owns its ``serving.fleet.*`` family); a missing file gets a fresh
    skeleton so the loadtest can bootstrap a trajectory on its own.
    """
    if os.path.exists(path):
        payload = load_bench(path)
    else:
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "generated_by": "repro loadtest",
            "scale": scale_name or "tiny",
            "cpu_count": os.cpu_count() or 1,
            "metrics": {},
        }
    payload.setdefault("metrics", {}).update(
        {name: round(float(value), 4) for name, value in metrics.items()}
    )
    return write_bench(payload, path)
