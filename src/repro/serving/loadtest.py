"""Concurrent load generator for the serving API (single node or fleet).

``repro loadtest`` drives a mixed stream of ``/predict`` and ``/observe``
requests — thousands of them, from many threads with keep-alive
connections — against any endpoint speaking the serving JSON API: a lone
``repro serve`` process or a fleet router.  It measures what the bench
harness's in-process loop cannot: the full HTTP + router + retry path
under saturation, including worker deaths mid-load.

The op stream is generated deterministically from ``seed`` and the scale
config (areas/days/valid timeslot range), so two runs against equivalent
deployments issue byte-identical request bodies.  Results land in the
canonical ``BENCH_perf.json`` trajectory under ``serving.fleet.*`` keys
(see ``docs/performance.md``): latency percentiles in milliseconds plus
saturation throughput as ``items_per_sec`` — the key family the perf
regression gate watches.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bench import BENCH_SCHEMA_VERSION, load_bench, write_bench
from ..config import ExperimentScale
from ..exceptions import ConfigError
from ..obs import Histogram, get_logger
from .router import TRANSPORT_ERRORS, request_json

__all__ = [
    "LoadTestResult",
    "generate_ops",
    "merge_bench",
    "run_loadtest",
    "verify_batch_identical",
]

_log = get_logger(__name__)

_MINUTES_PER_DAY = 1440


@dataclass
class LoadTestResult:
    """Outcome of one load-test run.

    ``requests`` counts HTTP round-trips; ``items`` counts logical
    operations (a ``/predict_batch`` of 32 is one request, 32 items).
    The two are equal in single-item mode.
    """

    requests: int
    errors: int
    seconds: float
    concurrency: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    items: int = 0
    batch: int = 1
    pipeline: int = 1

    def __post_init__(self) -> None:
        if self.items <= 0:
            self.items = self.requests

    @property
    def items_per_sec(self) -> float:
        return self.items / self.seconds if self.seconds > 0 else 0.0

    def metrics(self, prefix: str = "serving.fleet") -> Dict[str, float]:
        """Flat metric dict for the ``BENCH_perf.json`` trajectory."""
        return {
            f"{prefix}.requests": float(self.requests),
            f"{prefix}.items": float(self.items),
            f"{prefix}.errors": float(self.errors),
            f"{prefix}.seconds": self.seconds,
            f"{prefix}.concurrency": float(self.concurrency),
            f"{prefix}.items_per_sec": self.items_per_sec,
            f"{prefix}.p50_ms": self.p50_ms,
            f"{prefix}.p95_ms": self.p95_ms,
            f"{prefix}.p99_ms": self.p99_ms,
        }


def generate_ops(
    scale: ExperimentScale,
    n_requests: int,
    observe_fraction: float = 0.2,
    seed: int = 0,
) -> List[Tuple[str, dict]]:
    """A deterministic mixed op stream of ``(path, body)`` pairs.

    Predictions draw uniformly over the city's valid query space (any
    area/day, timeslots with a full lookback window and room for the
    gap); observations split evenly across the three kinds with
    in-domain values.  Everything derives from ``seed`` via one
    ``default_rng``, so the stream is reproducible across runs and
    machines.
    """
    if n_requests <= 0:
        raise ConfigError(f"n_requests must be positive, got {n_requests}")
    if not 0.0 <= observe_fraction <= 1.0:
        raise ConfigError(
            f"observe_fraction must be in [0, 1], got {observe_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_areas = scale.simulation.n_areas
    n_days = scale.features.n_days
    slot_lo = scale.features.window_minutes
    slot_hi = _MINUTES_PER_DAY - scale.features.gap_minutes
    ops: List[Tuple[str, dict]] = []
    for _ in range(n_requests):
        if rng.random() < observe_fraction:
            kind = ("traffic", "weather", "orders")[int(rng.integers(3))]
            day = int(rng.integers(n_days))
            minute = int(rng.integers(_MINUTES_PER_DAY))
            if kind == "traffic":
                body = {
                    "kind": kind, "day": day, "minute": minute,
                    "area": int(rng.integers(n_areas)),
                    "values": {
                        "level_counts": [int(v) for v in rng.integers(0, 30, 4)]
                    },
                }
            elif kind == "weather":
                body = {
                    "kind": kind, "day": day, "minute": minute,
                    "values": {
                        "weather_type": int(rng.integers(4)),
                        "temperature": round(float(rng.uniform(-5, 35)), 2),
                        "pm25": round(float(rng.uniform(5, 300)), 2),
                    },
                }
            else:
                valid = int(rng.integers(0, 40))
                body = {
                    "kind": kind, "day": day, "minute": minute,
                    "area": int(rng.integers(n_areas)),
                    "values": {
                        "valid": valid,
                        "invalid": int(rng.integers(0, max(1, valid))),
                    },
                }
            ops.append(("/observe", body))
        else:
            ops.append((
                "/predict",
                {
                    "area": int(rng.integers(n_areas)),
                    "day": int(rng.integers(n_days)),
                    "timeslot": int(rng.integers(slot_lo, slot_hi + 1)),
                },
            ))
    return ops


def _address_of(url: str) -> str:
    """``http://host:port/...`` or bare ``host:port`` → ``host:port``."""
    stripped = url.strip()
    if "//" in stripped:
        stripped = stripped.split("//", 1)[1]
    return stripped.split("/", 1)[0]


def group_batches(
    ops: List[Tuple[str, dict]], batch: int
) -> List[Tuple[str, dict, int]]:
    """Fold runs of ``/predict`` ops into ``/predict_batch`` wire ops.

    Consecutive predictions (up to ``batch`` of them) become one
    ``{"items": [...]}`` request; an ``/observe`` in the stream flushes
    the run so the observe/predict interleaving the seed generated is
    preserved.  Returns ``(path, body, n_items)`` triples.
    """
    if batch <= 1:
        return [(path, body, 1) for path, body in ops]
    wire: List[Tuple[str, dict, int]] = []
    run: List[dict] = []

    def flush() -> None:
        if not run:
            return
        if len(run) == 1:
            wire.append(("/predict", run[0], 1))
        else:
            wire.append(("/predict_batch", {"items": list(run)}, len(run)))
        run.clear()

    for path, body in ops:
        if path == "/predict":
            run.append(body)
            if len(run) >= batch:
                flush()
        else:
            flush()
            wire.append((path, body, 1))
    flush()
    return wire


class _RawClient:
    """Minimal pipelining HTTP/1.1 client on one keep-alive socket.

    ``http.client`` refuses to send a second request before the first
    response is read, so the pipelined load mode frames requests by hand:
    write a whole window of requests, then read the same number of
    responses back (the server — selector loop or threaded — replies in
    order).
    """

    def __init__(self, address: str, timeout: float) -> None:
        host, _, port = address.rpartition(":")
        self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._host = address

    def format_request(self, path: str, body: dict) -> bytes:
        data = json.dumps(body).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {self._host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n\r\n"
        )
        return head.encode("latin-1") + data

    def send(self, blob: bytes) -> None:
        self._sock.sendall(blob)

    def read_response(self) -> Tuple[int, bytes]:
        status_line = self._file.readline()
        if not status_line:
            raise OSError("connection closed mid-pipeline")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = self._file.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        body = self._file.read(length) if length > 0 else b""
        return status, body

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            try:
                self._sock.close()
            except OSError:
                pass


def run_loadtest(
    url: str,
    scale: ExperimentScale,
    n_requests: int = 2000,
    concurrency: int = 8,
    observe_fraction: float = 0.2,
    seed: int = 0,
    timeout: float = 60.0,
    batch: int = 1,
    pipeline: int = 1,
) -> LoadTestResult:
    """Drive ``n_requests`` mixed ops at ``url`` from ``concurrency``
    threads; every thread keeps its own keep-alive connection.

    ``batch > 1`` folds runs of predictions into ``/predict_batch``
    requests of up to that many items (:func:`group_batches`), measuring
    the batched transport plane; ``n_requests`` still counts *items*.
    ``pipeline > 1`` switches threads to raw pipelined sockets that keep
    that many requests on the wire at once — in that mode each recorded
    latency covers one full pipeline window, an honest upper bound per
    request.

    A request counts as an error when it returns a non-200 status or
    dies on a transport error (the fleet router's retry loop makes the
    latter rare even while workers are being killed).  Latency is
    end-to-end per request, recorded into a quantile sketch.
    """
    if concurrency <= 0:
        raise ConfigError(f"concurrency must be positive, got {concurrency}")
    if batch <= 0:
        raise ConfigError(f"batch must be positive, got {batch}")
    if pipeline <= 0:
        raise ConfigError(f"pipeline must be positive, got {pipeline}")
    address = _address_of(url)
    ops = generate_ops(scale, n_requests, observe_fraction, seed)
    wire_ops = group_batches(ops, batch)
    latencies = Histogram()
    histogram_lock = threading.Lock()
    errors = [0] * concurrency
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def drive(thread_index: int) -> None:
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(wire_ops):
                    return
                cursor["next"] = index + 1
            path, body, n_items = wire_ops[index]
            started = time.perf_counter()
            try:
                status, _ = request_json(
                    address, "POST", path, body, timeout=timeout
                )
            except TRANSPORT_ERRORS:
                status = -1
            elapsed = time.perf_counter() - started
            if status != 200:
                errors[thread_index] += n_items
            with histogram_lock:
                latencies.observe(elapsed)

    def drive_pipelined(thread_index: int) -> None:
        client: Optional[_RawClient] = None
        try:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(wire_ops):
                        return
                    take = min(pipeline, len(wire_ops) - index)
                    cursor["next"] = index + take
                window = wire_ops[index:index + take]
                started = time.perf_counter()
                try:
                    if client is None:
                        client = _RawClient(address, timeout)
                    client.send(b"".join(
                        client.format_request(path, body)
                        for path, body, _ in window
                    ))
                    statuses = [
                        client.read_response()[0] for _ in window
                    ]
                except (OSError, ValueError, IndexError):
                    statuses = [-1] * len(window)
                    if client is not None:
                        client.close()
                        client = None
                elapsed = time.perf_counter() - started
                for (_, _, n_items), status in zip(window, statuses):
                    if status != 200:
                        errors[thread_index] += n_items
                with histogram_lock:
                    latencies.observe(elapsed)
        finally:
            if client is not None:
                client.close()

    target = drive_pipelined if pipeline > 1 else drive
    threads = [
        threading.Thread(target=target, args=(i,), daemon=True,
                         name=f"repro-loadtest-{i}")
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started

    result = LoadTestResult(
        requests=len(wire_ops),
        items=len(ops),
        batch=batch,
        pipeline=pipeline,
        errors=sum(errors),
        seconds=seconds,
        concurrency=concurrency,
        p50_ms=latencies.quantile(0.50) * 1000.0,
        p95_ms=latencies.quantile(0.95) * 1000.0,
        p99_ms=latencies.quantile(0.99) * 1000.0,
    )
    _log.event(
        "loadtest.finished",
        requests=result.requests,
        items=result.items,
        batch=batch,
        pipeline=pipeline,
        errors=result.errors,
        seconds=round(result.seconds, 3),
        items_per_sec=round(result.items_per_sec, 1),
        p99_ms=round(result.p99_ms, 2),
    )
    return result


def verify_batch_identical(
    url: str,
    scale: ExperimentScale,
    n_items: int = 64,
    seed: int = 7_777,
    timeout: float = 60.0,
) -> Dict[str, float]:
    """Cross-check ``/predict_batch`` against per-item ``/predict``.

    Issues one set of fresh queries per item first and then as one
    batch, and a second disjoint set batch-first — so both the
    single-computed-then-batch-read and batch-computed-then-single-read
    directions are exercised end to end through whatever (router, fleet,
    cache) sits behind ``url``.  Gaps are compared with ``==`` on the
    JSON-decoded floats, which is bitwise equality for doubles (JSON
    round-trips them exactly).

    Returns ``{"serving.batch.identical": 0|1,
    "serving.batch.checked": n, "serving.batch.mismatches": k}`` ready
    to merge into the bench trajectory.
    """
    if n_items < 2:
        raise ConfigError(f"n_items must be >= 2, got {n_items}")
    address = _address_of(url)
    rng = np.random.default_rng(seed)
    n_areas = scale.simulation.n_areas
    n_days = scale.features.n_days
    slot_lo = scale.features.window_minutes
    slot_hi = _MINUTES_PER_DAY - scale.features.gap_minutes
    seen = set()
    items: List[dict] = []
    while len(items) < n_items:
        triple = (
            int(rng.integers(n_areas)),
            int(rng.integers(n_days)),
            int(rng.integers(slot_lo, slot_hi + 1)),
        )
        if triple in seen:
            continue
        seen.add(triple)
        items.append(
            {"area": triple[0], "day": triple[1], "timeslot": triple[2]}
        )
    half = len(items) // 2
    mismatches = 0
    checked = 0

    def single(body: dict) -> dict:
        status, payload = request_json(
            address, "POST", "/predict", body, timeout=timeout
        )
        if status != 200:
            raise RuntimeError(f"/predict -> {status}: {payload}")
        return payload

    def batched(bodies: List[dict]) -> List[dict]:
        status, payload = request_json(
            address, "POST", "/predict_batch", {"items": bodies},
            timeout=timeout,
        )
        if status != 200:
            raise RuntimeError(f"/predict_batch -> {status}: {payload}")
        results = payload.get("results", [])
        if len(results) != len(bodies):
            raise RuntimeError(
                f"/predict_batch returned {len(results)} results "
                f"for {len(bodies)} items"
            )
        return results

    # Direction 1: compute per item, read back as one batch.
    first = items[:half]
    singles = [single(body) for body in first]
    for expected, got in zip(singles, batched(first)):
        checked += 1
        if expected["gap"] != got["gap"] or expected["version"] != got["version"]:
            mismatches += 1
    # Direction 2: compute as one batch, read back per item.
    second = items[half:]
    batch_results = batched(second)
    for expected, body in zip(batch_results, second):
        got = single(body)
        checked += 1
        if expected["gap"] != got["gap"] or expected["version"] != got["version"]:
            mismatches += 1

    identical = 1.0 if mismatches == 0 else 0.0
    _log.event(
        "loadtest.batch_verified",
        checked=checked,
        mismatches=mismatches,
        identical=bool(identical),
    )
    return {
        "serving.batch.identical": identical,
        "serving.batch.checked": float(checked),
        "serving.batch.mismatches": float(mismatches),
    }


def merge_bench(
    metrics: Dict[str, float],
    path: str,
    scale_name: Optional[str] = None,
) -> str:
    """Merge ``metrics`` into the bench trajectory at ``path``.

    Existing keys outside ``metrics`` are preserved (the loadtest only
    owns its ``serving.fleet.*`` family); a missing file gets a fresh
    skeleton so the loadtest can bootstrap a trajectory on its own.
    """
    if os.path.exists(path):
        payload = load_bench(path)
    else:
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "generated_by": "repro loadtest",
            "scale": scale_name or "tiny",
            "cpu_count": os.cpu_count() or 1,
            "metrics": {},
        }
    payload.setdefault("metrics", {}).update(
        {name: round(float(value), 4) for name, value in metrics.items()}
    )
    return write_bench(payload, path)
