"""Transport-agnostic HTTP applications for the serving plane.

The route logic for a worker (:class:`ServiceApp`) and for the fleet
router (:class:`repro.serving.router.RouterApp`) used to live inside
``BaseHTTPRequestHandler`` subclasses, welding it to the thread-per-
connection server.  Both now speak one tiny interface —

    ``app.handle(method, target, body_bytes) -> Response``

— that any server front-end can drive: the threaded stdlib server
(:mod:`repro.serving.http`) and the selector event loop
(:mod:`repro.serving.aio`) serve byte-identical responses because they
run the same application object.

The adapter owns the wire (short-read-hardened body collection, status
line, Content-Length framing); the app owns JSON parsing, routing,
error mapping (400 for bad input, 500 for surprises) and the
``http.handle`` trace span.  ``Response.shutdown`` asks the adapter to
run its shutdown action after the reply is flushed — never before.
"""

from __future__ import annotations

import json
from typing import Callable, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ConfigError, DataError
from ..obs import get_logger
from .service import PredictionService

__all__ = ["MAX_BODY_BYTES", "MAX_BATCH_ITEMS", "Response", "ServiceApp"]

_log = get_logger(__name__)

#: Largest request body any serving endpoint accepts.
MAX_BODY_BYTES = 1 << 20
#: Largest ``items`` list one ``/predict_batch`` call may carry.
MAX_BATCH_ITEMS = 8192
_DEFAULT_TRACE_DUMP = 256

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: Input errors mapped to 400s (anything else unexpected becomes a 500).
BAD_REQUEST_ERRORS = (DataError, ConfigError, ValueError, KeyError, TypeError)


class Response:
    """One rendered HTTP response, ready for any adapter to frame."""

    __slots__ = ("status", "data", "content_type", "shutdown")

    def __init__(
        self,
        status: int,
        data: bytes,
        content_type: str = _JSON,
        shutdown: bool = False,
    ) -> None:
        self.status = status
        self.data = data
        self.content_type = content_type
        #: When true, the adapter runs its shutdown action after the
        #: reply bytes are flushed to the socket.
        self.shutdown = shutdown


def json_response(status: int, payload: dict, shutdown: bool = False) -> Response:
    return Response(
        status, json.dumps(payload).encode("utf-8"), _JSON, shutdown=shutdown
    )


def text_response(status: int, text: str) -> Response:
    return Response(status, text.encode("utf-8"), _PROMETHEUS)


def parse_json_body(body: bytes) -> dict:
    """The hardened JSON-object parse both apps share.

    An empty body means the adapter saw ``Content-Length: 0`` (or none);
    truncation and oversize are adapter-level errors because only the
    adapter sees the wire.
    """
    if not body:
        raise DataError("request body required")
    try:
        parsed = json.loads(body)
    except json.JSONDecodeError as error:
        raise DataError(f"invalid JSON body: {error}") from error
    if not isinstance(parsed, dict):
        raise DataError("request body must be a JSON object")
    return parsed


def parse_batch_items(body: dict) -> list:
    """Validate a ``/predict_batch`` payload into (area, day, slot) triples."""
    items = body.get("items")
    if not isinstance(items, list):
        raise DataError('predict_batch body must be {"items": [...]}')
    if not items:
        raise DataError("items must not be empty")
    if len(items) > MAX_BATCH_ITEMS:
        raise DataError(
            f"batch of {len(items)} items exceeds the {MAX_BATCH_ITEMS} limit"
        )
    triples = []
    for item in items:
        if not isinstance(item, dict):
            raise DataError(
                "each batch item must be an object with area/day/timeslot"
            )
        triples.append(
            (int(item["area"]), int(item["day"]), int(item["timeslot"]))
        )
    return triples


class ServiceApp:
    """Routes for one :class:`PredictionService` (the worker surface).

    ``POST /predict``, ``/predict_batch``, ``/observe``, ``/reload``,
    ``/shutdown``; ``GET /healthz``, ``/stats``, ``/metrics``,
    ``/trace?limit=N`` — exactly the PR 7 API plus the batch endpoint.
    """

    def __init__(self, service: PredictionService) -> None:
        self.service = service

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle(self, method: str, target: str, body: bytes) -> Response:
        parsed = urlsplit(target)
        path = parsed.path
        with self.service.tracer.span("http.handle", path=path):
            try:
                if method == "GET":
                    return self._get(path, parsed.query)
                if method == "POST":
                    return self._post(path, body)
                return json_response(
                    405, {"error": f"method {method} not allowed"}
                )
            except BAD_REQUEST_ERRORS as error:
                return json_response(400, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 — last-resort 500
                _log.event("serving.http_error", path=path, error=repr(error))
                return json_response(500, {"error": repr(error)})

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _get(self, path: str, query: str) -> Response:
        service = self.service
        if path == "/healthz":
            return json_response(
                200, {"status": "ok", "version": service.version}
            )
        if path == "/stats":
            return json_response(200, service.stats())
        if path == "/metrics":
            return text_response(200, service.registry.to_prometheus())
        if path == "/trace":
            return json_response(*self._trace_dump(parse_qs(query)))
        return json_response(404, {"error": f"unknown path {path}"})

    def _post(self, path: str, body: bytes) -> Response:
        if path == "/predict":
            return json_response(*self._predict(parse_json_body(body)))
        if path == "/predict_batch":
            return json_response(*self._predict_batch(parse_json_body(body)))
        if path == "/observe":
            return json_response(*self._observe(parse_json_body(body)))
        if path == "/reload":
            payload = parse_json_body(body)
            version = self.service.load_checkpoint(str(payload["checkpoint"]))
            return json_response(200, {"version": version})
        if path == "/shutdown":
            return json_response(200, {"status": "shutting down"}, shutdown=True)
        return json_response(404, {"error": f"unknown path {path}"})

    @staticmethod
    def _result_payload(result) -> dict:
        """One result as a wire dict; interval keys only when the
        checkpoint carries a quantile head, so point-only responses are
        byte-for-byte what they were before quantile serving existed."""
        payload = {
            "gap": result.gap,
            "version": result.version,
            "cached": result.cached,
        }
        if result.intervals is not None:
            payload.update(result.intervals)
        return payload

    def _predict(self, body: dict) -> Tuple[int, dict]:
        result = self.service.predict(
            int(body["area"]), int(body["day"]), int(body["timeslot"])
        )
        return 200, self._result_payload(result)

    def _predict_batch(self, body: dict) -> Tuple[int, dict]:
        results = self.service.predict_batch(parse_batch_items(body))
        return 200, {
            "results": [self._result_payload(r) for r in results],
            "count": len(results),
        }

    def _observe(self, body: dict) -> Tuple[int, dict]:
        area = body.get("area")
        outcome = self.service.observe(
            str(body["kind"]),
            int(body["day"]),
            int(body["minute"]),
            area_id=int(area) if area is not None else None,
            **dict(body.get("values", {})),
        )
        return 200, outcome

    def _trace_dump(self, query: dict) -> Tuple[int, dict]:
        limit = int(query.get("limit", [_DEFAULT_TRACE_DUMP])[0])
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        tracer = self.service.tracer
        spans = tracer.spans(limit=limit)
        return 200, {
            "enabled": tracer.enabled,
            "capacity": tracer.capacity,
            "dropped": tracer.dropped,
            "spans": [span.as_dict() for span in spans],
        }


#: Type of the action an adapter runs after flushing a shutdown reply.
ShutdownAction = Optional[Callable[[], None]]
