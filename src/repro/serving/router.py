"""Front router for the prediction fleet: shard, coalesce, proxy, aggregate.

The router is the fleet's single public endpoint.  It speaks exactly the
same JSON API as a lone :mod:`repro.serving.http` service — clients
cannot tell a 4-shard fleet from one process — and owns four jobs:

- **Routing.**  ``POST /predict`` hashes the query's ``(area, timeslot)``
  (or ``area`` alone, with ``shard_by="area"``) onto one worker with
  :func:`shard_for` — a process-stable BLAKE2b hash, never the builtin
  randomized ``hash()`` — and proxies the request there.  The same query
  always lands on the same shard, so each cached gap lives on exactly
  one worker and the fleet-wide cache is a partition, not a mirror.
- **Coalescing.**  Concurrent in-flight ``/predict`` requests bound for
  the same shard ride ONE upstream ``POST /predict_batch`` call instead
  of N sequential round-trips (:class:`PredictCoalescer`).  The gather
  window is the eager-flush micro-batcher's natural one: whatever
  arrives while the previous upstream call is in flight goes out
  together, and a lone request is proxied immediately with zero added
  latency.  ``POST /predict_batch`` at the router splits its items
  across shards the same way and reassembles the results in order.
- **Fan-out.**  ``POST /observe`` must reach every worker (each replica
  owns a full copy of the city state), so it broadcasts through the
  supervisor's observation journal and returns the summed invalidation
  counts — the single-process exact-set invariant, preserved across
  processes.  ``POST /reload`` broadcasts a checkpoint hot-swap.
- **Retry-on-reconnect.**  A proxy attempt that dies on a transport
  error reports the failure to the supervisor (which respawns dead
  workers) and retries against the shard's next live address until
  ``retry_timeout`` — a SIGKILLed worker costs latency, never a failed
  request.  Predictions are pure, so replay is always safe, batched or
  not.

``GET /stats``, ``/healthz`` and ``/metrics`` aggregate per-worker state
through the router (see :func:`aggregate_prometheus` for the merge
semantics).  Like the worker front-end, the router runs on either the
threaded server or the selector event loop (``io_loop="selector"``).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigError
from ..obs import get_logger
from .app import (
    BAD_REQUEST_ERRORS,
    Response,
    json_response,
    parse_batch_items,
    parse_json_body,
    text_response,
)
from .batcher import MicroBatcher
from .http import IO_LOOPS, _JoiningHTTPServer, make_threaded_handler

__all__ = [
    "SHARD_STRATEGIES",
    "PredictCoalescer",
    "RouterApp",
    "aggregate_prometheus",
    "build_router",
    "close_pools",
    "request_json",
    "request_text",
    "shard_for",
]

_log = get_logger(__name__)

#: Supported ``shard_by`` strategies: ``area-slot`` spreads a single
#: area's timeslots across the fleet (finest balance), ``area`` pins an
#: area to one worker (best cache/invalidation locality for
#: area-scoped observations).
SHARD_STRATEGIES = ("area-slot", "area")

#: Transport-level failures that mean "this worker connection is gone" —
#: retriable against a respawned worker, unlike an HTTP-level error.
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def shard_for(
    area_id: int, timeslot: int, n_shards: int, by: str = "area-slot"
) -> int:
    """Deterministic worker index for one query.

    Uses an 8-byte BLAKE2b digest so the mapping is identical in every
    process and across runs (the builtin ``hash()`` is randomized per
    process for strings and must never leak into routing).
    """
    if n_shards <= 0:
        raise ConfigError(f"n_shards must be positive, got {n_shards}")
    if by == "area":
        key = b"%d" % int(area_id)
    elif by == "area-slot":
        key = b"%d:%d" % (int(area_id), int(timeslot))
    else:
        raise ConfigError(f"unknown shard_by {by!r}; known: {SHARD_STRATEGIES}")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


# ----------------------------------------------------------------------
# Worker-facing HTTP client (thread-local keep-alive connections)
# ----------------------------------------------------------------------

_local = threading.local()

#: Every thread-local pool ever created, so :func:`close_pools` can close
#: keep-alive connections owned by threads other than the caller's.  A
#: handler thread that exits leaves its (empty, tiny) dict here; the
#: sockets themselves are what must not leak, and they are reachable.
_all_pools: List[Dict[str, http.client.HTTPConnection]] = []
_all_pools_lock = threading.Lock()


def _connection(address: str, timeout: float) -> http.client.HTTPConnection:
    pool: Dict[str, http.client.HTTPConnection] = getattr(_local, "pool", None)
    if pool is None:
        pool = _local.pool = {}
        with _all_pools_lock:
            _all_pools.append(pool)
    connection = pool.get(address)
    if connection is None:
        host, _, port = address.rpartition(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=timeout)
        pool[address] = connection
    return connection


def drop_connection(address: str) -> None:
    """Discard this thread's cached connection to ``address`` (if any)."""
    pool = getattr(_local, "pool", None)
    if pool:
        connection = pool.pop(address, None)
        if connection is not None:
            connection.close()


def close_pools() -> int:
    """Close every cached worker connection held by ANY thread.

    The keep-alive pools are thread-local by design (an
    ``HTTPConnection`` is not thread-safe), which used to mean only each
    owning thread could close its own sockets — and router handler
    threads never did, so every router shutdown leaked one ESTABLISHED
    connection per (handler thread x worker) until process exit.  The
    router's shutdown action now calls this instead.  Returns the number
    of connections closed.  Racing an in-flight request on another
    thread is acceptable at the one call site (teardown: the workers are
    stopping anyway and a closed socket surfaces as a normal transport
    error).
    """
    with _all_pools_lock:
        pools = list(_all_pools)
    closed = 0
    for pool in pools:
        for address in list(pool):
            connection = pool.pop(address, None)
            if connection is not None:
                try:
                    connection.close()
                except Exception:  # noqa: BLE001 — best-effort teardown
                    pass
                closed += 1
    if closed:
        _log.event("fleet.router_pools_closed", connections=closed)
    return closed


def _roundtrip(
    address: str, method: str, path: str, body: Optional[dict], timeout: float
) -> Tuple[int, bytes, str]:
    """One request on this thread's keep-alive connection to ``address``.

    A stale keep-alive connection (worker restarted between requests)
    fails on the *first* byte, so one reconnect-and-replay is safe for
    every method we proxy; a failure on the fresh connection propagates
    to the caller's retry/failure handling.
    """
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data is not None else {}
    for attempt in (0, 1):
        connection = _connection(address, timeout)
        try:
            connection.request(method, path, body=data, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return response.status, payload, response.headers.get("Content-Type", "")
        except TRANSPORT_ERRORS:
            drop_connection(address)
            if attempt:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


def request_json(
    address: str,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 30.0,
) -> Tuple[int, dict]:
    """JSON round-trip to ``host:port``; raises ``TRANSPORT_ERRORS`` on
    connection-level failure, returns ``(status, payload)`` otherwise."""
    status, raw, _ = _roundtrip(address, method, path, body, timeout)
    try:
        payload = json.loads(raw) if raw else {}
    except ValueError:
        payload = {"error": raw.decode("utf-8", errors="replace")}
    return status, payload


def request_text(
    address: str, path: str, timeout: float = 30.0
) -> Tuple[int, str, str]:
    """Plain-text GET (the ``/metrics`` exposition); returns
    ``(status, text, content_type)``."""
    status, raw, content_type = _roundtrip(address, "GET", path, None, timeout)
    return status, raw.decode("utf-8", errors="replace"), content_type


# ----------------------------------------------------------------------
# Metrics aggregation
# ----------------------------------------------------------------------


def aggregate_prometheus(texts: List[str]) -> str:
    """Merge per-worker Prometheus expositions into one fleet view.

    Merge semantics per metric kind:

    - **counter** samples and summary ``_sum``/``_count`` samples sum
      across workers (fleet totals);
    - **gauge** samples sum (e.g. queue depths add up to fleet backlog);
    - **summary** ``quantile=...`` samples take the **max** across
      workers — quantile sketches cannot be merged from exposition text,
      and the worst per-worker percentile is the honest conservative
      bound for "how slow can a request be somewhere in the fleet".
    """
    kinds: Dict[str, str] = {}
    order: List[str] = []
    samples: Dict[str, List[str]] = {}
    values: Dict[Tuple[str, str], float] = {}

    def base_metric(sample_name: str) -> str:
        name = sample_name.split("{", 1)[0]
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                return name[: -len(suffix)]
        return name

    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 4 and parts[1] == "TYPE":
                    metric, kind = parts[2], parts[3]
                    if metric not in kinds:
                        kinds[metric] = kind
                        order.append(metric)
                        samples[metric] = []
                continue
            name, _, value_text = line.rpartition(" ")
            try:
                value = float(value_text)
            except ValueError:
                continue
            metric = base_metric(name)
            if metric not in kinds:  # sample with no TYPE line — skip
                continue
            key = (metric, name)
            if key not in values:
                samples[metric].append(name)
                values[key] = value
            elif kinds[metric] == "summary" and "quantile=" in name:
                values[key] = max(values[key], value)
            else:
                values[key] += value

    lines: List[str] = []
    for metric in order:
        lines.append(f"# TYPE {metric} {kinds[metric]}")
        for name in samples[metric]:
            value = values[(metric, name)]
            if name.endswith("_count"):
                lines.append(f"{name} {int(value)}")
            else:
                lines.append(f"{name} {repr(float(value))}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Predict coalescing
# ----------------------------------------------------------------------


class PredictCoalescer:
    """Coalesce concurrent per-shard predicts into upstream batch calls.

    One eager-flush :class:`MicroBatcher` per shard: requests that pile
    up while the previous upstream call is in flight are dispatched
    together as a single ``POST /predict_batch``; a lone request is
    proxied as a plain ``POST /predict`` with no extra hop or wait.  The
    worker's fixed-block batch-invariant forward guarantees the batched
    reply is bitwise-identical to per-item replies, so coalescing is
    invisible to clients.

    Failure semantics per item, not per batch:

    - transport errors retry the whole upstream batch against the
      shard's next live address (``fleet.report_failure`` +
      ``fleet.address_of``) until the deadline — a SIGKILLed worker
      never fails a coalesced request;
    - an HTTP-level batch rejection (one malformed item 400s the whole
      upstream batch) falls back to per-item ``/predict`` replays so a
      bad query cannot poison its batch-mates.

    Each future resolves to ``(status, payload)`` exactly as
    :func:`request_json` returns for a single proxied predict.
    """

    def __init__(self, fleet, max_batch: int = 256) -> None:
        self._fleet = fleet
        self._registry = fleet.registry
        self._batchers = [
            MicroBatcher(
                handler=(lambda bodies, shard=shard: self._handle(shard, bodies)),
                max_batch=max_batch,
                max_wait_ms=0.0,
                eager_flush=True,
                registry=fleet.registry,
            )
            for shard in range(len(fleet.workers))
        ]

    def submit(self, body: dict):
        """Future resolving to ``(status, payload)`` for one predict body."""
        shard = self._fleet.shard_for_query(
            int(body["area"]), int(body["timeslot"])
        )
        return self._batchers[shard].submit(body)

    def predict(self, body: dict) -> Tuple[int, dict]:
        return self.submit(body).result()

    def close(self) -> None:
        for batcher in self._batchers:
            batcher.close()

    # ------------------------------------------------------------------
    # Worker-thread side (one thread per shard)
    # ------------------------------------------------------------------

    def _handle(self, shard: int, bodies: List[dict]) -> List[Tuple[int, dict]]:
        deadline = time.monotonic() + self._fleet.retry_timeout
        if len(bodies) == 1:
            return [self._single(shard, bodies[0], deadline)]
        attempt = 0
        while True:
            address = self._fleet.address_of(shard, deadline)
            try:
                status, payload = request_json(
                    address, "POST", "/predict_batch",
                    {"items": bodies}, timeout=self._fleet.retry_timeout,
                )
            except TRANSPORT_ERRORS:
                attempt += 1
                self._registry.counter("repro.fleet.router.retries")
                self._fleet.report_failure(shard, address)
                if time.monotonic() >= deadline:
                    self._registry.counter(
                        "repro.fleet.router.unavailable", len(bodies)
                    )
                    error = {
                        "error": f"shard {shard} unavailable after "
                                 f"{attempt} attempts"
                    }
                    return [(503, error)] * len(bodies)
                time.sleep(min(0.05 * attempt, 0.5))
                continue
            results = payload.get("results") if status == 200 else None
            if not isinstance(results, list) or len(results) != len(bodies):
                # Batch-level rejection (a malformed item 400s the whole
                # upstream batch) — replay per item for error isolation.
                return [
                    self._single(shard, body, deadline) for body in bodies
                ]
            self._registry.counter(
                "repro.fleet.router.coalesced_items", len(bodies)
            )
            self._registry.counter("repro.fleet.router.coalesced_batches")
            return [(200, result) for result in results]

    def _single(
        self, shard: int, body: dict, deadline: float
    ) -> Tuple[int, dict]:
        attempt = 0
        while True:
            address = self._fleet.address_of(shard, deadline)
            try:
                return request_json(
                    address, "POST", "/predict", body,
                    timeout=self._fleet.retry_timeout,
                )
            except TRANSPORT_ERRORS as error:
                # The worker died mid-request (or between requests).
                # Predictions are pure, so replaying the query against
                # the respawned shard is always correct.
                attempt += 1
                self._registry.counter("repro.fleet.router.retries")
                self._fleet.report_failure(shard, address)
                if time.monotonic() >= deadline:
                    self._registry.counter("repro.fleet.router.unavailable")
                    return 503, {
                        "error": f"shard {shard} unavailable after "
                                 f"{attempt} attempts: {error!r}"
                    }
                time.sleep(min(0.05 * attempt, 0.5))


# ----------------------------------------------------------------------
# The router application + server
# ----------------------------------------------------------------------


class RouterApp:
    """The fleet-facing twin of :class:`repro.serving.app.ServiceApp`.

    Same ``handle(method, target, body) -> Response`` interface, same
    routes, so both server front-ends (threaded, selector) can drive it.
    """

    def __init__(self, fleet, coalescer: PredictCoalescer) -> None:
        self.fleet = fleet
        self.registry = fleet.registry
        self.coalescer = coalescer

    def handle(self, method: str, target: str, body: bytes) -> Response:
        path = target.split("?", 1)[0]
        try:
            if method == "GET":
                return self._get(path)
            if method == "POST":
                return self._post(path, body)
            return json_response(405, {"error": f"method {method} not allowed"})
        except BAD_REQUEST_ERRORS as error:
            return json_response(400, {"error": str(error)})
        except TimeoutError as error:
            self.registry.counter("repro.fleet.router.unavailable")
            return json_response(503, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 — last-resort 500
            _log.event("fleet.router_error", path=path, error=repr(error))
            return json_response(500, {"error": repr(error)})

    def _get(self, path: str) -> Response:
        if path == "/healthz":
            return json_response(*self.fleet.healthz())
        if path == "/stats":
            return json_response(200, self.fleet.stats())
        if path == "/metrics":
            return text_response(200, self.fleet.metrics_text())
        return json_response(404, {"error": f"unknown path {path}"})

    def _post(self, path: str, body: bytes) -> Response:
        self.registry.counter("repro.fleet.router.requests")
        with self.registry.timer("repro.fleet.router.request_seconds"):
            if path == "/predict":
                return json_response(
                    *self.coalescer.predict(parse_json_body(body))
                )
            if path == "/predict_batch":
                return self._predict_batch(parse_json_body(body))
            if path == "/observe":
                return json_response(
                    *self.fleet.broadcast_observe(parse_json_body(body))
                )
            if path == "/reload":
                parsed = parse_json_body(body)
                return json_response(
                    *self.fleet.broadcast_reload(str(parsed["checkpoint"]))
                )
            if path == "/shutdown":
                return json_response(
                    200, {"status": "shutting down"}, shutdown=True
                )
            return json_response(404, {"error": f"unknown path {path}"})

    def _predict_batch(self, parsed: dict) -> Response:
        """Scatter items across shards, gather replies in request order.

        Submitting every item through the coalescer scatters the batch
        into at most one upstream ``/predict_batch`` per shard (items
        for the same shard ride together) while the per-shard calls run
        concurrently on their batcher threads.  Futures are resolved in
        submission order, so the reassembled ``results`` list matches
        the request's item order exactly.  Mirroring the worker's
        all-or-nothing batch semantics, the first failed item fails the
        whole batch with its status.
        """
        triples = parse_batch_items(parsed)
        futures = [
            self.coalescer.submit(
                {"area": area, "day": day, "timeslot": timeslot}
            )
            for area, day, timeslot in triples
        ]
        results = []
        for future in futures:
            status, payload = future.result()
            if status != 200:
                return json_response(status, payload)
            results.append(payload)
        return json_response(
            200, {"results": results, "count": len(results)}
        )


def build_router(
    fleet,
    host: str = "127.0.0.1",
    port: int = 0,
    io_loop: str = "threaded",
    coalesce_batch: int = 256,
):
    """An HTTP front router bound to ``host:port`` proxying ``fleet``.

    ``fleet`` is a :class:`repro.serving.fleet.FleetSupervisor` (anything
    with its routing/broadcast surface works).  The caller owns the
    lifecycle exactly as with :func:`repro.serving.http.build_server`;
    ``POST /shutdown`` drains the coalescer, stops the workers, closes
    every keep-alive worker connection (:func:`close_pools`), then stops
    the router itself.
    """
    if io_loop not in IO_LOOPS:
        raise ConfigError(f"unknown io_loop {io_loop!r}; known: {IO_LOOPS}")
    coalescer = PredictCoalescer(fleet, max_batch=coalesce_batch)
    app = RouterApp(fleet, coalescer)
    if io_loop == "selector":
        from .aio import SelectorHTTPServer

        server = SelectorHTTPServer(app, host=host, port=port)
    else:
        handler = make_threaded_handler(app, _log, "fleet.router_http")
        server = _JoiningHTTPServer((host, port), handler)

    def stop_everything() -> None:
        # Drain in-flight coalesced predicts against live workers first,
        # then stop the fleet, then release every pooled connection —
        # the fix for the router's keep-alive socket leak.
        try:
            coalescer.close()
        finally:
            try:
                fleet.shutdown()
            finally:
                close_pools()
                server.shutdown()

    server.shutdown_action = stop_everything
    server.router_coalescer = coalescer
    return server
