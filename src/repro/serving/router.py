"""Front router for the prediction fleet: shard, proxy, aggregate.

The router is the fleet's single public endpoint.  It speaks exactly the
same JSON API as a lone :mod:`repro.serving.http` service — clients
cannot tell a 4-shard fleet from one process — and owns three jobs:

- **Routing.**  ``POST /predict`` hashes the query's ``(area, timeslot)``
  (or ``area`` alone, with ``shard_by="area"``) onto one worker with
  :func:`shard_for` — a process-stable BLAKE2b hash, never the builtin
  randomized ``hash()`` — and proxies the request there.  The same query
  always lands on the same shard, so each cached gap lives on exactly
  one worker and the fleet-wide cache is a partition, not a mirror.
- **Fan-out.**  ``POST /observe`` must reach every worker (each replica
  owns a full copy of the city state), so it broadcasts through the
  supervisor's observation journal and returns the summed invalidation
  counts — the single-process exact-set invariant, preserved across
  processes.  ``POST /reload`` broadcasts a checkpoint hot-swap.
- **Retry-on-reconnect.**  A proxy attempt that dies on a transport
  error reports the failure to the supervisor (which respawns dead
  workers) and retries against the shard's next live address until
  ``retry_timeout`` — a SIGKILLed worker costs latency, never a failed
  request.  Predictions are pure, so replay is always safe.

``GET /stats``, ``/healthz`` and ``/metrics`` aggregate per-worker state
through the router (see :func:`aggregate_prometheus` for the merge
semantics).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..exceptions import ConfigError, DataError
from ..obs import get_logger
from .http import _JoiningHTTPServer

from http.server import BaseHTTPRequestHandler

__all__ = [
    "SHARD_STRATEGIES",
    "aggregate_prometheus",
    "build_router",
    "request_json",
    "request_text",
    "shard_for",
]

_log = get_logger(__name__)

_MAX_BODY_BYTES = 1 << 20

#: Supported ``shard_by`` strategies: ``area-slot`` spreads a single
#: area's timeslots across the fleet (finest balance), ``area`` pins an
#: area to one worker (best cache/invalidation locality for
#: area-scoped observations).
SHARD_STRATEGIES = ("area-slot", "area")

#: Transport-level failures that mean "this worker connection is gone" —
#: retriable against a respawned worker, unlike an HTTP-level error.
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def shard_for(
    area_id: int, timeslot: int, n_shards: int, by: str = "area-slot"
) -> int:
    """Deterministic worker index for one query.

    Uses an 8-byte BLAKE2b digest so the mapping is identical in every
    process and across runs (the builtin ``hash()`` is randomized per
    process for strings and must never leak into routing).
    """
    if n_shards <= 0:
        raise ConfigError(f"n_shards must be positive, got {n_shards}")
    if by == "area":
        key = b"%d" % int(area_id)
    elif by == "area-slot":
        key = b"%d:%d" % (int(area_id), int(timeslot))
    else:
        raise ConfigError(f"unknown shard_by {by!r}; known: {SHARD_STRATEGIES}")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


# ----------------------------------------------------------------------
# Worker-facing HTTP client (thread-local keep-alive connections)
# ----------------------------------------------------------------------

_local = threading.local()


def _connection(address: str, timeout: float) -> http.client.HTTPConnection:
    pool: Dict[str, http.client.HTTPConnection] = getattr(_local, "pool", None)
    if pool is None:
        pool = _local.pool = {}
    connection = pool.get(address)
    if connection is None:
        host, _, port = address.rpartition(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=timeout)
        pool[address] = connection
    return connection


def drop_connection(address: str) -> None:
    """Discard this thread's cached connection to ``address`` (if any)."""
    pool = getattr(_local, "pool", None)
    if pool:
        connection = pool.pop(address, None)
        if connection is not None:
            connection.close()


def _roundtrip(
    address: str, method: str, path: str, body: Optional[dict], timeout: float
) -> Tuple[int, bytes, str]:
    """One request on this thread's keep-alive connection to ``address``.

    A stale keep-alive connection (worker restarted between requests)
    fails on the *first* byte, so one reconnect-and-replay is safe for
    every method we proxy; a failure on the fresh connection propagates
    to the caller's retry/failure handling.
    """
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data is not None else {}
    for attempt in (0, 1):
        connection = _connection(address, timeout)
        try:
            connection.request(method, path, body=data, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return response.status, payload, response.headers.get("Content-Type", "")
        except TRANSPORT_ERRORS:
            drop_connection(address)
            if attempt:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


def request_json(
    address: str,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 30.0,
) -> Tuple[int, dict]:
    """JSON round-trip to ``host:port``; raises ``TRANSPORT_ERRORS`` on
    connection-level failure, returns ``(status, payload)`` otherwise."""
    status, raw, _ = _roundtrip(address, method, path, body, timeout)
    try:
        payload = json.loads(raw) if raw else {}
    except ValueError:
        payload = {"error": raw.decode("utf-8", errors="replace")}
    return status, payload


def request_text(
    address: str, path: str, timeout: float = 30.0
) -> Tuple[int, str, str]:
    """Plain-text GET (the ``/metrics`` exposition); returns
    ``(status, text, content_type)``."""
    status, raw, content_type = _roundtrip(address, "GET", path, None, timeout)
    return status, raw.decode("utf-8", errors="replace"), content_type


# ----------------------------------------------------------------------
# Metrics aggregation
# ----------------------------------------------------------------------


def aggregate_prometheus(texts: List[str]) -> str:
    """Merge per-worker Prometheus expositions into one fleet view.

    Merge semantics per metric kind:

    - **counter** samples and summary ``_sum``/``_count`` samples sum
      across workers (fleet totals);
    - **gauge** samples sum (e.g. queue depths add up to fleet backlog);
    - **summary** ``quantile=...`` samples take the **max** across
      workers — quantile sketches cannot be merged from exposition text,
      and the worst per-worker percentile is the honest conservative
      bound for "how slow can a request be somewhere in the fleet".
    """
    kinds: Dict[str, str] = {}
    order: List[str] = []
    samples: Dict[str, List[str]] = {}
    values: Dict[Tuple[str, str], float] = {}

    def base_metric(sample_name: str) -> str:
        name = sample_name.split("{", 1)[0]
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                return name[: -len(suffix)]
        return name

    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 4 and parts[1] == "TYPE":
                    metric, kind = parts[2], parts[3]
                    if metric not in kinds:
                        kinds[metric] = kind
                        order.append(metric)
                        samples[metric] = []
                continue
            name, _, value_text = line.rpartition(" ")
            try:
                value = float(value_text)
            except ValueError:
                continue
            metric = base_metric(name)
            if metric not in kinds:  # sample with no TYPE line — skip
                continue
            key = (metric, name)
            if key not in values:
                samples[metric].append(name)
                values[key] = value
            elif kinds[metric] == "summary" and "quantile=" in name:
                values[key] = max(values[key], value)
            else:
                values[key] += value

    lines: List[str] = []
    for metric in order:
        lines.append(f"# TYPE {metric} {kinds[metric]}")
        for name in samples[metric]:
            value = values[(metric, name)]
            if name.endswith("_count"):
                lines.append(f"{name} {int(value)}")
            else:
                lines.append(f"{name} {repr(float(value))}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The router server
# ----------------------------------------------------------------------


def build_router(
    fleet, host: str = "127.0.0.1", port: int = 0
) -> _JoiningHTTPServer:
    """An HTTP front router bound to ``host:port`` proxying ``fleet``.

    ``fleet`` is a :class:`repro.serving.fleet.FleetSupervisor` (anything
    with its routing/broadcast surface works).  The caller owns the
    lifecycle exactly as with :func:`repro.serving.http.build_server`;
    ``POST /shutdown`` stops the workers first, then the router.
    """
    registry = fleet.registry

    class RouterHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------------------
        # Routes
        # ------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            parsed = urlsplit(self.path)
            try:
                if parsed.path == "/healthz":
                    status, payload = fleet.healthz()
                elif parsed.path == "/stats":
                    status, payload = 200, fleet.stats()
                elif parsed.path == "/metrics":
                    self._reply_text(200, fleet.metrics_text())
                    return
                else:
                    status, payload = 404, {"error": f"unknown path {self.path}"}
            except Exception as error:  # noqa: BLE001 — last-resort 500
                _log.event("fleet.router_error", path=self.path, error=repr(error))
                status, payload = 500, {"error": repr(error)}
            self._reply(status, payload)

        def do_POST(self) -> None:  # noqa: N802
            shutting_down = False
            registry.counter("repro.fleet.router.requests")
            with registry.timer("repro.fleet.router.request_seconds"):
                try:
                    if self.path == "/predict":
                        status, payload = self._predict()
                    elif self.path == "/observe":
                        status, payload = fleet.broadcast_observe(self._read_json())
                    elif self.path == "/reload":
                        body = self._read_json()
                        status, payload = fleet.broadcast_reload(
                            str(body["checkpoint"])
                        )
                    elif self.path == "/shutdown":
                        status, payload = 200, {"status": "shutting down"}
                        shutting_down = True
                    else:
                        status, payload = 404, {"error": f"unknown path {self.path}"}
                except (DataError, ConfigError, ValueError, KeyError, TypeError) as error:
                    status, payload = 400, {"error": str(error)}
                except TimeoutError as error:
                    registry.counter("repro.fleet.router.unavailable")
                    status, payload = 503, {"error": str(error)}
                except Exception as error:  # noqa: BLE001
                    _log.event(
                        "fleet.router_error", path=self.path, error=repr(error)
                    )
                    status, payload = 500, {"error": repr(error)}
                self._reply(status, payload)
            if shutting_down:
                # Reply first; stopping the fleet and the router blocks
                # until serve_forever returns, so it runs off-thread (the
                # same shape as the single-service /shutdown).
                threading.Thread(target=self._stop_everything, daemon=True).start()

        def _stop_everything(self) -> None:
            try:
                fleet.shutdown()
            finally:
                self.server.shutdown()

        def _predict(self) -> Tuple[int, dict]:
            body = self._read_json()
            shard = fleet.shard_for_query(
                int(body["area"]), int(body["timeslot"])
            )
            deadline = time.monotonic() + fleet.retry_timeout
            attempt = 0
            while True:
                address = fleet.address_of(shard, deadline)
                try:
                    return request_json(
                        address, "POST", "/predict", body,
                        timeout=fleet.retry_timeout,
                    )
                except TRANSPORT_ERRORS as error:
                    # The worker died mid-request (or between requests).
                    # Predictions are pure, so replaying the query against
                    # the respawned shard is always correct.
                    attempt += 1
                    registry.counter("repro.fleet.router.retries")
                    fleet.report_failure(shard, address)
                    if time.monotonic() >= deadline:
                        registry.counter("repro.fleet.router.unavailable")
                        return 503, {
                            "error": f"shard {shard} unavailable after "
                                     f"{attempt} attempts: {error!r}"
                        }
                    time.sleep(min(0.05 * attempt, 0.5))

        # ------------------------------------------------------------------
        # Plumbing (same wire behavior as the worker handler)
        # ------------------------------------------------------------------

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                raise DataError("request body required")
            if length > _MAX_BODY_BYTES:
                raise DataError(f"request body larger than {_MAX_BODY_BYTES} bytes")
            chunks = []
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(remaining)
                if not chunk:
                    raise DataError(
                        f"truncated request body: got {length - remaining} "
                        f"of {length} bytes"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
            try:
                parsed = json.loads(b"".join(chunks))
            except json.JSONDecodeError as error:
                raise DataError(f"invalid JSON body: {error}") from error
            if not isinstance(parsed, dict):
                raise DataError("request body must be a JSON object")
            return parsed

        def _reply(self, status: int, payload: dict) -> None:
            self._send(status, json.dumps(payload).encode("utf-8"),
                       "application/json")

        def _reply_text(self, status: int, text: str) -> None:
            self._send(status, text.encode("utf-8"),
                       "text/plain; version=0.0.4; charset=utf-8")

        def _send(self, status: int, data: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            import logging

            _log.event(
                "fleet.router_http", level=logging.DEBUG, detail=format % args
            )

    return _JoiningHTTPServer((host, port), RouterHandler)
