"""Threaded stdlib HTTP front-end for :class:`PredictionService`.

A threading HTTP server (one thread per connection — exactly the
concurrency shape the micro-batcher coalesces) framing the routes of
:class:`repro.serving.app.ServiceApp`:

- ``POST /predict``  ``{"area": int, "day": int, "timeslot": int}`` →
  ``{"gap": float, "version": str, "cached": bool}``;
- ``POST /predict_batch``  ``{"items": [{area, day, timeslot}, ...]}`` →
  ``{"results": [...], "count": int}`` — bitwise-identical to issuing
  the items as sequential ``/predict`` calls;
- ``POST /observe``  ``{"kind": "weather"|"traffic"|"orders", "day": int,
  "minute": int, "area": int?, "values": {...}}`` →
  ``{"invalidated": int, "profiles_dropped": int}``;
- ``GET /healthz``   liveness + current checkpoint version;
- ``GET /stats``     :meth:`PredictionService.stats`;
- ``GET /metrics``   Prometheus text exposition of the service registry
  (serving latency percentiles included — see ``docs/observability.md``);
- ``GET /trace?limit=N`` the newest ``N`` completed spans from the
  service tracer as JSON (empty unless tracing is enabled);
- ``POST /reload``   ``{"checkpoint": path}`` → hot-swap the engine to
  that checkpoint bundle and return the new ``{"version": str}``;
- ``POST /shutdown`` clean stop (used by the smoke test and the fleet
  supervisor).

Invalid inputs are 400s with an ``{"error": ...}`` body; unexpected
failures are 500s.  No dependencies beyond the standard library.  The
same application also runs behind the selector event loop
(:mod:`repro.serving.aio`, ``repro serve --io-loop selector``) with
byte-identical responses.

Handler threads are daemons (a hung connection can never pin the
process), but they are *tracked* and joined — with a short timeout —
when the server closes, so an in-flight reply (the ``/shutdown``
acknowledgement in particular) is flushed before the process exits
rather than racing it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ConfigError, DataError
from ..obs import get_logger
from .aio import SelectorHTTPServer
from .app import MAX_BODY_BYTES, Response, ServiceApp
from .service import PredictionService

__all__ = ["build_server", "make_threaded_handler", "serve_forever"]

_log = get_logger(__name__)

IO_LOOPS = ("threaded", "selector")


class _JoiningHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that joins its handler threads on close.

    The stock ``ThreadingHTTPServer`` sets ``daemon_threads = True`` and
    therefore never joins handlers: ``serve_forever`` can return (after a
    ``shutdown()``) while a handler thread is still writing its response,
    and a process that exits right after loses the reply — the
    ``/shutdown`` race.  This subclass keeps the daemon property but
    tracks live handler threads and joins each for up to
    ``handler_join_timeout`` seconds total in :meth:`server_close`.
    """

    daemon_threads = True
    #: Total time budget for draining handler threads at close.
    handler_join_timeout = 5.0

    def __init__(self, *args, **kwargs) -> None:
        self._handler_threads: set = set()
        self._handler_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def process_request(self, request, client_address) -> None:
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            daemon=True,
        )
        with self._handler_lock:
            self._handler_threads = {
                t for t in self._handler_threads if t.is_alive()
            }
            self._handler_threads.add(thread)
        thread.start()

    def server_close(self) -> None:
        super().server_close()
        with self._handler_lock:
            threads, self._handler_threads = self._handler_threads, set()
        deadline = time.monotonic() + self.handler_join_timeout
        for thread in threads:
            if thread is threading.current_thread():
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)


def make_threaded_handler(app, logger, log_event: str):
    """A ``BaseHTTPRequestHandler`` subclass framing ``app``'s responses.

    The adapter owns the wire only: it collects the request body with the
    short-read-hardened loop (a truncated ``Content-Length`` is a loud
    400, never a silently parsed prefix), hands ``(method, target,
    body)`` to the app, writes the framed reply, and — for responses
    flagged ``shutdown`` — runs the server's ``shutdown_action`` on a
    separate thread *after* the reply is on its way (``server_close``
    joins this handler thread, so the acknowledgement is flushed before
    the process exits).
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            try:
                body = self._read_body()
            except (DataError, ConfigError) as error:
                self._send(Response(
                    400, json.dumps({"error": str(error)}).encode("utf-8")
                ))
                return
            response = app.handle(method, self.path, body)
            self._send(response)
            if response.shutdown:
                # Reply BEFORE triggering shutdown: the action blocks
                # until serve_forever returns, so it must run off this
                # handler thread.  server_close then joins this thread,
                # so the reply is flushed before the process exits.
                action = getattr(self.server, "shutdown_action", None)
                threading.Thread(
                    target=action if action is not None else self.server.shutdown,
                    daemon=True,
                ).start()

        # --------------------------------------------------------------
        # Plumbing
        # --------------------------------------------------------------

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                return b""
            if length > MAX_BODY_BYTES:
                raise DataError(
                    f"request body larger than {MAX_BODY_BYTES} bytes"
                )
            # A single read() may return fewer bytes than Content-Length
            # (slow client, small socket buffers); loop until the full
            # body arrives or the connection ends short.
            chunks = []
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(remaining)
                if not chunk:
                    raise DataError(
                        f"truncated request body: got {length - remaining} "
                        f"of {length} bytes"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
            return b"".join(chunks)

        def _send(self, response: Response) -> None:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.data)))
            self.end_headers()
            self.wfile.write(response.data)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            # Route access logs into the structured logger at debug level
            # instead of raw stderr lines.
            import logging

            logger.event(log_event, level=logging.DEBUG, detail=format % args)

    return Handler


def build_server(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 0,
    io_loop: str = "threaded",
):
    """An HTTP server bound to ``host:port`` (0 picks a free port).

    ``io_loop`` selects the connection model: ``"threaded"`` (default)
    is the thread-per-connection stdlib server; ``"selector"`` is the
    single event loop multiplexing persistent keep-alive connections
    (:class:`repro.serving.aio.SelectorHTTPServer`).  Both run the same
    :class:`~repro.serving.app.ServiceApp`, so responses are
    byte-identical.

    The caller owns the lifecycle: ``server.serve_forever()`` to run,
    ``server.shutdown()``/``server.server_close()`` to stop.  The bound
    address is ``server.server_address``.  Closing drains outstanding
    replies so none is lost.
    """
    if io_loop not in IO_LOOPS:
        raise ConfigError(f"unknown io_loop {io_loop!r}; known: {IO_LOOPS}")
    app = ServiceApp(service)
    if io_loop == "selector":
        return SelectorHTTPServer(app, host=host, port=port)
    handler = make_threaded_handler(app, _log, "serving.http")
    server = _JoiningHTTPServer((host, port), handler)
    server.shutdown_action = server.shutdown
    return server


def serve_forever(server, service: PredictionService) -> None:
    """Run until ``shutdown()``, then close the socket and the service.

    Closing joins outstanding handler work (short timeout), so the
    ``/shutdown`` acknowledgement is on the wire by the time this
    function — and typically the process — exits.
    """
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()
