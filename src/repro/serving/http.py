"""Stdlib HTTP front-end for :class:`PredictionService`.

A ``ThreadingHTTPServer`` (one thread per connection — exactly the
concurrency shape the micro-batcher coalesces) with a small JSON API:

- ``POST /predict``  ``{"area": int, "day": int, "timeslot": int}`` →
  ``{"gap": float, "version": str, "cached": bool}``;
- ``POST /observe``  ``{"kind": "weather"|"traffic"|"orders", "day": int,
  "minute": int, "area": int?, "values": {...}}`` →
  ``{"invalidated": int, "profiles_dropped": int}``;
- ``GET /healthz``   liveness + current checkpoint version;
- ``GET /stats``     :meth:`PredictionService.stats`;
- ``POST /shutdown`` clean stop (used by the smoke test).

Invalid inputs are 400s with an ``{"error": ...}`` body; unexpected
failures are 500s.  No dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from ..exceptions import ConfigError, DataError
from ..obs import get_logger
from .service import PredictionService

__all__ = ["build_server", "serve_forever"]

_log = get_logger(__name__)

_MAX_BODY_BYTES = 1 << 20


def build_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 picks a free port).

    The caller owns the lifecycle: ``server.serve_forever()`` to run,
    ``server.shutdown()``/``server.server_close()`` to stop.  The bound
    address is ``server.server_address``.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------------------
        # Routes
        # ------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            if self.path == "/healthz":
                self._reply(200, {"status": "ok", "version": service.version})
            elif self.path == "/stats":
                self._reply(200, service.stats())
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802
            try:
                if self.path == "/predict":
                    status, payload = self._predict()
                elif self.path == "/observe":
                    status, payload = self._observe()
                elif self.path == "/shutdown":
                    # Reply BEFORE triggering shutdown: handler threads are
                    # daemon, so once serve_forever returns the process may
                    # exit without waiting for this thread to finish writing.
                    # shutdown() itself blocks until serve_forever returns,
                    # so it must also run off this handler thread.
                    self._reply(200, {"status": "shutting down"})
                    threading.Thread(target=self.server.shutdown, daemon=True).start()
                    return
                else:
                    status, payload = 404, {"error": f"unknown path {self.path}"}
            except (DataError, ConfigError, ValueError, KeyError, TypeError) as error:
                status, payload = 400, {"error": str(error)}
            except Exception as error:  # noqa: BLE001 — last-resort 500
                _log.event("serving.http_error", path=self.path, error=repr(error))
                status, payload = 500, {"error": repr(error)}
            self._reply(status, payload)

        def _predict(self) -> Tuple[int, dict]:
            body = self._read_json()
            result = service.predict(
                int(body["area"]), int(body["day"]), int(body["timeslot"])
            )
            return 200, {
                "gap": result.gap,
                "version": result.version,
                "cached": result.cached,
            }

        def _observe(self) -> Tuple[int, dict]:
            body = self._read_json()
            area = body.get("area")
            outcome = service.observe(
                str(body["kind"]),
                int(body["day"]),
                int(body["minute"]),
                area_id=int(area) if area is not None else None,
                **dict(body.get("values", {})),
            )
            return 200, outcome

        # ------------------------------------------------------------------
        # Plumbing
        # ------------------------------------------------------------------

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                raise DataError("request body required")
            if length > _MAX_BODY_BYTES:
                raise DataError(f"request body larger than {_MAX_BODY_BYTES} bytes")
            try:
                parsed = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as error:
                raise DataError(f"invalid JSON body: {error}") from error
            if not isinstance(parsed, dict):
                raise DataError("request body must be a JSON object")
            return parsed

        def _reply(self, status: int, payload: dict) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            # Route access logs into the structured logger at debug level
            # instead of raw stderr lines.
            import logging

            _log.event(
                "serving.http", level=logging.DEBUG, detail=format % args
            )

    return ThreadingHTTPServer((host, port), Handler)


def serve_forever(server: ThreadingHTTPServer, service: PredictionService) -> None:
    """Run until ``shutdown()``, then close the socket and the service."""
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()
