"""Stdlib HTTP front-end for :class:`PredictionService`.

A threading HTTP server (one thread per connection — exactly the
concurrency shape the micro-batcher coalesces) with a small JSON API:

- ``POST /predict``  ``{"area": int, "day": int, "timeslot": int}`` →
  ``{"gap": float, "version": str, "cached": bool}``;
- ``POST /observe``  ``{"kind": "weather"|"traffic"|"orders", "day": int,
  "minute": int, "area": int?, "values": {...}}`` →
  ``{"invalidated": int, "profiles_dropped": int}``;
- ``GET /healthz``   liveness + current checkpoint version;
- ``GET /stats``     :meth:`PredictionService.stats`;
- ``GET /metrics``   Prometheus text exposition of the service registry
  (serving latency percentiles included — see ``docs/observability.md``);
- ``GET /trace?limit=N`` the newest ``N`` completed spans from the
  service tracer as JSON (empty unless tracing is enabled);
- ``POST /reload``   ``{"checkpoint": path}`` → hot-swap the engine to
  that checkpoint bundle and return the new ``{"version": str}``;
- ``POST /shutdown`` clean stop (used by the smoke test and the fleet
  supervisor).

Invalid inputs are 400s with an ``{"error": ...}`` body; unexpected
failures are 500s.  No dependencies beyond the standard library.

Handler threads are daemons (a hung connection can never pin the
process), but they are *tracked* and joined — with a short timeout —
when the server closes, so an in-flight reply (the ``/shutdown``
acknowledgement in particular) is flushed before the process exits
rather than racing it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ConfigError, DataError
from ..obs import get_logger
from .service import PredictionService

__all__ = ["build_server", "serve_forever"]

_log = get_logger(__name__)

_MAX_BODY_BYTES = 1 << 20
_DEFAULT_TRACE_DUMP = 256


class _JoiningHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that joins its handler threads on close.

    The stock ``ThreadingHTTPServer`` sets ``daemon_threads = True`` and
    therefore never joins handlers: ``serve_forever`` can return (after a
    ``shutdown()``) while a handler thread is still writing its response,
    and a process that exits right after loses the reply — the
    ``/shutdown`` race.  This subclass keeps the daemon property but
    tracks live handler threads and joins each for up to
    ``handler_join_timeout`` seconds total in :meth:`server_close`.
    """

    daemon_threads = True
    #: Total time budget for draining handler threads at close.
    handler_join_timeout = 5.0

    def __init__(self, *args, **kwargs) -> None:
        self._handler_threads: set = set()
        self._handler_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def process_request(self, request, client_address) -> None:
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            daemon=True,
        )
        with self._handler_lock:
            self._handler_threads = {
                t for t in self._handler_threads if t.is_alive()
            }
            self._handler_threads.add(thread)
        thread.start()

    def server_close(self) -> None:
        super().server_close()
        with self._handler_lock:
            threads, self._handler_threads = self._handler_threads, set()
        deadline = time.monotonic() + self.handler_join_timeout
        for thread in threads:
            if thread is threading.current_thread():
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)


def build_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 picks a free port).

    The caller owns the lifecycle: ``server.serve_forever()`` to run,
    ``server.shutdown()``/``server.server_close()`` to stop.  The bound
    address is ``server.server_address``.  ``server_close`` drains
    outstanding handler threads (bounded by
    ``_JoiningHTTPServer.handler_join_timeout``) so no reply is lost.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------------------
        # Routes
        # ------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            parsed = urlsplit(self.path)
            if parsed.path == "/healthz":
                self._reply(200, {"status": "ok", "version": service.version})
            elif parsed.path == "/stats":
                self._reply(200, service.stats())
            elif parsed.path == "/metrics":
                self._reply_text(200, service.registry.to_prometheus())
            elif parsed.path == "/trace":
                try:
                    status, payload = self._trace_dump(parse_qs(parsed.query))
                except (ValueError, TypeError) as error:
                    status, payload = 400, {"error": str(error)}
                self._reply(status, payload)
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802
            # The reply is sent inside the http.handle span for every
            # route, so traced request latency uniformly covers
            # serialization + socket write (it used to exclude them on
            # error paths and /shutdown only).
            shutting_down = False
            with service.tracer.span("http.handle", path=self.path):
                try:
                    if self.path == "/predict":
                        status, payload = self._predict()
                    elif self.path == "/observe":
                        status, payload = self._observe()
                    elif self.path == "/reload":
                        status, payload = self._reload()
                    elif self.path == "/shutdown":
                        status, payload = 200, {"status": "shutting down"}
                        shutting_down = True
                    else:
                        status, payload = 404, {"error": f"unknown path {self.path}"}
                except (DataError, ConfigError, ValueError, KeyError, TypeError) as error:
                    status, payload = 400, {"error": str(error)}
                except Exception as error:  # noqa: BLE001 — last-resort 500
                    _log.event("serving.http_error", path=self.path, error=repr(error))
                    status, payload = 500, {"error": repr(error)}
                self._reply(status, payload)
            if shutting_down:
                # Reply BEFORE triggering shutdown: shutdown() blocks
                # until serve_forever returns, so it must run off this
                # handler thread.  server_close then joins this thread,
                # so the reply is flushed before the process exits.
                threading.Thread(target=self.server.shutdown, daemon=True).start()

        def _predict(self) -> Tuple[int, dict]:
            body = self._read_json()
            result = service.predict(
                int(body["area"]), int(body["day"]), int(body["timeslot"])
            )
            return 200, {
                "gap": result.gap,
                "version": result.version,
                "cached": result.cached,
            }

        def _observe(self) -> Tuple[int, dict]:
            body = self._read_json()
            area = body.get("area")
            outcome = service.observe(
                str(body["kind"]),
                int(body["day"]),
                int(body["minute"]),
                area_id=int(area) if area is not None else None,
                **dict(body.get("values", {})),
            )
            return 200, outcome

        def _reload(self) -> Tuple[int, dict]:
            body = self._read_json()
            version = service.load_checkpoint(str(body["checkpoint"]))
            return 200, {"version": version}

        def _trace_dump(self, query: dict) -> Tuple[int, dict]:
            limit = int(query.get("limit", [_DEFAULT_TRACE_DUMP])[0])
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
            tracer = service.tracer
            spans = tracer.spans(limit=limit)
            return 200, {
                "enabled": tracer.enabled,
                "capacity": tracer.capacity,
                "dropped": tracer.dropped,
                "spans": [span.as_dict() for span in spans],
            }

        # ------------------------------------------------------------------
        # Plumbing
        # ------------------------------------------------------------------

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                raise DataError("request body required")
            if length > _MAX_BODY_BYTES:
                raise DataError(f"request body larger than {_MAX_BODY_BYTES} bytes")
            # A single read() may return fewer bytes than Content-Length
            # (slow client, small socket buffers); loop until the full
            # body arrives or the connection ends short.
            chunks = []
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(remaining)
                if not chunk:
                    raise DataError(
                        f"truncated request body: got {length - remaining} "
                        f"of {length} bytes"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
            try:
                parsed = json.loads(b"".join(chunks))
            except json.JSONDecodeError as error:
                raise DataError(f"invalid JSON body: {error}") from error
            if not isinstance(parsed, dict):
                raise DataError("request body must be a JSON object")
            return parsed

        def _reply(self, status: int, payload: dict) -> None:
            self._send(status, json.dumps(payload).encode("utf-8"),
                       "application/json")

        def _reply_text(self, status: int, text: str) -> None:
            self._send(status, text.encode("utf-8"),
                       "text/plain; version=0.0.4; charset=utf-8")

        def _send(self, status: int, data: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            # Route access logs into the structured logger at debug level
            # instead of raw stderr lines.
            import logging

            _log.event(
                "serving.http", level=logging.DEBUG, detail=format % args
            )

    return _JoiningHTTPServer((host, port), Handler)


def serve_forever(server: ThreadingHTTPServer, service: PredictionService) -> None:
    """Run until ``shutdown()``, then close the socket and the service.

    ``server_close`` joins outstanding handler threads (short timeout)
    before returning, so the ``/shutdown`` acknowledgement is on the wire
    by the time this function — and typically the process — exits.
    """
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()
