"""Command-line interface: ``python -m repro <command>``.

Commands cover the full pipeline a downstream user needs:

- ``simulate``   — generate a synthetic city and save it;
- ``featurize``  — build train/test ExampleSets from a saved city;
- ``train``      — train a DeepSD variant and save its weights, with
  fault-tolerant checkpoint/resume
  (``--checkpoint-dir/--checkpoint-every/--resume``);
- ``evaluate``   — score saved model weights on a saved ExampleSet;
- ``experiment`` — run one of the paper's table/figure experiments,
  optionally fanning its model training across processes (``--workers``);
- ``bench``      — measure hot-path throughput and write the canonical
  ``BENCH_perf.json`` perf-trajectory file (see ``docs/performance.md``);
- ``serve``      — run the online gap-prediction HTTP service from a
  checkpoint bundle; ``--workers N`` scales it out to a supervised
  sharded fleet behind a front router (see ``docs/serving.md``);
- ``loadtest``   — drive concurrent mixed predict/observe load at a
  serving endpoint (or a self-hosted fleet) and record
  ``serving.fleet.*`` latency/throughput into ``BENCH_perf.json``;
- ``info``       — describe a saved city or ExampleSet;
- ``report``     — summarize one or more run manifests;
- ``trace``      — summarize an exported Chrome-trace file (per-span-name
  count / total / p50 / p95 / p99 / %-of-parent table).

Every command accepts the observability group
(``--log-level/--log-format/--log-file``, ``--quiet/--verbose``,
``--no-metrics``, ``--trace/--trace-file``, ``--manifest``) and writes a
``RunManifest`` JSON next to its primary artifact — see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .config import get_scale
from .eval import evaluate as evaluate_metrics
from .eval import format_table
from .obs import (
    LEVELS,
    RunManifest,
    configure_logging,
    configure_metrics,
    configure_tracing,
    get_logger,
    get_registry,
    get_tracer,
    load_chrome_trace,
    summarize_spans,
)

_log = get_logger(__name__)


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability options, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="structured log threshold (default: info)",
    )
    group.add_argument(
        "--log-format", default="kv", choices=["kv", "json"],
        help="kv (key=value lines) or json (JSON-lines)",
    )
    group.add_argument(
        "--log-file", default=None,
        help="write logs to this file instead of stderr",
    )
    group.add_argument(
        "--quiet", action="store_true",
        help="only warnings and errors (shorthand for --log-level warning)",
    )
    group.add_argument(
        "--verbose", action="store_true",
        help="debug-level events (shorthand for --log-level debug)",
    )
    group.add_argument(
        "--no-metrics", action="store_true",
        help="disable the in-process metrics registry",
    )
    group.add_argument(
        "--trace", action="store_true",
        help="record spans for this run (off by default; near-zero cost "
             "when off)",
    )
    group.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="export recorded spans to PATH as Chrome trace_event JSON "
             "(implies --trace; open in chrome://tracing or Perfetto)",
    )
    group.add_argument(
        "--manifest", default=None,
        help="run-manifest path (default: <primary output>.manifest.json)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepSD (ICDE 2017) reproduction pipeline",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    obs = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", parents=[obs], help="generate a synthetic city"
    )
    simulate.add_argument("--scale", default="bench", help="paper | bench | tiny")
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--out", required=True, help="output .npz path")

    featurize = sub.add_parser(
        "featurize", parents=[obs], help="build train/test ExampleSets"
    )
    featurize.add_argument("--scale", default="bench")
    featurize.add_argument("--city", required=True, help="city .npz from `simulate`")
    featurize.add_argument("--train-out", required=True)
    featurize.add_argument("--test-out", required=True)

    train = sub.add_parser("train", parents=[obs], help="train a DeepSD model")
    train.add_argument("--model", default="advanced", choices=["basic", "advanced"])
    train.add_argument("--scale", default="bench")
    train.add_argument("--train", dest="train_set", required=True)
    train.add_argument("--test", dest="test_set", default=None)
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--dropout", type=float, default=0.1)
    train.add_argument("--seed", type=int, default=1)
    train.add_argument("--save", default=None, help="save trained weights (.npz)")
    train.add_argument(
        "--quantiles", action="store_true",
        help="fit a P10/P50/P90 residual quantile head after training and "
             "attach it to the final checkpoint (needs --checkpoint-dir); "
             "serving then returns risk intervals alongside the point gap",
    )
    train.add_argument(
        "--no-tape", action="store_true",
        help="disable the execution tape (taped training is bitwise-"
             "identical to module dispatch; this forces the slower path)",
    )
    ckpt = train.add_argument_group("checkpointing")
    ckpt.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write resumable training checkpoints into DIR",
    )
    ckpt.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint every N epochs (default 1; needs --checkpoint-dir)",
    )
    ckpt.add_argument(
        "--resume", nargs="?", const="auto", default=None, metavar="PATH",
        help="resume from a checkpoint dir/file (bare --resume uses "
             "--checkpoint-dir)",
    )
    ckpt.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="stop after N epochs, leaving a checkpoint behind "
             "(fault-injection testing)",
    )

    evaluate = sub.add_parser(
        "evaluate", parents=[obs], help="score saved weights on an ExampleSet"
    )
    evaluate.add_argument("--model", default="advanced", choices=["basic", "advanced"])
    evaluate.add_argument("--scale", default="bench")
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--test", dest="test_set", required=True)
    evaluate.add_argument("--train", dest="train_set", required=True,
                          help="training set (for the input scales)")
    evaluate.add_argument("--dropout", type=float, default=0.1)

    experiment = sub.add_parser(
        "experiment", parents=[obs], help="run a paper experiment"
    )
    experiment.add_argument(
        "name",
        choices=[
            "table1", "table2", "table3", "table4", "table5",
            "fig1", "fig10", "fig11", "fig12", "fig13", "fig15", "fig16",
        ],
    )
    experiment.add_argument("--scale", default="bench")
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan the experiment's model/baseline training across N worker "
             "processes (results are bitwise-identical to --workers 1; "
             "see docs/performance.md)",
    )

    scenarios = sub.add_parser(
        "scenarios", parents=[obs],
        help="robustness matrix: every model × every scenario pack",
    )
    scenarios.add_argument("--scale", default="tiny", help="paper | bench | tiny")
    scenarios.add_argument("--seed", type=int, default=None)
    scenarios.add_argument(
        "--models", default="basic,advanced,average", metavar="SPEC",
        help="comma-separated NN variants and/or baselines, or 'all' "
             "(default: basic,advanced,average)",
    )
    scenarios.add_argument(
        "--packs", default="all", metavar="SPEC",
        help="comma-separated scenario names and/or inline pack stacks "
             "(name[:key=value...][+name...]); 'all' runs every default "
             "scenario; steady is always included (default: all)",
    )
    scenarios.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="train the models across N worker processes (the report is "
             "bitwise-identical for any N)",
    )
    scenarios.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the robustness report JSON to PATH",
    )

    bench = sub.add_parser(
        "bench", parents=[obs],
        help="measure hot-path throughput and write BENCH_perf.json",
    )
    bench.add_argument("--scale", default="tiny", help="paper | bench | tiny")
    bench.add_argument(
        "--out", default=None, metavar="PATH",
        help=f"output JSON path (default {('BENCH_perf.json')!s})",
    )
    bench.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker count for the serial-vs-parallel experiment section",
    )
    bench.add_argument(
        "--epochs", type=int, default=2, metavar="N",
        help="training epochs timed in the train-epoch section",
    )
    bench.add_argument(
        "--experiment", default="table2",
        help="multi-model experiment used for the wall-clock comparison",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_perf.json to gate against; exits 1 if any "
             "throughput regressed more than 2x (skipped when PATH is "
             "missing)",
    )

    serve = sub.add_parser(
        "serve", parents=[obs],
        help="run the online gap-prediction HTTP service",
    )
    serve.add_argument("--city", required=True, help="city .npz from `simulate`")
    serve.add_argument(
        "--checkpoint", required=True,
        help="checkpoint dir or ckpt-*.json from `train --checkpoint-dir`",
    )
    serve.add_argument("--scale", default="bench", help="paper | bench | tiny")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, metavar="B",
        help="largest micro-batch folded into one forward pass",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, metavar="MS",
        help="how long a request waits for batch-mates",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096, metavar="N",
        help="LRU prediction-cache capacity",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="prediction-cache time-to-live (default: no expiry)",
    )
    serve.add_argument(
        "--max-profiles", type=int, default=None, metavar="N",
        help="bound the warm per-(area, day) featurization cache",
    )
    serve.add_argument(
        "--no-tape", action="store_true",
        help="serve through module dispatch instead of the execution "
             "tape (responses are bitwise-identical either way)",
    )
    serve.add_argument(
        "--no-eager-flush", action="store_true",
        help="restore the lingering micro-batcher: wait up to "
             "--max-wait-ms for batch-mates instead of dispatching "
             "whatever is queued",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes; >1 runs a sharded fleet behind a router",
    )
    serve.add_argument(
        "--shard-by", default="area-slot", choices=["area-slot", "area"],
        help="fleet query partitioning (default: hash of area and timeslot)",
    )
    serve.add_argument(
        "--watch-checkpoint", type=float, default=0.0, metavar="SECONDS",
        help="poll the checkpoint dir at this cadence and hot-swap new "
             "bundles (0 disables)",
    )
    serve.add_argument(
        "--fleet-run-dir", default=None, metavar="DIR",
        help="fleet worker logs/manifests directory (default: temp dir)",
    )
    serve.add_argument(
        "--io-loop", default="threaded", choices=["threaded", "selector"],
        help="HTTP connection model: thread-per-connection (default) or "
             "one selector event loop multiplexing keep-alive sockets",
    )

    loadtest = sub.add_parser(
        "loadtest", parents=[obs],
        help="drive concurrent mixed predict/observe load at a serving "
             "endpoint and record serving.fleet.* bench metrics",
    )
    loadtest.add_argument(
        "--url", default=None,
        help="serving endpoint (http://host:port); omit to self-host a "
             "fleet from --city/--checkpoint for the duration of the run",
    )
    loadtest.add_argument("--city", default=None, help="city .npz (self-host)")
    loadtest.add_argument(
        "--checkpoint", default=None, help="checkpoint bundle (self-host)"
    )
    loadtest.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="self-hosted fleet size (default 2)",
    )
    loadtest.add_argument(
        "--shard-by", default="area-slot", choices=["area-slot", "area"],
    )
    loadtest.add_argument("--scale", default="tiny", help="paper | bench | tiny")
    loadtest.add_argument(
        "--requests", type=int, default=2000, metavar="N",
        help="total requests to issue",
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="concurrent client threads",
    )
    loadtest.add_argument(
        "--observe-fraction", type=float, default=0.2, metavar="F",
        help="fraction of requests that are observations (default 0.2)",
    )
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="merge results into this bench trajectory "
             "(default: BENCH_perf.json; use --no-bench to skip)",
    )
    loadtest.add_argument(
        "--no-bench", action="store_true",
        help="print results only; do not touch the bench trajectory",
    )
    loadtest.add_argument(
        "--bench-prefix", default="serving.fleet", metavar="PREFIX",
        help="metric-name prefix for the recorded keys",
    )
    loadtest.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help="also run a batched leg folding predictions into "
             "/predict_batch requests of up to N items, recorded under "
             "PREFIX.batch.*, plus a bitwise batch-vs-single cross-check "
             "recorded as serving.batch.identical",
    )
    loadtest.add_argument(
        "--pipeline", type=int, default=1, metavar="K",
        help="keep K requests in flight per connection (raw pipelined "
             "keep-alive clients instead of request/response lockstep)",
    )
    loadtest.add_argument(
        "--io-loop", default="threaded", choices=["threaded", "selector"],
        help="connection model for the self-hosted fleet's router and "
             "workers (ignored with --url)",
    )

    info = sub.add_parser("info", parents=[obs], help="describe a saved artifact")
    info.add_argument("path")
    info.add_argument("--kind", choices=["city", "examples"], default="city")

    report = sub.add_parser(
        "report", parents=[obs], help="summarize one or more run manifests"
    )
    report.add_argument("manifests", nargs="+", help="*.manifest.json paths")

    trace = sub.add_parser(
        "trace", parents=[obs],
        help="summarize an exported Chrome-trace file",
    )
    trace.add_argument("path", help="trace JSON written via --trace-file")
    trace.add_argument(
        "--sort", default="total_ms",
        choices=["total_ms", "count", "p50_ms", "p95_ms", "p99_ms", "name"],
        help="summary table ordering (default: total time, descending)",
    )

    return parser


def _configure_observability(args) -> None:
    """Apply the obs option group once per invocation."""
    if args.log_level:
        level = args.log_level
    elif args.verbose:
        level = "debug"
    elif args.quiet:
        level = "warning"
    else:
        level = "info"
    configure_logging(level=level, fmt=args.log_format, file=args.log_file)
    if args.no_metrics:
        configure_metrics(enabled=False)
    if args.trace or args.trace_file:
        configure_tracing(enabled=True)


def _write_manifest(manifest: RunManifest, args, artifact: Optional[str]) -> None:
    """Persist the manifest next to ``artifact`` (or at ``--manifest``)."""
    if args.manifest:
        path = manifest.write(args.manifest)
    elif artifact:
        path = manifest.write(artifact=artifact)
    else:
        return
    _log.event("manifest.written", level=logging.DEBUG,
               path=path, command=manifest.command)


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------


def cmd_simulate(args) -> int:
    from .city import simulate_city
    from .config import with_seed

    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = with_seed(scale, args.seed)
    manifest = RunManifest.begin(
        "simulate",
        config={"scale": scale.name, "out": args.out},
        seed=scale.simulation.seed,
    )
    with manifest.stage("simulate"):
        dataset = simulate_city(scale.simulation)
    with manifest.stage("save"):
        dataset.save(args.out)
    summary = dataset.summary()
    manifest.record(
        **{k: v for k, v in summary.items() if isinstance(v, (int, float))}
    )
    manifest.artifacts["city"] = args.out
    _write_manifest(manifest, args, args.out)
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


def cmd_featurize(args) -> int:
    from .city import CityDataset
    from .features import FeatureBuilder

    scale = get_scale(args.scale)
    manifest = RunManifest.begin(
        "featurize",
        config={"scale": scale.name, "city": args.city},
        seed=scale.simulation.seed,
    )
    with manifest.stage("load_city"):
        dataset = CityDataset.load(args.city)
    with manifest.stage("build"):
        train_set, test_set = FeatureBuilder(dataset, scale.features).build()
    with manifest.stage("save"):
        train_set.save(args.train_out)
        test_set.save(args.test_out)
    manifest.record(train_items=train_set.n_items, test_items=test_set.n_items)
    manifest.artifacts.update(train=args.train_out, test=args.test_out)
    _write_manifest(manifest, args, args.train_out)
    print(f"wrote {args.train_out} ({train_set.n_items} items)")
    print(f"wrote {args.test_out} ({test_set.n_items} items)")
    return 0


def _build_model(name: str, scale, n_areas: int, dropout: float, seed: int):
    from .core import AdvancedDeepSD, BasicDeepSD

    cls = AdvancedDeepSD if name == "advanced" else BasicDeepSD
    return cls(
        n_areas,
        scale.features.window_minutes,
        scale.embeddings,
        dropout=dropout,
        seed=seed,
    )


def cmd_train(args) -> int:
    from .core import Trainer, TrainingConfig
    from .exceptions import ConfigError
    from .features import ExampleSet
    from .nn import save_weights

    scale = get_scale(args.scale)
    epochs = args.epochs or (50 if scale.name != "tiny" else 6)
    resume_from = args.resume
    if resume_from == "auto":
        if not args.checkpoint_dir:
            raise ConfigError("--resume without a path requires --checkpoint-dir")
        resume_from = args.checkpoint_dir
    manifest = RunManifest.begin(
        "train",
        config={
            "scale": scale.name,
            "model": args.model,
            "epochs": epochs,
            "dropout": args.dropout,
            "train": args.train_set,
            "test": args.test_set,
            "checkpoint_dir": args.checkpoint_dir,
            "checkpoint_every": args.checkpoint_every,
            "resume": resume_from,
        },
        seed=args.seed,
    )
    with manifest.stage("load"):
        train_set = ExampleSet.load(args.train_set)
        test_set = ExampleSet.load(args.test_set) if args.test_set else None

    model = _build_model(args.model, scale, train_set.n_areas, args.dropout, args.seed)
    trainer = Trainer(
        model,
        TrainingConfig(epochs=epochs, best_k=min(10, epochs), seed=args.seed),
        use_tape=False if args.no_tape else None,
    )
    with manifest.stage("fit"):
        history = trainer.fit(
            train_set,
            eval_set=test_set,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_from=resume_from,
            stop_after_epoch=args.stop_after,
        )
    manifest.record(epochs=history.n_epochs, final_train_loss=history.train_loss[-1])
    if trainer.resumed_from:
        manifest.mark_resumed(trainer.resumed_from, trainer.resumed_epoch)
        print(f"resumed from {trainer.resumed_from} (epoch {trainer.resumed_epoch})")
    if args.checkpoint_dir:
        manifest.artifacts["checkpoint_dir"] = args.checkpoint_dir
    if trainer.last_checkpoint:
        manifest.artifacts["checkpoint"] = trainer.last_checkpoint
    print(f"trained {args.model} for {history.n_epochs} of {epochs} epochs")
    if history.n_epochs < epochs:
        print(
            f"  stopped early after epoch {history.n_epochs}; resume with "
            f"`repro train --checkpoint-dir {args.checkpoint_dir} --resume ...`"
        )
    if history.eval_rmse:
        manifest.record(best_epoch_rmse=min(history.eval_rmse))
        print(f"  best epoch RMSE: {min(history.eval_rmse):.3f}")
    if test_set is not None:
        with manifest.stage("evaluate"):
            report = evaluate_metrics(
                trainer.predict(test_set), test_set.gaps.astype(np.float64)
            )
        manifest.record(mae=report.mae, rmse=report.rmse)
        print(f"  ensembled test MAE {report.mae:.3f}  RMSE {report.rmse:.3f}")
    if args.quantiles:
        from .core import attach_quantile_head, fit_quantile_head

        with manifest.stage("quantiles"):
            head = fit_quantile_head(trainer, train_set)
            if trainer.last_checkpoint:
                attach_quantile_head(trainer.last_checkpoint, head)
                print(f"attached quantile head to {trainer.last_checkpoint}")
            else:
                print(
                    "warning: --quantiles without --checkpoint-dir fits the "
                    "head but has no checkpoint to attach it to"
                )
        manifest.record(quantile_levels=len(head.levels))
    if args.save:
        with manifest.stage("save"):
            save_weights(model, args.save)
        manifest.artifacts["weights"] = args.save
        print(f"wrote {args.save}")
    _write_manifest(manifest, args, args.save)
    return 0


def cmd_evaluate(args) -> int:
    from .core import InputScales, Trainer
    from .features import ExampleSet
    from .nn import load_weights

    scale = get_scale(args.scale)
    manifest = RunManifest.begin(
        "evaluate",
        config={
            "scale": scale.name,
            "model": args.model,
            "weights": args.weights,
            "test": args.test_set,
        },
        seed=scale.simulation.seed,
    )
    with manifest.stage("load"):
        train_set = ExampleSet.load(args.train_set)
        test_set = ExampleSet.load(args.test_set)
        model = _build_model(args.model, scale, test_set.n_areas, args.dropout, seed=0)
        load_weights(model, args.weights)
        model.input_scales = InputScales.from_example_set(train_set)
    with manifest.stage("predict"):
        predictions = Trainer(model).predict(test_set)
    report = evaluate_metrics(predictions, test_set.gaps.astype(np.float64))
    manifest.record(mae=report.mae, rmse=report.rmse, items=report.n_items)
    # The weights' own manifest is `<weights>.manifest.json` (written by
    # `train --save`); evaluation runs get a distinct default suffix.
    _write_manifest(manifest, args, f"{args.weights}.eval")
    print(
        format_table(
            ["Model", "MAE", "RMSE", "items"],
            [[args.model, report.mae, report.rmse, report.n_items]],
            title=f"Evaluation of {args.weights}",
        )
    )
    return 0


def cmd_experiment(args) -> int:
    from . import experiments
    from .experiments import get_context, runner

    context = get_context(args.scale, args.seed)
    manifest = RunManifest.begin(
        "experiment",
        config={
            "name": args.name,
            "scale": context.scale.name,
            "workers": args.workers,
        },
        seed=context.scale.simulation.seed,
    )
    if args.workers > 1:
        # Fan the heavy per-model work across worker processes first; the
        # serial runner below then finds everything in the shared cache.
        with manifest.stage("parallel_prepare"):
            report = runner.run_tasks(
                context, runner.tasks_for(args.name), workers=args.workers
            )
        manifest.record(**report.to_metrics())
        for task in report.results:
            manifest.add_stage(f"task:{task.task_id}", task.seconds)
    module = getattr(experiments, args.name)
    with manifest.stage(args.name):
        result = module.run(context)
    if args.manifest:
        _write_manifest(manifest, args, None)
    print(_render_experiment(args.name, result))
    return 0


def cmd_scenarios(args) -> int:
    from .scenarios import render_report, run_matrix, save_report

    manifest = RunManifest.begin(
        "scenarios",
        config={
            "scale": args.scale,
            "models": args.models,
            "packs": args.packs,
            "workers": args.workers,
            "out": args.out,
        },
        seed=args.seed,
    )
    with manifest.stage("matrix"):
        report, runner_report = run_matrix(
            scale_name=args.scale,
            seed=args.seed,
            models=args.models,
            packs=args.packs,
            workers=args.workers,
        )
    manifest.record(
        scenarios=len(report["scenarios"]),
        models=len(report["models"]),
        results=len(report["results"]),
        **runner_report.to_metrics(),
    )
    if args.out:
        with manifest.stage("save"):
            save_report(report, args.out)
        manifest.artifacts["report"] = args.out
        print(f"wrote {args.out}")
    _write_manifest(manifest, args, args.out)
    print(render_report(report))
    return 0


def cmd_bench(args) -> int:
    from .bench import (
        DEFAULT_BENCH_PATH,
        find_regressions,
        load_bench,
        run_bench,
        write_bench,
    )

    out = args.out or DEFAULT_BENCH_PATH
    manifest = RunManifest.begin(
        "bench",
        config={
            "scale": args.scale,
            "workers": args.workers,
            "epochs": args.epochs,
            "experiment": args.experiment,
            "out": out,
        },
    )
    with manifest.stage("bench"):
        payload = run_bench(
            args.scale,
            workers=args.workers,
            epochs=args.epochs,
            experiment=args.experiment,
        )
    path = write_bench(payload, out)
    manifest.record(**payload["metrics"])
    manifest.artifacts["bench"] = path
    _write_manifest(manifest, args, path)
    print(f"wrote {path}")
    for name in sorted(payload["metrics"]):
        print(f"  {name}: {payload['metrics'][name]:.3f}")

    if args.baseline:
        if not os.path.exists(args.baseline):
            print(f"baseline {args.baseline} missing; regression check skipped")
            return 0
        regressions = find_regressions(payload, load_bench(args.baseline))
        if regressions:
            for finding in regressions:
                print(f"PERF REGRESSION: {finding}", file=sys.stderr)
            return 1
        print(f"no >2x throughput regressions vs {args.baseline}")
    return 0


def cmd_serve(args) -> int:
    from .city import CityDataset
    from .serving import (
        CheckpointWatcher,
        PredictionService,
        ServingConfig,
        build_server,
        serve_forever,
    )

    if args.workers > 1:
        return _serve_fleet(args)

    scale = get_scale(args.scale)
    manifest = RunManifest.begin(
        "serve",
        config={
            "scale": scale.name,
            "city": args.city,
            "checkpoint": args.checkpoint,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "cache_size": args.cache_size,
            "cache_ttl": args.cache_ttl,
        },
    )
    with manifest.stage("load_city"):
        dataset = CityDataset.load(args.city)
    with manifest.stage("load_checkpoint"):
        service = PredictionService.from_checkpoint(
            args.checkpoint,
            dataset,
            scale.features,
            serving_config=ServingConfig(
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                eager_flush=not args.no_eager_flush,
                cache_size=args.cache_size,
                cache_ttl_seconds=args.cache_ttl,
                max_profiles=args.max_profiles,
                use_tape=False if args.no_tape else None,
            ),
        )
    watcher = None
    if args.watch_checkpoint > 0:
        watch_dir = (
            args.checkpoint if os.path.isdir(args.checkpoint)
            else os.path.dirname(args.checkpoint) or "."
        )
        watcher = CheckpointWatcher(
            service, watch_dir, interval_seconds=args.watch_checkpoint
        ).start()
    server = build_server(
        service, host=args.host, port=args.port, io_loop=args.io_loop
    )
    host, port = server.server_address[:2]
    manifest.record(port=port)
    manifest.artifacts["checkpoint"] = args.checkpoint
    print(f"serving {service.version} on http://{host}:{port}", flush=True)
    _log.event("serving.started", host=host, port=port, version=service.version)
    with manifest.stage("serve"):
        try:
            serve_forever(server, service)
        except KeyboardInterrupt:
            server.server_close()
            service.close()
        finally:
            if watcher is not None:
                watcher.stop()
    stats = service.stats()
    registry = get_registry()
    requests = registry.counters.get("repro.serving.requests", 0)
    manifest.record(
        requests=requests,
        cache_hits=stats["cache"]["hits"],
        cache_misses=stats["cache"]["misses"],
    )
    _write_manifest(manifest, args, f"{args.checkpoint.rstrip('/')}.serve")
    print(
        f"served {int(requests)} requests "
        f"({stats['cache']['hits']} cache hits); shut down cleanly"
    )
    return 0


def _serve_fleet(args) -> int:
    """``repro serve --workers N``: supervised sharded fleet + router."""
    from .serving import FleetConfig, FleetSupervisor, build_router

    scale = get_scale(args.scale)
    config = FleetConfig(
        city=args.city,
        checkpoint=args.checkpoint,
        scale=scale.name,
        workers=args.workers,
        shard_by=args.shard_by,
        host=args.host,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        use_tape=not args.no_tape,
        eager_flush=not args.no_eager_flush,
        io_loop=args.io_loop,
        watch_interval=args.watch_checkpoint,
        run_dir=args.fleet_run_dir,
    )
    manifest = RunManifest.begin(
        "serve",
        config={
            "scale": scale.name,
            "city": args.city,
            "checkpoint": args.checkpoint,
            "workers": args.workers,
            "shard_by": args.shard_by,
        },
    )
    fleet = FleetSupervisor(config)
    with manifest.stage("start_fleet"):
        fleet.start()
    server = build_router(
        fleet, host=args.host, port=args.port, io_loop=args.io_loop
    )
    host, port = server.server_address[:2]
    manifest.record(port=port, run_dir=fleet.run_dir)
    manifest.artifacts["checkpoint"] = args.checkpoint
    # Keep the port after the last colon: tooling (smoke.sh) parses it
    # from this banner exactly as in the single-process case.
    print(
        f"serving {fleet.label} on http://{host}:{port}", flush=True
    )
    _log.event(
        "fleet.router_started", host=host, port=port, workers=args.workers
    )
    with manifest.stage("serve"):
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            fleet.shutdown()
    registry = get_registry()
    requests = registry.counters.get("repro.fleet.router.requests", 0)
    manifest.record(requests=requests, respawns=fleet.respawns)
    _write_manifest(manifest, args, f"{args.checkpoint.rstrip('/')}.fleet")
    print(
        f"served {int(requests)} routed requests across {args.workers} "
        f"workers ({fleet.respawns} respawns); shut down cleanly"
    )
    return 0


def cmd_loadtest(args) -> int:
    from .bench import DEFAULT_BENCH_PATH
    from .serving import (
        FleetConfig,
        FleetSupervisor,
        build_router,
        merge_bench,
        run_loadtest,
        verify_batch_identical,
    )

    scale = get_scale(args.scale)
    manifest = RunManifest.begin(
        "loadtest",
        config={
            "scale": scale.name,
            "url": args.url,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "observe_fraction": args.observe_fraction,
            "seed": args.seed,
            "batch": args.batch,
            "pipeline": args.pipeline,
            "io_loop": args.io_loop,
        },
    )
    fleet = None
    server = None
    server_thread = None
    if args.url:
        url = args.url
    else:
        if not (args.city and args.checkpoint):
            print(
                "loadtest needs --url, or --city and --checkpoint to "
                "self-host a fleet",
                file=sys.stderr,
            )
            return 2
        with manifest.stage("start_fleet"):
            fleet = FleetSupervisor(
                FleetConfig(
                    city=args.city,
                    checkpoint=args.checkpoint,
                    scale=scale.name,
                    workers=args.workers,
                    shard_by=args.shard_by,
                    io_loop=args.io_loop,
                )
            ).start()
            server = build_router(fleet, io_loop=args.io_loop)
            host, port = server.server_address[:2]
            import threading as _threading

            server_thread = _threading.Thread(
                target=server.serve_forever, daemon=True
            )
            server_thread.start()
            url = f"http://{host}:{port}"
            print(f"self-hosted fleet of {args.workers} workers at {url}")
    metrics = {}
    batch_result = None
    try:
        # Single-item leg first: the PREFIX.* keys (and the p99 the
        # regression gate watches) always describe unbatched transport.
        with manifest.stage("loadtest"):
            result = run_loadtest(
                url,
                scale,
                n_requests=args.requests,
                concurrency=args.concurrency,
                observe_fraction=args.observe_fraction,
                seed=args.seed,
                pipeline=args.pipeline,
            )
        metrics.update(result.metrics(args.bench_prefix))
        if args.batch > 1:
            with manifest.stage("loadtest_batch"):
                batch_result = run_loadtest(
                    url,
                    scale,
                    n_requests=args.requests,
                    concurrency=args.concurrency,
                    observe_fraction=args.observe_fraction,
                    seed=args.seed + 1,
                    batch=args.batch,
                    pipeline=args.pipeline,
                )
            metrics.update(batch_result.metrics(f"{args.bench_prefix}.batch"))
            with manifest.stage("verify_batch"):
                metrics.update(
                    verify_batch_identical(url, scale, seed=args.seed + 2)
                )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=10.0)
        if fleet is not None:
            fleet.shutdown()
    for name in sorted(metrics):
        print(f"{name}: {metrics[name]:.4f}")
    # Full keys (dots to underscores): the batch leg repeats every
    # per-leg suffix, so bare suffixes would collide in the manifest.
    manifest.record(**{k.replace(".", "_"): v for k, v in metrics.items()})
    if not args.no_bench:
        bench_path = args.bench_out or DEFAULT_BENCH_PATH
        merge_bench(metrics, bench_path, scale_name=scale.name)
        print(f"merged {len(metrics)} keys into {bench_path}")
        manifest.artifacts["bench"] = bench_path
    _write_manifest(manifest, args, "loadtest")
    errors = result.errors + (batch_result.errors if batch_result else 0)
    if errors:
        print(f"loadtest FAILED: {errors} errored requests", file=sys.stderr)
        return 1
    if args.batch > 1 and metrics.get("serving.batch.identical") != 1.0:
        print(
            "loadtest FAILED: /predict_batch results not identical to "
            "per-item /predict",
            file=sys.stderr,
        )
        return 1
    return 0


def _render_experiment(name: str, result) -> str:
    """Minimal textual rendering per experiment family."""
    if name.startswith("table") and isinstance(result, list):
        fields = [f for f in vars(result[0])]
        rows = [[getattr(row, f) for f in fields] for row in result]
        return format_table(fields, rows, title=name)
    if isinstance(result, dict):
        lines = [name]
        for key, value in result.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)
    return f"{name}:\n{result}"


def cmd_info(args) -> int:
    if args.kind == "city":
        from .city import CityDataset

        dataset = CityDataset.load(args.path)
        for key, value in dataset.summary().items():
            print(f"{key}: {value}")
    else:
        from .features import ExampleSet

        example_set = ExampleSet.load(args.path)
        print(f"items: {example_set.n_items}")
        print(f"window: {example_set.window}")
        print(f"areas: {example_set.n_areas}")
        print(f"gap mean: {example_set.gaps.mean():.3f}")
        print(f"gap zero fraction: {(example_set.gaps == 0).mean():.3f}")
    return 0


def cmd_report(args) -> int:
    """Render stage timings and final metrics from saved manifests."""
    manifests = [RunManifest.load(path) for path in args.manifests]
    for manifest in manifests:
        print(
            f"{manifest.command}: version={manifest.version} "
            f"seed={manifest.seed} created={manifest.created_at}"
        )
        if manifest.resume:
            print(
                f"  resumed from {manifest.resume.get('from')} "
                f"at epoch {manifest.resume.get('epoch')}"
            )
    print()

    timing_rows = []
    for manifest in manifests:
        for stage in manifest.stages:
            timing_rows.append([manifest.command, stage["name"], stage["seconds"]])
        timing_rows.append([manifest.command, "total", manifest.total_seconds])
    print(
        format_table(
            ["run", "stage", "seconds"],
            timing_rows,
            title="Stage timings",
            float_format="{:.3f}",
        )
    )

    metric_rows = [
        [manifest.command, name, value]
        for manifest in manifests
        for name, value in sorted(manifest.metrics.items())
    ]
    if metric_rows:
        print()
        print(
            format_table(
                ["run", "metric", "value"],
                metric_rows,
                title="Final metrics",
                float_format="{:.4f}",
            )
        )
    return 0


def cmd_trace(args) -> int:
    """Aggregate an exported trace into a per-span-name latency table."""
    spans = load_chrome_trace(args.path)
    if not spans:
        print(f"{args.path}: no spans recorded")
        return 0
    rows = summarize_spans(spans)
    reverse = args.sort != "name"
    rows.sort(key=lambda row: (row[args.sort] is None, row[args.sort]),
              reverse=reverse)
    table = [
        [
            row["name"],
            row["count"],
            row["total_ms"],
            row["p50_ms"],
            row["p95_ms"],
            row["p99_ms"],
            "-" if row["pct_of_parent"] is None
            else f"{row['pct_of_parent']:.1f}",
        ]
        for row in rows
    ]
    print(
        format_table(
            ["span", "count", "total_ms", "p50_ms", "p95_ms", "p99_ms",
             "% of parent"],
            table,
            title=f"Trace summary: {args.path} ({len(spans)} spans)",
            float_format="{:.3f}",
        )
    )
    return 0


_COMMANDS = {
    "simulate": cmd_simulate,
    "featurize": cmd_featurize,
    "train": cmd_train,
    "evaluate": cmd_evaluate,
    "experiment": cmd_experiment,
    "scenarios": cmd_scenarios,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "info": cmd_info,
    "report": cmd_report,
    "trace": cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_observability(args)
    try:
        return _COMMANDS[args.command](args)
    finally:
        if getattr(args, "trace_file", None):
            tracer = get_tracer()
            tracer.export(args.trace_file)
            _log.event(
                "trace.exported", path=args.trace_file,
                spans=len(tracer), dropped=tracer.dropped,
            )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
