"""Command-line interface: ``python -m repro <command>``.

Commands cover the full pipeline a downstream user needs:

- ``simulate``   — generate a synthetic city and save it;
- ``featurize``  — build train/test ExampleSets from a saved city;
- ``train``      — train a DeepSD variant and save its weights;
- ``evaluate``   — score saved model weights on a saved ExampleSet;
- ``experiment`` — run one of the paper's table/figure experiments;
- ``info``       — describe a saved city or ExampleSet.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .config import get_scale
from .eval import evaluate as evaluate_metrics
from .eval import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepSD (ICDE 2017) reproduction pipeline",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a synthetic city")
    simulate.add_argument("--scale", default="bench", help="paper | bench | tiny")
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--out", required=True, help="output .npz path")

    featurize = sub.add_parser("featurize", help="build train/test ExampleSets")
    featurize.add_argument("--scale", default="bench")
    featurize.add_argument("--city", required=True, help="city .npz from `simulate`")
    featurize.add_argument("--train-out", required=True)
    featurize.add_argument("--test-out", required=True)

    train = sub.add_parser("train", help="train a DeepSD model")
    train.add_argument("--model", default="advanced", choices=["basic", "advanced"])
    train.add_argument("--scale", default="bench")
    train.add_argument("--train", dest="train_set", required=True)
    train.add_argument("--test", dest="test_set", default=None)
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--dropout", type=float, default=0.1)
    train.add_argument("--seed", type=int, default=1)
    train.add_argument("--save", default=None, help="save trained weights (.npz)")

    evaluate = sub.add_parser("evaluate", help="score saved weights on an ExampleSet")
    evaluate.add_argument("--model", default="advanced", choices=["basic", "advanced"])
    evaluate.add_argument("--scale", default="bench")
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--test", dest="test_set", required=True)
    evaluate.add_argument("--train", dest="train_set", required=True,
                          help="training set (for the input scales)")
    evaluate.add_argument("--dropout", type=float, default=0.1)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=[
            "table1", "table2", "table3", "table4", "table5",
            "fig1", "fig10", "fig11", "fig12", "fig13", "fig15", "fig16",
        ],
    )
    experiment.add_argument("--scale", default="bench")
    experiment.add_argument("--seed", type=int, default=None)

    info = sub.add_parser("info", help="describe a saved artifact")
    info.add_argument("path")
    info.add_argument("--kind", choices=["city", "examples"], default="city")

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------


def cmd_simulate(args) -> int:
    from .city import simulate_city
    from .config import with_seed

    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = with_seed(scale, args.seed)
    dataset = simulate_city(scale.simulation)
    dataset.save(args.out)
    summary = dataset.summary()
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


def cmd_featurize(args) -> int:
    from .city import CityDataset
    from .features import FeatureBuilder

    scale = get_scale(args.scale)
    dataset = CityDataset.load(args.city)
    train_set, test_set = FeatureBuilder(dataset, scale.features).build()
    train_set.save(args.train_out)
    test_set.save(args.test_out)
    print(f"wrote {args.train_out} ({train_set.n_items} items)")
    print(f"wrote {args.test_out} ({test_set.n_items} items)")
    return 0


def _build_model(name: str, scale, n_areas: int, dropout: float, seed: int):
    from .core import AdvancedDeepSD, BasicDeepSD

    cls = AdvancedDeepSD if name == "advanced" else BasicDeepSD
    return cls(
        n_areas,
        scale.features.window_minutes,
        scale.embeddings,
        dropout=dropout,
        seed=seed,
    )


def cmd_train(args) -> int:
    from .core import Trainer, TrainingConfig
    from .features import ExampleSet
    from .nn import save_weights

    scale = get_scale(args.scale)
    train_set = ExampleSet.load(args.train_set)
    test_set = ExampleSet.load(args.test_set) if args.test_set else None
    epochs = args.epochs or (50 if scale.name != "tiny" else 6)

    model = _build_model(args.model, scale, train_set.n_areas, args.dropout, args.seed)
    trainer = Trainer(
        model, TrainingConfig(epochs=epochs, best_k=min(10, epochs), seed=args.seed)
    )
    history = trainer.fit(train_set, eval_set=test_set)
    print(f"trained {args.model} for {epochs} epochs")
    if history.eval_rmse:
        print(f"  best epoch RMSE: {min(history.eval_rmse):.3f}")
    if test_set is not None:
        report = evaluate_metrics(
            trainer.predict(test_set), test_set.gaps.astype(np.float64)
        )
        print(f"  ensembled test MAE {report.mae:.3f}  RMSE {report.rmse:.3f}")
    if args.save:
        save_weights(model, args.save)
        print(f"wrote {args.save}")
    return 0


def cmd_evaluate(args) -> int:
    from .core import InputScales, Trainer
    from .features import ExampleSet
    from .nn import load_weights

    scale = get_scale(args.scale)
    train_set = ExampleSet.load(args.train_set)
    test_set = ExampleSet.load(args.test_set)
    model = _build_model(args.model, scale, test_set.n_areas, args.dropout, seed=0)
    load_weights(model, args.weights)
    model.input_scales = InputScales.from_example_set(train_set)
    report = evaluate_metrics(
        Trainer(model).predict(test_set), test_set.gaps.astype(np.float64)
    )
    print(
        format_table(
            ["Model", "MAE", "RMSE", "items"],
            [[args.model, report.mae, report.rmse, report.n_items]],
            title=f"Evaluation of {args.weights}",
        )
    )
    return 0


def cmd_experiment(args) -> int:
    from . import experiments
    from .experiments import get_context

    context = get_context(args.scale, args.seed)
    runner = getattr(experiments, args.name)
    result = runner.run(context)
    print(_render_experiment(args.name, result))
    return 0


def _render_experiment(name: str, result) -> str:
    """Minimal textual rendering per experiment family."""
    if name.startswith("table") and isinstance(result, list):
        fields = [f for f in vars(result[0])]
        rows = [[getattr(row, f) for f in fields] for row in result]
        return format_table(fields, rows, title=name)
    if isinstance(result, dict):
        lines = [name]
        for key, value in result.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)
    return f"{name}:\n{result}"


def cmd_info(args) -> int:
    if args.kind == "city":
        from .city import CityDataset

        dataset = CityDataset.load(args.path)
        for key, value in dataset.summary().items():
            print(f"{key}: {value}")
    else:
        from .features import ExampleSet

        example_set = ExampleSet.load(args.path)
        print(f"items: {example_set.n_items}")
        print(f"window: {example_set.window}")
        print(f"areas: {example_set.n_areas}")
        print(f"gap mean: {example_set.gaps.mean():.3f}")
        print(f"gap zero fraction: {(example_set.gaps == 0).mean():.3f}")
    return 0


_COMMANDS = {
    "simulate": cmd_simulate,
    "featurize": cmd_featurize,
    "train": cmd_train,
    "evaluate": cmd_evaluate,
    "experiment": cmd_experiment,
    "info": cmd_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
