"""Evaluation: error metrics and the paper's qualitative analyses."""

from .analysis import (
    WeekdayWeightProfile,
    closest_and_farthest,
    demand_curve_correlation,
    embedding_distances,
    mean_demand_correlation,
    prediction_curve,
    rapid_variation_score,
    weekday_weight_profile,
)
from .backtest import BacktestMoment, BacktestReport, run_backtest
from .breakdown import (
    BreakdownRow,
    by_area,
    by_archetype,
    by_hour,
    by_weekday,
    worst_slices,
)
from .metrics import (
    ErrorReport,
    evaluate,
    evaluate_under_thresholds,
    mae,
    rmse,
)
from .report import format_table

__all__ = [
    "mae",
    "rmse",
    "evaluate",
    "evaluate_under_thresholds",
    "ErrorReport",
    "embedding_distances",
    "closest_and_farthest",
    "demand_curve_correlation",
    "mean_demand_correlation",
    "weekday_weight_profile",
    "WeekdayWeightProfile",
    "prediction_curve",
    "rapid_variation_score",
    "format_table",
    "BacktestMoment",
    "BacktestReport",
    "run_backtest",
    "BreakdownRow",
    "by_weekday",
    "by_hour",
    "by_area",
    "by_archetype",
    "worst_slices",
]
