"""Error breakdowns: where does a model do well or badly?

Slices test-set errors by weekday, hour of day, area and area archetype —
the practical follow-up questions to any Table II-style aggregate, and the
first thing an operations team asks ("are we bad exactly at rush hour?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from .metrics import ErrorReport, evaluate

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset
    from ..features.builder import ExampleSet

WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


@dataclass(frozen=True)
class BreakdownRow:
    """One slice of the error breakdown."""

    key: str
    report: ErrorReport

    @property
    def mae(self) -> float:
        return self.report.mae

    @property
    def rmse(self) -> float:
        return self.report.rmse

    @property
    def n_items(self) -> int:
        return self.report.n_items


def _group(
    predictions: np.ndarray,
    targets: np.ndarray,
    labels: np.ndarray,
    names: Dict[int, str] | None = None,
) -> List[BreakdownRow]:
    rows = []
    for value in np.unique(labels):
        mask = labels == value
        name = names[int(value)] if names else str(int(value))
        rows.append(BreakdownRow(key=name, report=evaluate(predictions[mask], targets[mask])))
    return rows


def by_weekday(
    predictions: np.ndarray, example_set: "ExampleSet"
) -> List[BreakdownRow]:
    """MAE/RMSE per day of week."""
    targets = example_set.gaps.astype(np.float64)
    names = dict(enumerate(WEEKDAY_NAMES))
    return _group(predictions, targets, example_set.week_ids, names)


def by_hour(
    predictions: np.ndarray, example_set: "ExampleSet"
) -> List[BreakdownRow]:
    """MAE/RMSE per hour of day (of the prediction start)."""
    targets = example_set.gaps.astype(np.float64)
    hours = (example_set.time_ids // 60).astype(np.int64)
    return _group(predictions, targets, hours)


def by_area(
    predictions: np.ndarray, example_set: "ExampleSet"
) -> List[BreakdownRow]:
    """MAE/RMSE per area."""
    targets = example_set.gaps.astype(np.float64)
    return _group(predictions, targets, example_set.area_ids)


def by_archetype(
    predictions: np.ndarray,
    example_set: "ExampleSet",
    dataset: "CityDataset",
) -> List[BreakdownRow]:
    """MAE/RMSE per area archetype (uses the simulator's ground truth)."""
    targets = example_set.gaps.astype(np.float64)
    archetypes = np.array(
        [dataset.grid[int(a)].archetype.value for a in example_set.area_ids]
    )
    rows = []
    for value in np.unique(archetypes):
        mask = archetypes == value
        rows.append(
            BreakdownRow(key=str(value), report=evaluate(predictions[mask], targets[mask]))
        )
    return rows


def worst_slices(rows: List[BreakdownRow], k: int = 3) -> List[BreakdownRow]:
    """The k slices with the highest RMSE."""
    return sorted(rows, key=lambda row: row.rmse, reverse=True)[:k]
