"""Rolling backtest of a gap predictor over the test days.

The paper's motivation is dispatching: a scheduler repeatedly asks, at a
wall-clock moment, for the gap of *every* area over the next interval and
sends drivers to the worst ones.  This module replays that loop over the
simulated test days and reports, besides MAE/RMSE:

- **top-k hit rate** — how often the truly worst-k areas appear in the
  predicted worst-k (the quantity a dispatcher actually consumes);
- **rank correlation** (Spearman) between predicted and true area rankings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from ..obs import get_logger, get_registry
from .metrics import evaluate

if TYPE_CHECKING:  # pragma: no cover
    from ..core.predictor import GapPredictor

_log = get_logger(__name__)


@dataclass(frozen=True)
class BacktestMoment:
    """Predictions for all areas at one (day, timeslot)."""

    day: int
    timeslot: int
    predicted: np.ndarray   # (n_areas,)
    actual: np.ndarray      # (n_areas,)

    def top_k_hit_rate(self, k: int) -> float:
        """|predicted top-k ∩ true top-k| / k (ties broken by area id)."""
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, len(self.predicted))
        predicted_top = set(np.argsort(-self.predicted, kind="stable")[:k].tolist())
        actual_top = set(np.argsort(-self.actual, kind="stable")[:k].tolist())
        return len(predicted_top & actual_top) / k

    def rank_correlation(self) -> float:
        """Spearman correlation between predicted and true area rankings."""
        if len(self.predicted) < 2:
            return 0.0
        predicted_ranks = _ranks(self.predicted)
        actual_ranks = _ranks(self.actual)
        if predicted_ranks.std() < 1e-12 or actual_ranks.std() < 1e-12:
            return 0.0
        return float(np.corrcoef(predicted_ranks, actual_ranks)[0, 1])


@dataclass
class BacktestReport:
    """Aggregated results of one backtest run."""

    moments: List[BacktestMoment] = field(default_factory=list)

    @property
    def n_moments(self) -> int:
        return len(self.moments)

    def _flat(self) -> tuple:
        predicted = np.concatenate([m.predicted for m in self.moments])
        actual = np.concatenate([m.actual for m in self.moments])
        return predicted, actual

    def overall_mae(self) -> float:
        predicted, actual = self._flat()
        return evaluate(predicted, actual).mae

    def overall_rmse(self) -> float:
        predicted, actual = self._flat()
        return evaluate(predicted, actual).rmse

    def mean_top_k_hit_rate(self, k: int = 3) -> float:
        return float(np.mean([m.top_k_hit_rate(k) for m in self.moments]))

    def mean_rank_correlation(self) -> float:
        return float(np.mean([m.rank_correlation() for m in self.moments]))

    def per_day_rmse(self) -> dict:
        """RMSE keyed by day index."""
        days = sorted({m.day for m in self.moments})
        out = {}
        for day in days:
            moments = [m for m in self.moments if m.day == day]
            predicted = np.concatenate([m.predicted for m in moments])
            actual = np.concatenate([m.actual for m in moments])
            out[day] = evaluate(predicted, actual).rmse
        return out


def run_backtest(
    predictor: "GapPredictor",
    days: Sequence[int],
    timeslots: Sequence[int],
    areas: Sequence[int] | None = None,
) -> BacktestReport:
    """Replay the dispatcher loop: predict all areas at each (day, slot)."""
    from ..core.predictor import GapQuery

    dataset = predictor.dataset
    if areas is None:
        areas = range(dataset.n_areas)
    areas = list(areas)
    report = BacktestReport()
    with get_registry().timer("repro.backtest.seconds") as timer:
        for day in days:
            for timeslot in timeslots:
                queries = [GapQuery(area, day, timeslot) for area in areas]
                predicted = predictor.predict_many(queries)
                actual = np.array(
                    [predictor.actual_gap(area, day, timeslot) for area in areas],
                    dtype=np.float64,
                )
                report.moments.append(
                    BacktestMoment(
                        day=day, timeslot=timeslot, predicted=predicted, actual=actual
                    )
                )
    get_registry().counter("repro.backtest.moments", report.n_moments)
    _log.event(
        "backtest.done",
        moments=report.n_moments,
        areas=len(areas),
        seconds=timer.elapsed,
    )
    return report


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties get the mean of their positions)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(len(values), dtype=np.float64)
    # Average ranks over ties.
    unique, inverse = np.unique(values, return_inverse=True)
    sums = np.bincount(inverse, weights=ranks)
    counts = np.bincount(inverse)
    return (sums / counts)[inverse]
