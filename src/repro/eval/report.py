"""Plain-text table rendering for experiment output.

Benchmarks print the same rows the paper's tables report; this module
formats them consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [
        [_render(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render(cell: object, float_format: str) -> str:
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)
