"""Error metrics — Section VI-A1 of the paper.

MAE and RMSE over the test items, plus the threshold-restricted variants
behind Fig. 10 ("for a specific threshold, we evaluate the models on a
subset of test data which has the gaps smaller than the threshold").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..obs import get_registry


@dataclass(frozen=True)
class ErrorReport:
    """MAE/RMSE pair for one model on one item set."""

    mae: float
    rmse: float
    n_items: int

    def as_row(self) -> tuple:
        return (self.mae, self.rmse)


def mae(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error."""
    predictions, targets = _validate(predictions, targets)
    return float(np.abs(predictions - targets).mean())


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean squared error."""
    predictions, targets = _validate(predictions, targets)
    return float(np.sqrt(((predictions - targets) ** 2).mean()))


def evaluate(predictions: np.ndarray, targets: np.ndarray) -> ErrorReport:
    """Both metrics at once."""
    predictions, targets = _validate(predictions, targets)
    report = ErrorReport(
        mae=mae(predictions, targets),
        rmse=rmse(predictions, targets),
        n_items=len(targets),
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter("repro.eval.evaluations")
        registry.gauge("repro.eval.mae", report.mae)
        registry.gauge("repro.eval.rmse", report.rmse)
        registry.gauge("repro.eval.items", report.n_items)
    return report


def evaluate_under_thresholds(
    predictions: np.ndarray,
    targets: np.ndarray,
    thresholds: Sequence[float],
) -> Dict[float, ErrorReport]:
    """Fig. 10: metrics on the subsets with gap ≤ threshold.

    Items whose *true* gap exceeds the threshold are dropped before
    computing the metrics.
    """
    predictions, targets = _validate(predictions, targets)
    reports = {}
    for threshold in thresholds:
        mask = targets <= threshold
        if not mask.any():
            reports[float(threshold)] = ErrorReport(np.nan, np.nan, 0)
            continue
        reports[float(threshold)] = evaluate(predictions[mask], targets[mask])
    return reports


def _validate(predictions: np.ndarray, targets: np.ndarray):
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape or predictions.ndim != 1:
        raise ValueError(
            f"predictions and targets must be equal-length 1-D arrays, got "
            f"{predictions.shape} and {targets.shape}"
        )
    if len(predictions) == 0:
        raise ValueError("cannot evaluate zero items")
    return predictions, targets
