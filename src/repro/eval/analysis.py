"""Qualitative analyses from Section VI: embeddings, weekday weights, curves.

- Table IV / Fig. 12: pairwise distances between learned area embeddings and
  the demand-curve similarity they imply;
- Fig. 15: learned weekday combining weights per (area, weekday);
- Fig. 1 / Fig. 11: demand and prediction curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset


def embedding_distances(embedding_matrix: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between embedded area vectors."""
    w = np.asarray(embedding_matrix, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"embedding matrix must be 2-D, got shape {w.shape}")
    squares = (w ** 2).sum(axis=1)
    d2 = squares[:, None] + squares[None, :] - 2.0 * (w @ w.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def closest_and_farthest(
    distances: np.ndarray, area_id: int
) -> Tuple[int, int]:
    """The nearest and farthest other area in embedding space."""
    row = distances[area_id].copy()
    row[area_id] = np.inf
    nearest = int(np.argmin(row))
    row[area_id] = -np.inf
    farthest = int(np.argmax(row))
    return nearest, farthest


def mean_demand_correlation(
    dataset: "CityDataset",
    area_a: int,
    area_b: int,
    days: Sequence[int],
    *,
    smooth: int = 30,
) -> float:
    """Average demand-curve correlation over several days (noise-robust)."""
    if not len(days):
        raise ValueError("days must be non-empty")
    return float(
        np.mean(
            [
                demand_curve_correlation(dataset, area_a, area_b, day, smooth=smooth)
                for day in days
            ]
        )
    )


def demand_curve_correlation(
    dataset: "CityDataset", area_a: int, area_b: int, day: int, *, smooth: int = 30
) -> float:
    """Correlation of two areas' (smoothed) demand curves on one day.

    The paper's Fig. 12 claim: areas close in embedding space have similar
    demand *trends* even when their scales differ — correlation is the
    scale-free similarity.
    """
    series_a = _smoothed(dataset.demand_series(area_a, day), smooth)
    series_b = _smoothed(dataset.demand_series(area_b, day), smooth)
    if series_a.std() < 1e-12 or series_b.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(series_a, series_b)[0, 1])


def _smoothed(series: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return series.astype(np.float64)
    kernel = np.ones(window) / window
    return np.convolve(series.astype(np.float64), kernel, mode="valid")


@dataclass(frozen=True)
class WeekdayWeightProfile:
    """Learned combining weights for one area across all weekdays (Fig. 15)."""

    area_id: int
    weights: np.ndarray  # (7 current weekdays, 7 historical weekdays)

    def concentration(self, week_id: int) -> float:
        """Max weight for a given current weekday — 1/7 means uniform."""
        return float(self.weights[week_id].max())

    def weekend_mass(self, week_id: int) -> float:
        """Probability mass placed on Saturday+Sunday history."""
        return float(self.weights[week_id, 5:].sum())


def weekday_weight_profile(model, area_id: int) -> WeekdayWeightProfile:
    """Extract the full 7×7 weight table of one area from a trained model.

    ``model`` is an :class:`~repro.core.AdvancedDeepSD` (anything exposing
    ``weekday_weights(area_id, week_id)``).
    """
    weights = np.stack(
        [model.weekday_weights(area_id, week_id) for week_id in range(7)]
    )
    return WeekdayWeightProfile(area_id=area_id, weights=weights)


def prediction_curve(
    predictions: np.ndarray,
    targets: np.ndarray,
    area_ids: np.ndarray,
    day_ids: np.ndarray,
    time_ids: np.ndarray,
    area_id: int,
) -> List[Tuple[int, int, float, float]]:
    """Per-timeslot (day, t, truth, prediction) series for one area (Fig. 11)."""
    mask = area_ids == area_id
    rows = sorted(
        zip(
            day_ids[mask].tolist(),
            time_ids[mask].tolist(),
            targets[mask].tolist(),
            predictions[mask].tolist(),
        )
    )
    return [(int(d), int(t), float(y), float(p)) for d, t, y, p in rows]


def rapid_variation_score(curve: Sequence[Tuple[int, int, float, float]]) -> float:
    """Mean absolute step of the ground truth — picks Fig. 11's areas."""
    truth = np.array([point[2] for point in curve])
    if len(truth) < 2:
        return 0.0
    return float(np.abs(np.diff(truth)).mean())
