"""Exception hierarchy for the DeepSD reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An experiment or model configuration is invalid."""


class DataError(ReproError):
    """A dataset or feature set is malformed or inconsistent."""


class NotFittedError(ReproError):
    """A model was asked to predict before being trained."""
