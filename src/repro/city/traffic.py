"""Per-area traffic condition simulation.

Definition 4 of the paper: the traffic condition of an area at a timeslot is
a quadruple — the number of road segments at each of four congestion levels,
Level 1 (most congested) … Level 4 (least congested).

Congestion follows the area's demand pressure (rush hours congest roads) and
worsens in bad weather, which is exactly the correlation that makes the
traffic block informative for gap prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calendar import MINUTES_PER_DAY
from .grid import Area
from .weather import WeatherSeries

N_CONGESTION_LEVELS = 4

#: Additional congestion pressure per weather type (aligned with
#: :data:`repro.city.weather.WEATHER_TYPES`).
_WEATHER_PRESSURE = np.array(
    [0.0, 0.02, 0.05, 0.25, 0.35, 0.55, 0.75, 0.30, 0.10, 0.65]
)


@dataclass(frozen=True)
class TrafficSeries:
    """Traffic condition quadruples for every (area, day, minute).

    Attributes
    ----------
    level_counts:
        ``(n_areas, n_days, 1440, 4)`` int16 array; ``level_counts[a, d, t]``
        sums to the area's road-segment count.
    """

    level_counts: np.ndarray

    def __post_init__(self) -> None:
        if self.level_counts.ndim != 4 or self.level_counts.shape[3] != N_CONGESTION_LEVELS:
            raise ValueError(
                "level_counts must be (n_areas, n_days, 1440, 4), "
                f"got {self.level_counts.shape}"
            )

    @property
    def n_areas(self) -> int:
        return self.level_counts.shape[0]

    @property
    def n_days(self) -> int:
        return self.level_counts.shape[1]

    def at(self, area_id: int, day: int, timeslot: int) -> np.ndarray:
        """The four-level quadruple at one (area, day, timeslot)."""
        return self.level_counts[area_id, day, timeslot]

    def congestion_index(self, area_id: int, day: int) -> np.ndarray:
        """Scalar congestion per minute in [0, 1]; 1 = everything at Level 1.

        Weighted fraction of segments at the more congested levels; used by
        the supply model (congestion slows drivers down).
        """
        counts = self.level_counts[area_id, day].astype(np.float64)
        weights = np.array([1.0, 0.6, 0.25, 0.0])
        total = counts.sum(axis=1)
        return (counts @ weights) / np.maximum(total, 1.0)


class TrafficSimulator:
    """Generates a :class:`TrafficSeries` coupled to demand and weather."""

    def __init__(self, *, demand_coupling: float = 0.9, noise_sigma: float = 0.15):
        if demand_coupling < 0:
            raise ValueError("demand_coupling must be non-negative")
        self.demand_coupling = demand_coupling
        self.noise_sigma = noise_sigma

    def simulate_area_day(
        self,
        area: Area,
        day: int,
        demand_intensity: np.ndarray,
        weather: WeatherSeries,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Level counts ``(1440, 4)`` for one area-day.

        ``demand_intensity`` is the same per-minute intensity the demand
        model produced, so traffic congestion peaks with demand.
        """
        if demand_intensity.shape != (MINUTES_PER_DAY,):
            raise ValueError(
                f"demand_intensity must have shape ({MINUTES_PER_DAY},), "
                f"got {demand_intensity.shape}"
            )
        peak = max(float(demand_intensity.max()), 1e-9)
        pressure = (
            self.demand_coupling * (demand_intensity / peak)
            + _WEATHER_PRESSURE[weather.types[day]]
            + rng.normal(0.0, self.noise_sigma, size=MINUTES_PER_DAY)
        )
        pressure = np.clip(pressure, 0.0, 1.6)

        # Map scalar pressure to a distribution over the four levels:
        # no pressure -> almost everything at Level 4 (free flow);
        # high pressure -> mass shifts towards Level 1.
        level_positions = np.array([1.35, 0.9, 0.45, 0.0])
        sharp = 4.0
        logits = -sharp * np.abs(pressure[:, None] - level_positions[None, :])
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        proportions = exp / exp.sum(axis=1, keepdims=True)

        counts = np.floor(proportions * area.n_road_segments).astype(np.int16)
        deficit = area.n_road_segments - counts.sum(axis=1)
        # Assign leftover segments to each minute's dominant level.
        dominant = proportions.argmax(axis=1)
        counts[np.arange(MINUTES_PER_DAY), dominant] += deficit.astype(np.int16)
        return counts
