"""CityDataset: the assembled output of a simulation run.

Bundles the order stream, passenger sessions, weather, traffic, the grid and
the calendar, with fast per-(area, day) access and the gap labels defined in
the paper (Definition 2: the gap over ``[t, t+C)`` is the number of invalid
orders in that interval).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from .calendar import MINUTES_PER_DAY, SimulationCalendar
from .grid import Archetype, Area, CityGrid
from .orders import ORDER_DTYPE, SESSION_DTYPE
from .traffic import TrafficSeries
from .weather import WeatherSeries


@dataclass
class CityDataset:
    """All simulated data for one city.

    Attributes
    ----------
    grid, calendar:
        The city layout and day-of-week mapping.
    orders:
        Structured array (:data:`ORDER_DTYPE`) sorted by
        ``(origin, day, ts)``.
    sessions:
        Structured array (:data:`SESSION_DTYPE`) sorted by
        ``(area, day, first_ts)``.
    weather, traffic:
        Environment series.
    valid_counts, invalid_counts:
        ``(n_areas, n_days, 1440)`` int32 per-minute order counts — the raw
        material of the supply-demand vectors and the gap labels.
    """

    grid: CityGrid
    calendar: SimulationCalendar
    orders: np.ndarray
    sessions: np.ndarray
    weather: WeatherSeries
    traffic: TrafficSeries
    valid_counts: np.ndarray
    invalid_counts: np.ndarray

    def __post_init__(self) -> None:
        n_areas, n_days = self.grid.n_areas, self.calendar.n_days
        expected = (n_areas, n_days, MINUTES_PER_DAY)
        if self.valid_counts.shape != expected or self.invalid_counts.shape != expected:
            raise DataError(
                f"count arrays must have shape {expected}, got "
                f"{self.valid_counts.shape} / {self.invalid_counts.shape}"
            )
        self._order_bounds = _bounds(self.orders, "origin", "day", n_areas, n_days)
        self._session_bounds = _bounds(self.sessions, "area", "day", n_areas, n_days)
        # Cumulative invalid counts give O(1) gap queries.
        self._invalid_cumsum = np.concatenate(
            [
                np.zeros((n_areas, n_days, 1), dtype=np.int64),
                self.invalid_counts.cumsum(axis=2, dtype=np.int64),
            ],
            axis=2,
        )

    # ------------------------------------------------------------------
    # Basic shape info
    # ------------------------------------------------------------------

    @property
    def n_areas(self) -> int:
        return self.grid.n_areas

    @property
    def n_days(self) -> int:
        return self.calendar.n_days

    @property
    def n_orders(self) -> int:
        return len(self.orders)

    # ------------------------------------------------------------------
    # Per-(area, day) access
    # ------------------------------------------------------------------

    def area_day_orders(self, area_id: int, day: int) -> np.ndarray:
        """All orders originating in ``area_id`` on ``day`` (a view)."""
        start, stop = self._order_bounds[area_id, day]
        return self.orders[start:stop]

    def area_day_sessions(self, area_id: int, day: int) -> np.ndarray:
        """All passenger sessions in ``area_id`` on ``day`` (a view)."""
        start, stop = self._session_bounds[area_id, day]
        return self.sessions[start:stop]

    # ------------------------------------------------------------------
    # Labels and series
    # ------------------------------------------------------------------

    def gap(self, area_id: int, day: int, timeslot: int, horizon: int = 10) -> int:
        """Supply-demand gap over ``[timeslot, timeslot + horizon)``.

        Definition 2 of the paper: the number of invalid orders in the
        interval.
        """
        stop = min(timeslot + horizon, MINUTES_PER_DAY)
        cumsum = self._invalid_cumsum[area_id, day]
        return int(cumsum[stop] - cumsum[timeslot])

    def gaps(
        self,
        area_ids: np.ndarray,
        days: np.ndarray,
        timeslots: np.ndarray,
        horizon: int = 10,
    ) -> np.ndarray:
        """Vectorised gap labels for many (area, day, timeslot) items."""
        area_ids = np.asarray(area_ids, dtype=np.int64)
        days = np.asarray(days, dtype=np.int64)
        timeslots = np.asarray(timeslots, dtype=np.int64)
        stops = np.minimum(timeslots + horizon, MINUTES_PER_DAY)
        cumsum = self._invalid_cumsum
        return (
            cumsum[area_ids, days, stops] - cumsum[area_ids, days, timeslots]
        ).astype(np.int64)

    def gap_series(self, area_id: int, day: int, horizon: int = 10) -> np.ndarray:
        """Gap at every start minute of ``day`` (length 1440)."""
        cumsum = self._invalid_cumsum[area_id, day]
        stops = np.minimum(np.arange(MINUTES_PER_DAY) + horizon, MINUTES_PER_DAY)
        return (cumsum[stops] - cumsum[:MINUTES_PER_DAY]).astype(np.int64)

    def demand_series(self, area_id: int, day: int) -> np.ndarray:
        """Total requests (valid + invalid) per minute of ``day``."""
        return (
            self.valid_counts[area_id, day] + self.invalid_counts[area_id, day]
        ).astype(np.int64)

    def total_gap(self) -> int:
        """Total invalid orders in the dataset."""
        return int(self.invalid_counts.sum())

    def summary(self) -> dict:
        """Descriptive statistics of the simulated dataset."""
        gaps = self.invalid_counts.reshape(self.n_areas, -1)
        return {
            "n_areas": self.n_areas,
            "n_days": self.n_days,
            "n_orders": self.n_orders,
            "n_sessions": len(self.sessions),
            "valid_fraction": float(self.orders["valid"].mean()) if self.n_orders else 0.0,
            "total_gap": self.total_gap(),
            "max_minute_gap": int(gaps.max()) if gaps.size else 0,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Serialize the dataset to a compressed npz archive."""
        areas = self.grid.areas
        np.savez_compressed(
            os.fspath(path),
            orders=self.orders,
            sessions=self.sessions,
            weather_types=self.weather.types,
            weather_temperature=self.weather.temperature,
            weather_pm25=self.weather.pm25,
            traffic_level_counts=self.traffic.level_counts,
            valid_counts=self.valid_counts,
            invalid_counts=self.invalid_counts,
            area_archetypes=np.array([a.archetype.value for a in areas]),
            area_popularity=np.array([a.popularity for a in areas]),
            area_road_segments=np.array([a.n_road_segments for a in areas]),
            area_rows=np.array([a.row for a in areas]),
            area_cols=np.array([a.col for a in areas]),
            n_days=np.array([self.calendar.n_days]),
            start_weekday=np.array([self.calendar.start_weekday]),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CityDataset":
        """Load a dataset written by :meth:`save`."""
        with np.load(os.fspath(path), allow_pickle=False) as archive:
            areas = [
                Area(
                    area_id=i,
                    archetype=Archetype(str(arch)),
                    popularity=float(pop),
                    n_road_segments=int(seg),
                    row=int(row),
                    col=int(col),
                )
                for i, (arch, pop, seg, row, col) in enumerate(
                    zip(
                        archive["area_archetypes"],
                        archive["area_popularity"],
                        archive["area_road_segments"],
                        archive["area_rows"],
                        archive["area_cols"],
                    )
                )
            ]
            return cls(
                grid=CityGrid(areas),
                calendar=SimulationCalendar(
                    n_days=int(archive["n_days"][0]),
                    start_weekday=int(archive["start_weekday"][0]),
                ),
                orders=archive["orders"].astype(ORDER_DTYPE),
                sessions=archive["sessions"].astype(SESSION_DTYPE),
                weather=WeatherSeries(
                    types=archive["weather_types"],
                    temperature=archive["weather_temperature"],
                    pm25=archive["weather_pm25"],
                ),
                traffic=TrafficSeries(level_counts=archive["traffic_level_counts"]),
                valid_counts=archive["valid_counts"],
                invalid_counts=archive["invalid_counts"],
            )


def _bounds(
    records: np.ndarray, area_field: str, day_field: str, n_areas: int, n_days: int
) -> np.ndarray:
    """Start/stop indices per (area, day) into a sorted structured array."""
    keys = records[area_field].astype(np.int64) * n_days + records[day_field]
    if len(keys) > 1 and (np.diff(keys) < 0).any():
        raise DataError(f"records must be sorted by ({area_field}, {day_field})")
    bounds = np.empty((n_areas, n_days, 2), dtype=np.int64)
    grid_keys = np.arange(n_areas * n_days)
    bounds[..., 0] = np.searchsorted(keys, grid_keys, side="left").reshape(
        n_areas, n_days
    )
    bounds[..., 1] = np.searchsorted(keys, grid_keys, side="right").reshape(
        n_areas, n_days
    )
    return bounds
