"""Order-stream generation with passenger retry behaviour.

Definition 1 of the paper: an order is a tuple
``(o.d, o.ts, o.pid, o.loc_s, o.loc_d)`` — date, timeslot, passenger id,
start area and destination area.  An order answered by a driver is *valid*;
an unanswered one is *invalid*.

The generator also models the behaviour the paper's last-call and
waiting-time blocks exploit (Section V-B): "if a passenger failed on calling
a ride, she/he is likely to send the car-hailing request again in the next
few minutes".  A passenger whose request goes unanswered retries with some
probability after a short delay, up to a maximum number of attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .calendar import MINUTES_PER_DAY
from .grid import Area

#: Structured dtype for order records.
ORDER_DTYPE = np.dtype(
    [
        ("day", np.int16),
        ("ts", np.int16),
        ("pid", np.int64),
        ("origin", np.int16),
        ("dest", np.int16),
        ("valid", np.bool_),
    ]
)

#: Structured dtype for passenger-session summaries.  A session covers all
#: calls of one passenger (first call through final retry) and records
#: whether the passenger was eventually served.
SESSION_DTYPE = np.dtype(
    [
        ("pid", np.int64),
        ("area", np.int16),
        ("day", np.int16),
        ("first_ts", np.int16),
        ("last_ts", np.int16),
        ("n_calls", np.int16),
        ("served", np.bool_),
    ]
)


@dataclass(frozen=True)
class RetryPolicy:
    """How unserved passengers retry.

    Parameters
    ----------
    retry_probability:
        Chance an unserved passenger sends another request.
    min_delay, max_delay:
        Uniform bounds (minutes) on the wait before the retry.
    max_attempts:
        Total calls a passenger will make before giving up.
    """

    retry_probability: float = 0.72
    min_delay: int = 1
    max_delay: int = 4
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.retry_probability <= 1.0:
            raise ValueError("retry_probability must be in [0, 1]")
        if not 1 <= self.min_delay <= self.max_delay:
            raise ValueError("need 1 <= min_delay <= max_delay")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    @property
    def max_session_minutes(self) -> int:
        """Upper bound on first-to-last-call span of any session."""
        return (self.max_attempts - 1) * self.max_delay


@dataclass
class AreaDayOrders:
    """Orders and sessions generated for one (area, day)."""

    area_id: int
    day: int
    orders: np.ndarray
    sessions: np.ndarray

    @property
    def n_orders(self) -> int:
        return len(self.orders)

    @property
    def n_invalid(self) -> int:
        return int((~self.orders["valid"]).sum())


class OrderGenerator:
    """Turns demand arrivals + driver availability into an order stream.

    Drivers form a pool: fresh drivers arrive each minute (the ``capacity``
    series), serve at most one request each, and idle drivers stay around
    with probability ``idle_persistence`` per minute (capped at
    ``max_idle_pool``).  Pooling is what keeps quiet periods balanced — a
    memoryless per-minute capacity would mark orders invalid even when
    supply exceeds demand on average.
    """

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        *,
        idle_persistence: float = 0.8,
        max_idle_pool: int = 50,
    ):
        if not 0.0 <= idle_persistence <= 1.0:
            raise ValueError("idle_persistence must be in [0, 1]")
        if max_idle_pool < 0:
            raise ValueError("max_idle_pool must be non-negative")
        self.retry_policy = retry_policy or RetryPolicy()
        self.idle_persistence = idle_persistence
        self.max_idle_pool = max_idle_pool

    def generate_area_day(
        self,
        area: Area,
        day: int,
        arrivals: np.ndarray,
        capacity: np.ndarray,
        dest_weights: np.ndarray,
        rng: np.random.Generator,
        pid_start: int,
    ) -> AreaDayOrders:
        """Simulate one area-day minute by minute.

        Parameters
        ----------
        arrivals:
            Number of *new* passengers first calling at each minute
            (length 1440).
        capacity:
            Fresh drivers becoming available per minute (length 1440); they
            join the idle pool and each can answer one request.
        dest_weights:
            Probability distribution over destination areas.
        pid_start:
            First passenger id to assign (ids are globally unique).
        """
        if arrivals.shape != (MINUTES_PER_DAY,) or capacity.shape != (MINUTES_PER_DAY,):
            raise ValueError("arrivals and capacity must have shape (1440,)")
        policy = self.retry_policy

        ts_list: List[int] = []
        pid_list: List[int] = []
        valid_list: List[bool] = []

        # Per-session state, keyed by local session index.
        first_ts: List[int] = []
        last_ts: List[int] = []
        n_calls: List[int] = []
        served: List[bool] = []

        # retries[minute] -> list of session indices retrying then.
        retries: List[List[int]] = [[] for _ in range(MINUTES_PER_DAY)]
        attempts: List[int] = []

        next_session = 0
        pool = 0
        for minute in range(MINUTES_PER_DAY):
            # Idle drivers linger with some persistence, then fresh ones join.
            if pool:
                pool = int(rng.binomial(pool, self.idle_persistence))
            pool = min(pool + int(capacity[minute]), self.max_idle_pool + int(capacity[minute]))

            requesters = retries[minute]
            n_new = int(arrivals[minute])
            for _ in range(n_new):
                first_ts.append(minute)
                last_ts.append(minute)
                n_calls.append(0)
                served.append(False)
                attempts.append(0)
                requesters.append(next_session)
                next_session += 1
            if not requesters:
                continue

            cap = pool
            n_req = len(requesters)
            if 0 < cap < n_req:
                # Drivers pick requests effectively at random.
                order = rng.permutation(n_req)
                answered = set(order[:cap].tolist())
            elif cap >= n_req:
                answered = set(range(n_req))
            else:
                answered = set()

            pool -= min(cap, n_req)
            for position, session in enumerate(requesters):
                is_valid = position in answered
                ts_list.append(minute)
                pid_list.append(session)
                valid_list.append(is_valid)
                last_ts[session] = minute
                n_calls[session] += 1
                attempts[session] += 1
                if is_valid:
                    served[session] = True
                    continue
                if attempts[session] >= policy.max_attempts:
                    continue
                if rng.random() >= policy.retry_probability:
                    continue
                delay = int(rng.integers(policy.min_delay, policy.max_delay + 1))
                retry_at = minute + delay
                if retry_at < MINUTES_PER_DAY:
                    retries[retry_at].append(session)

        n_orders = len(ts_list)
        orders = np.empty(n_orders, dtype=ORDER_DTYPE)
        orders["day"] = day
        orders["ts"] = ts_list
        orders["pid"] = np.asarray(pid_list, dtype=np.int64) + pid_start
        orders["origin"] = area.area_id
        orders["dest"] = (
            rng.choice(len(dest_weights), size=n_orders, p=dest_weights)
            if n_orders
            else np.empty(0, dtype=np.int16)
        )
        orders["valid"] = valid_list

        n_sessions = next_session
        sessions = np.empty(n_sessions, dtype=SESSION_DTYPE)
        sessions["pid"] = np.arange(n_sessions, dtype=np.int64) + pid_start
        sessions["area"] = area.area_id
        sessions["day"] = day
        sessions["first_ts"] = first_ts
        sessions["last_ts"] = last_ts
        sessions["n_calls"] = n_calls
        sessions["served"] = served

        return AreaDayOrders(area_id=area.area_id, day=day, orders=orders, sessions=sessions)
