"""Localised demand surges — concerts, matches, conventions.

The paper's introduction notes that "there are many other complicated
factors that can affect the pattern, and it is impossible to list them
exhaustively" — one-off events are the canonical example, and they create
exactly the rapid supply-demand swings that separate real-time models from
historical averages (Fig. 11).

Events are opt-in (``SimulationConfig.events_per_week`` defaults to 0) so
the default city remains purely pattern-driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .calendar import MINUTES_PER_DAY
from .grid import Archetype, CityGrid

#: Relative chance of hosting an event per archetype.
_HOST_WEIGHT = {
    Archetype.ENTERTAINMENT: 5.0,
    Archetype.TRANSPORT_HUB: 2.0,
    Archetype.BUSINESS: 1.0,
    Archetype.MIXED: 1.0,
    Archetype.RESIDENTIAL: 0.3,
    Archetype.SUBURBAN: 0.2,
}


@dataclass(frozen=True)
class Event:
    """One demand surge.

    The multiplier applies to the hosting area's demand intensity over
    ``[start_minute, start_minute + duration_minutes)``; the sharp
    *end-of-event* spike (everyone leaves at once) is modelled by a burst
    factor over the final 30 minutes.
    """

    area_id: int
    day: int
    start_minute: int
    duration_minutes: int
    multiplier: float

    def __post_init__(self) -> None:
        if not 0 <= self.start_minute < MINUTES_PER_DAY:
            raise ValueError("start_minute outside the day")
        if self.duration_minutes <= 0:
            raise ValueError("duration_minutes must be positive")
        if self.multiplier <= 1.0:
            raise ValueError("an event must raise demand (multiplier > 1)")

    @property
    def end_minute(self) -> int:
        return min(self.start_minute + self.duration_minutes, MINUTES_PER_DAY)

    def intensity_profile(self) -> np.ndarray:
        """Per-minute demand multiplier over the whole day (length 1440)."""
        profile = np.ones(MINUTES_PER_DAY)
        profile[self.start_minute : self.end_minute] = self.multiplier
        burst_start = max(self.end_minute - 30, self.start_minute)
        profile[burst_start : self.end_minute] = self.multiplier * 1.5
        return profile


@dataclass
class EventSchedule:
    """All events of one simulation, with fast per-(area, day) lookup."""

    events: List[Event]

    def for_area_day(self, area_id: int, day: int) -> List[Event]:
        return [
            e for e in self.events if e.area_id == area_id and e.day == day
        ]

    def demand_multiplier(self, area_id: int, day: int) -> np.ndarray:
        """Combined per-minute multiplier of all matching events."""
        profile = np.ones(MINUTES_PER_DAY)
        for event in self.for_area_day(area_id, day):
            profile *= event.intensity_profile()
        return profile

    def __len__(self) -> int:
        return len(self.events)


class EventGenerator:
    """Samples an :class:`EventSchedule` for a city.

    Parameters
    ----------
    events_per_week:
        Expected number of events per week across the whole city.
    """

    def __init__(self, events_per_week: float = 2.0):
        if events_per_week < 0:
            raise ValueError("events_per_week must be non-negative")
        self.events_per_week = events_per_week

    def generate(
        self, grid: CityGrid, n_days: int, rng: np.random.Generator
    ) -> EventSchedule:
        expected = self.events_per_week * n_days / 7.0
        n_events = int(rng.poisson(expected)) if expected > 0 else 0

        weights = np.array([_HOST_WEIGHT[a.archetype] for a in grid], dtype=float)
        weights /= weights.sum()

        events = []
        for _ in range(n_events):
            area_id = int(rng.choice(grid.n_areas, p=weights))
            day = int(rng.integers(0, n_days))
            # Events start in the afternoon/evening (14:00-21:00).
            start = int(rng.integers(14 * 60, 21 * 60))
            duration = int(rng.integers(90, 240))
            multiplier = float(rng.uniform(2.0, 4.0))
            events.append(
                Event(
                    area_id=area_id,
                    day=day,
                    start_minute=start,
                    duration_minutes=duration,
                    multiplier=multiplier,
                )
            )
        return EventSchedule(events=events)
