"""End-to-end city simulation: config in, :class:`CityDataset` out.

This is the substitute for the proprietary Didi order data (see DESIGN.md).
Given a :class:`repro.config.SimulationConfig`, the simulator generates the
city grid, the weather, per-area traffic, demand arrivals, driver capacity
and the resulting order stream with valid/invalid outcomes and passenger
retry sessions.
"""

from __future__ import annotations

import logging

import numpy as np

from ..config import SimulationConfig
from ..obs import get_logger, get_registry
from .calendar import MINUTES_PER_DAY, SimulationCalendar
from .dataset import CityDataset
from .demand import DemandModel
from .events import EventGenerator, EventSchedule
from .grid import CityGrid
from .orders import OrderGenerator, RetryPolicy
from .supply import SupplyModel
from .traffic import N_CONGESTION_LEVELS, TrafficSeries, TrafficSimulator
from .weather import WeatherSimulator

_log = get_logger(__name__)


def simulate_city(config: SimulationConfig | None = None) -> CityDataset:
    """Run a full simulation (convenience wrapper around :class:`CitySimulator`)."""
    return CitySimulator(config or SimulationConfig()).simulate()


class CitySimulator:
    """Orchestrates all sub-simulators into one deterministic run.

    A single seeded :class:`numpy.random.Generator` drives everything, so
    two simulators with equal configs produce identical datasets.
    """

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.demand_model = DemandModel(
            base_rate=config.base_demand_rate,
            weather_coupling=config.weather_coupling,
        )
        self.supply_model = SupplyModel(
            headroom=config.supply_headroom,
            lag_minutes=config.supply_lag_minutes,
            weather_coupling=config.weather_coupling,
            congestion_coupling=config.traffic_coupling,
        )
        self.traffic_simulator = TrafficSimulator()
        self.order_generator = OrderGenerator(
            RetryPolicy(
                retry_probability=config.retry_probability,
                min_delay=config.retry_min_delay,
                max_delay=config.retry_max_delay,
                max_attempts=config.retry_max_attempts,
            ),
            idle_persistence=config.idle_persistence,
            max_idle_pool=config.max_idle_pool,
        )

    def simulate(self) -> CityDataset:
        """Generate the complete dataset for this configuration."""
        config = self.config
        _log.event(
            "simulate.start",
            level=logging.DEBUG,
            areas=config.n_areas,
            days=config.n_days,
            seed=config.seed,
        )
        with get_registry().timer("repro.simulate.seconds") as timer:
            dataset = self._simulate(config)
        registry = get_registry()
        registry.counter("repro.simulate.runs")
        registry.counter("repro.simulate.orders", dataset.n_orders)
        registry.counter("repro.simulate.sessions", len(dataset.sessions))
        _log.event(
            "simulate.done",
            areas=config.n_areas,
            days=config.n_days,
            orders=dataset.n_orders,
            sessions=len(dataset.sessions),
            total_gap=dataset.total_gap(),
            seconds=timer.elapsed,
        )
        return dataset

    def _simulate(self, config: SimulationConfig) -> CityDataset:
        rng = np.random.default_rng(config.seed)

        grid = CityGrid.generate(config.n_areas, rng)
        calendar = SimulationCalendar(config.n_days, config.start_weekday)
        weather = WeatherSimulator().simulate(config.n_days, rng)
        if config.events_per_week > 0:
            events = EventGenerator(config.events_per_week).generate(
                grid, config.n_days, rng
            )
        else:
            events = EventSchedule(events=[])
        self.last_events = events

        popularity = np.array([a.popularity for a in grid])
        dest_weights = popularity / popularity.sum()

        traffic_counts = np.empty(
            (config.n_areas, config.n_days, MINUTES_PER_DAY, N_CONGESTION_LEVELS),
            dtype=np.int16,
        )
        valid_counts = np.zeros(
            (config.n_areas, config.n_days, MINUTES_PER_DAY), dtype=np.int32
        )
        invalid_counts = np.zeros_like(valid_counts)

        order_chunks = []
        session_chunks = []
        pid_start = 0
        for area in grid:
            for day in range(config.n_days):
                intensity = self.demand_model.intensity(
                    area, day, calendar, weather, rng
                )
                if len(events):
                    intensity = intensity * events.demand_multiplier(
                        area.area_id, day
                    )
                traffic_counts[area.area_id, day] = (
                    self.traffic_simulator.simulate_area_day(
                        area, day, intensity, weather, rng
                    )
                )
                congestion = _congestion_index(traffic_counts[area.area_id, day])
                capacity = self.supply_model.capacity(
                    area, day, intensity, weather, congestion, rng
                )
                arrivals = rng.poisson(intensity)
                result = self.order_generator.generate_area_day(
                    area,
                    day,
                    arrivals,
                    capacity,
                    dest_weights,
                    rng,
                    pid_start=pid_start,
                )
                pid_start += len(result.sessions)
                order_chunks.append(result.orders)
                session_chunks.append(result.sessions)
                ts = result.orders["ts"]
                valid = result.orders["valid"]
                if len(ts):
                    valid_counts[area.area_id, day] = np.bincount(
                        ts[valid], minlength=MINUTES_PER_DAY
                    )
                    invalid_counts[area.area_id, day] = np.bincount(
                        ts[~valid], minlength=MINUTES_PER_DAY
                    )

        orders = np.concatenate(order_chunks)
        sessions = np.concatenate(session_chunks)
        return CityDataset(
            grid=grid,
            calendar=calendar,
            orders=orders,
            sessions=sessions,
            weather=weather,
            traffic=TrafficSeries(level_counts=traffic_counts),
            valid_counts=valid_counts,
            invalid_counts=invalid_counts,
        )


def _congestion_index(level_counts: np.ndarray) -> np.ndarray:
    """Scalar congestion in [0, 1] per minute from a (1440, 4) count array."""
    counts = level_counts.astype(np.float64)
    weights = np.array([1.0, 0.6, 0.25, 0.0])
    total = counts.sum(axis=1)
    return (counts @ weights) / np.maximum(total, 1.0)
