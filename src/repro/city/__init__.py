"""Synthetic city simulator — the data substrate of the reproduction.

The paper's evaluation uses proprietary Didi car-hailing orders from
Hangzhou.  This package generates a city with the same observable schema and
the same stylised statistics (see DESIGN.md §2 for the substitution
rationale): areas with demand archetypes, Markov weather, demand-coupled
traffic, a lagging driver supply, and passenger sessions that retry after
failed calls.
"""

from .calendar import (
    DAYS_PER_WEEK,
    MINUTES_PER_DAY,
    WEEKDAY_NAMES,
    SimulationCalendar,
    format_timeslot,
    parse_timeslot,
)
from .dataset import CityDataset
from .demand import DemandModel
from .events import Event, EventGenerator, EventSchedule
from .io import export_csv, import_csv
from .validation import validate_dataset
from .grid import Archetype, Area, CityGrid
from .orders import ORDER_DTYPE, SESSION_DTYPE, AreaDayOrders, OrderGenerator, RetryPolicy
from .simulator import CitySimulator, simulate_city
from .supply import SupplyModel
from .traffic import N_CONGESTION_LEVELS, TrafficSeries, TrafficSimulator
from .weather import (
    N_WEATHER_TYPES,
    WEATHER_TYPES,
    WeatherSeries,
    WeatherSimulator,
)

__all__ = [
    "MINUTES_PER_DAY",
    "DAYS_PER_WEEK",
    "WEEKDAY_NAMES",
    "SimulationCalendar",
    "format_timeslot",
    "parse_timeslot",
    "Archetype",
    "Area",
    "CityGrid",
    "WeatherSeries",
    "WeatherSimulator",
    "WEATHER_TYPES",
    "N_WEATHER_TYPES",
    "TrafficSeries",
    "TrafficSimulator",
    "N_CONGESTION_LEVELS",
    "DemandModel",
    "Event",
    "EventGenerator",
    "EventSchedule",
    "SupplyModel",
    "OrderGenerator",
    "RetryPolicy",
    "AreaDayOrders",
    "ORDER_DTYPE",
    "SESSION_DTYPE",
    "CityDataset",
    "CitySimulator",
    "simulate_city",
    "export_csv",
    "import_csv",
    "validate_dataset",
]
