"""Passenger demand intensity model.

Produces, for each (area, day), a per-minute Poisson intensity of *new*
ride requests.  The shapes encode the stylised facts the paper builds on:

- strong weekly periodicity with weekday/weekend contrast (Section V-A);
- archetype-specific shapes — commuter peaks around 8:00 and 19:00 in
  residential/business areas on weekdays, entertainment areas surging on
  weekends (the paper's Fig. 1 example);
- bad weather boosts demand (Section IV-C motivates the weather block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calendar import MINUTES_PER_DAY, SimulationCalendar
from .grid import Archetype, Area, CityGrid
from .weather import WeatherSeries


def _gaussian_bump(minutes: np.ndarray, centre: float, width: float) -> np.ndarray:
    """Smooth bump centred at ``centre`` minutes with the given width."""
    return np.exp(-0.5 * ((minutes - centre) / width) ** 2)


def _base_night_profile(minutes: np.ndarray) -> np.ndarray:
    """Low overnight floor, near zero around 4:00, recovering by morning."""
    return 0.06 + 0.05 * _gaussian_bump(minutes, 1380, 180) + 0.04 * _gaussian_bump(
        minutes, 0, 120
    )


def _weekday_shape(archetype: Archetype, minutes: np.ndarray) -> np.ndarray:
    """Relative demand over a weekday for one archetype (unit mean scale)."""
    base = _base_night_profile(minutes)
    if archetype is Archetype.RESIDENTIAL:
        # Big morning outflow, moderate evening return.
        return base + 1.5 * _gaussian_bump(minutes, 8 * 60, 55) + 0.7 * _gaussian_bump(
            minutes, 19 * 60, 80
        ) + 0.25 * _gaussian_bump(minutes, 13 * 60, 150)
    if archetype is Archetype.BUSINESS:
        # Commute peaks both ways plus lunchtime activity.
        return base + 0.9 * _gaussian_bump(minutes, 8.5 * 60, 50) + 1.5 * _gaussian_bump(
            minutes, 19 * 60, 65
        ) + 0.5 * _gaussian_bump(minutes, 12.5 * 60, 70)
    if archetype is Archetype.ENTERTAINMENT:
        # Quiet weekdays with a mild evening bump.
        return base + 0.35 * _gaussian_bump(minutes, 21 * 60, 110)
    if archetype is Archetype.TRANSPORT_HUB:
        # Sustained daytime demand with shoulders at travel times.
        return base + 0.8 * _gaussian_bump(minutes, 9 * 60, 150) + 0.9 * _gaussian_bump(
            minutes, 17.5 * 60, 170
        ) + 0.4 * _gaussian_bump(minutes, 13 * 60, 200)
    if archetype is Archetype.SUBURBAN:
        return base + 0.45 * _gaussian_bump(minutes, 7.5 * 60, 60) + 0.35 * _gaussian_bump(
            minutes, 18.5 * 60, 90
        )
    # MIXED: a blend of residential and business.
    return base + 0.8 * _gaussian_bump(minutes, 8 * 60, 60) + 0.9 * _gaussian_bump(
        minutes, 19 * 60, 80
    ) + 0.35 * _gaussian_bump(minutes, 12.5 * 60, 90)


def _weekend_shape(archetype: Archetype, minutes: np.ndarray) -> np.ndarray:
    """Relative demand over a weekend day for one archetype."""
    base = _base_night_profile(minutes)
    if archetype is Archetype.RESIDENTIAL:
        # Late start, broad afternoon activity, no commute spikes.
        return base + 0.55 * _gaussian_bump(minutes, 11 * 60, 140) + 0.5 * _gaussian_bump(
            minutes, 16 * 60, 160
        )
    if archetype is Archetype.BUSINESS:
        # Offices are closed; weak daytime demand only.
        return base + 0.25 * _gaussian_bump(minutes, 13 * 60, 200)
    if archetype is Archetype.ENTERTAINMENT:
        # The paper's Fig. 1(a): demand surges on weekends.
        return base + 1.2 * _gaussian_bump(minutes, 14 * 60, 150) + 1.6 * _gaussian_bump(
            minutes, 21 * 60, 120
        )
    if archetype is Archetype.TRANSPORT_HUB:
        return base + 0.9 * _gaussian_bump(minutes, 10.5 * 60, 180) + 0.8 * _gaussian_bump(
            minutes, 16.5 * 60, 200
        )
    if archetype is Archetype.SUBURBAN:
        return base + 0.35 * _gaussian_bump(minutes, 11.5 * 60, 170) + 0.3 * _gaussian_bump(
            minutes, 17 * 60, 160
        )
    return base + 0.55 * _gaussian_bump(minutes, 12 * 60, 160) + 0.6 * _gaussian_bump(
        minutes, 20 * 60, 130
    )


#: Relative weight of Saturday vs Sunday and of individual weekdays; Friday
#: evenings are busier, Sundays differ from Saturdays.
_DAY_OF_WEEK_SCALE = np.array([1.00, 0.98, 0.99, 1.01, 1.08, 1.05, 0.95])


@dataclass
class DemandModel:
    """Per-minute Poisson intensity of new ride requests for each area-day.

    Parameters
    ----------
    base_rate:
        Citywide average new-request rate per minute for an area with
        popularity 1.0 at the busiest time of day.
    weather_coupling:
        0 disables the weather effect; 1 applies the full
        :data:`repro.city.weather.DEMAND_BOOST` multipliers.
    """

    base_rate: float = 3.0
    weather_coupling: float = 1.0
    day_noise_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if not 0.0 <= self.weather_coupling <= 1.0:
            raise ValueError("weather_coupling must be in [0, 1]")
        self._minutes = np.arange(MINUTES_PER_DAY, dtype=float)
        self._weekday_shapes = {
            arch: _weekday_shape(arch, self._minutes) for arch in Archetype
        }
        self._weekend_shapes = {
            arch: _weekend_shape(arch, self._minutes) for arch in Archetype
        }

    def intensity(
        self,
        area: Area,
        day: int,
        calendar: SimulationCalendar,
        weather: WeatherSeries,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Expected new requests per minute for ``area`` on ``day`` (len 1440)."""
        weekday = calendar.day_of_week(day)
        shapes = self._weekend_shapes if weekday >= 5 else self._weekday_shapes
        shape = shapes[area.archetype]

        multiplier = weather.demand_multiplier(day)
        if self.weather_coupling != 1.0:
            multiplier = 1.0 + self.weather_coupling * (multiplier - 1.0)

        day_level = rng.lognormal(mean=0.0, sigma=self.day_noise_sigma)
        return (
            self.base_rate
            * area.popularity
            * _DAY_OF_WEEK_SCALE[weekday]
            * day_level
            * shape
            * multiplier
        )

    def demand_curve(
        self, grid: CityGrid, area_id: int, weekend: bool
    ) -> np.ndarray:
        """Noise-free demand shape of an area (for plots like the paper's Fig. 1)."""
        area = grid[area_id]
        shapes = self._weekend_shapes if weekend else self._weekday_shapes
        return self.base_rate * area.popularity * shapes[area.archetype]
