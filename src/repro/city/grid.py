"""City grid: square areas with demand archetypes.

The paper divides the city into ``N`` non-overlapping square areas (58 areas
of 3km × 3km in the Didi dataset).  Each synthetic area gets an *archetype*
that drives its demand shape — the intro's motivating example contrasts an
entertainment area (quiet weekdays, busy Sundays) with a commuter area (twin
weekday rush-hour peaks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np


class Archetype(enum.Enum):
    """Demand-pattern family of an area."""

    RESIDENTIAL = "residential"
    BUSINESS = "business"
    ENTERTAINMENT = "entertainment"
    TRANSPORT_HUB = "transport_hub"
    SUBURBAN = "suburban"
    MIXED = "mixed"


#: Default mix of archetypes for a generated city (probabilities).
DEFAULT_ARCHETYPE_MIX: dict[Archetype, float] = {
    Archetype.RESIDENTIAL: 0.28,
    Archetype.BUSINESS: 0.22,
    Archetype.ENTERTAINMENT: 0.12,
    Archetype.TRANSPORT_HUB: 0.08,
    Archetype.SUBURBAN: 0.18,
    Archetype.MIXED: 0.12,
}


@dataclass(frozen=True)
class Area:
    """One square area of the city.

    Attributes
    ----------
    area_id:
        Dense integer id in ``[0, n_areas)`` — the paper's AreaID.
    archetype:
        Demand-pattern family.
    popularity:
        Multiplicative scale on the area's base demand (log-normal across
        the city; the paper's areas differ wildly in volume).
    n_road_segments:
        Number of road segments, used by the traffic condition quadruple.
    row, col:
        Position in the rectangular grid (for distance computations).
    """

    area_id: int
    archetype: Archetype
    popularity: float
    n_road_segments: int
    row: int
    col: int

    def distance_to(self, other: "Area") -> float:
        """Euclidean grid distance between area centres."""
        return float(np.hypot(self.row - other.row, self.col - other.col))


@dataclass
class CityGrid:
    """The full set of areas making up the city."""

    areas: List[Area] = field(default_factory=list)

    def __post_init__(self) -> None:
        for index, area in enumerate(self.areas):
            if area.area_id != index:
                raise ValueError(
                    f"area ids must be dense and ordered: "
                    f"position {index} holds id {area.area_id}"
                )

    @property
    def n_areas(self) -> int:
        return len(self.areas)

    def __len__(self) -> int:
        return len(self.areas)

    def __iter__(self) -> Iterator[Area]:
        return iter(self.areas)

    def __getitem__(self, area_id: int) -> Area:
        return self.areas[area_id]

    def by_archetype(self, archetype: Archetype) -> List[Area]:
        return [a for a in self.areas if a.archetype == archetype]

    def archetype_ids(self) -> np.ndarray:
        """Integer archetype code per area (ordered as ``list(Archetype)``)."""
        order = {arch: i for i, arch in enumerate(Archetype)}
        return np.array([order[a.archetype] for a in self.areas], dtype=np.int64)

    @classmethod
    def generate(
        cls,
        n_areas: int,
        rng: np.random.Generator,
        *,
        archetype_mix: Optional[dict[Archetype, float]] = None,
    ) -> "CityGrid":
        """Generate a city of ``n_areas`` areas on a near-square grid.

        Archetypes are drawn from ``archetype_mix`` but the generator
        guarantees at least one residential, one business and one
        entertainment area whenever ``n_areas >= 3``, since the paper's
        analyses (Fig. 1, Fig. 12, Fig. 15) rely on contrasting them.
        """
        if n_areas <= 0:
            raise ValueError(f"n_areas must be positive, got {n_areas}")
        mix = archetype_mix or DEFAULT_ARCHETYPE_MIX
        archetypes = list(mix)
        probs = np.array([mix[a] for a in archetypes], dtype=float)
        if (probs < 0).any() or probs.sum() <= 0:
            raise ValueError("archetype mix must have non-negative weights")
        probs = probs / probs.sum()

        draws = rng.choice(len(archetypes), size=n_areas, p=probs)
        assigned = [archetypes[i] for i in draws]
        _ensure_core_archetypes(assigned, rng)

        n_cols = int(np.ceil(np.sqrt(n_areas)))
        areas = []
        for area_id in range(n_areas):
            popularity = float(rng.lognormal(mean=0.0, sigma=0.55))
            areas.append(
                Area(
                    area_id=area_id,
                    archetype=assigned[area_id],
                    popularity=popularity,
                    n_road_segments=int(rng.integers(60, 180)),
                    row=area_id // n_cols,
                    col=area_id % n_cols,
                )
            )
        return cls(areas)


def _ensure_core_archetypes(assigned: List[Archetype], rng: np.random.Generator) -> None:
    """Overwrite random slots so the core archetypes are all present."""
    required: Sequence[Archetype] = (
        Archetype.RESIDENTIAL,
        Archetype.BUSINESS,
        Archetype.ENTERTAINMENT,
    )
    if len(assigned) < len(required):
        return
    for arch in required:
        if arch in assigned:
            continue
        # Only overwrite a slot that is not the sole holder of another
        # required archetype.
        candidates = [
            i
            for i, current in enumerate(assigned)
            if current not in required or assigned.count(current) > 1
        ]
        slot = int(rng.choice(candidates))
        assigned[slot] = arch
