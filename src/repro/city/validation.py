"""Dataset integrity validation.

Most useful right after :func:`repro.city.io.import_csv`: real order
exports routinely violate the invariants the featurizer relies on.  Each
check returns human-readable problem strings; an empty list means the
dataset is internally consistent.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .calendar import MINUTES_PER_DAY
from .dataset import CityDataset


def validate_dataset(dataset: CityDataset, *, max_problems: int = 20) -> List[str]:
    """Run every integrity check; returns at most ``max_problems`` findings."""
    problems: List[str] = []
    for check in (
        _check_order_ranges,
        _check_count_consistency,
        _check_session_consistency,
        _check_environment_shapes,
        _check_served_uniqueness,
    ):
        problems.extend(check(dataset))
        if len(problems) >= max_problems:
            return problems[:max_problems]
    return problems


def _check_order_ranges(dataset: CityDataset) -> List[str]:
    problems = []
    orders = dataset.orders
    if not len(orders):
        return ["dataset contains no orders"]
    if orders["ts"].min() < 0 or orders["ts"].max() >= MINUTES_PER_DAY:
        problems.append("order timeslots outside [0, 1440)")
    if orders["day"].min() < 0 or orders["day"].max() >= dataset.n_days:
        problems.append("order days outside the calendar")
    for field in ("origin", "dest"):
        if orders[field].min() < 0 or orders[field].max() >= dataset.n_areas:
            problems.append(f"order {field} outside [0, n_areas)")
    return problems


def _check_count_consistency(dataset: CityDataset) -> List[str]:
    """valid_counts/invalid_counts must re-aggregate the order stream."""
    problems = []
    total_valid = int(dataset.orders["valid"].sum())
    total_invalid = len(dataset.orders) - total_valid
    if int(dataset.valid_counts.sum()) != total_valid:
        problems.append(
            f"valid_counts sums to {int(dataset.valid_counts.sum())}, "
            f"orders contain {total_valid} valid orders"
        )
    if int(dataset.invalid_counts.sum()) != total_invalid:
        problems.append(
            f"invalid_counts sums to {int(dataset.invalid_counts.sum())}, "
            f"orders contain {total_invalid} invalid orders"
        )
    return problems


def _check_session_consistency(dataset: CityDataset) -> List[str]:
    problems = []
    sessions = dataset.sessions
    if not len(sessions):
        return ["dataset contains no sessions"]
    if int(sessions["n_calls"].sum()) != len(dataset.orders):
        problems.append(
            "session call counts do not sum to the number of orders"
        )
    if (sessions["last_ts"] < sessions["first_ts"]).any():
        problems.append("session with last_ts before first_ts")
    pids, counts = np.unique(sessions["pid"], return_counts=True)
    if (counts > 1).any():
        problems.append(f"{int((counts > 1).sum())} duplicate session pids")
    return problems


def _check_environment_shapes(dataset: CityDataset) -> List[str]:
    problems = []
    if dataset.weather.n_days != dataset.n_days:
        problems.append(
            f"weather covers {dataset.weather.n_days} days, calendar has "
            f"{dataset.n_days}"
        )
    traffic = dataset.traffic
    if traffic.n_areas != dataset.n_areas or traffic.n_days != dataset.n_days:
        problems.append("traffic dimensions do not match the city")
    if (traffic.level_counts < 0).any():
        problems.append("negative traffic level counts")
    return problems


def _check_served_uniqueness(dataset: CityDataset) -> List[str]:
    """A passenger stops calling once served: at most one valid order per pid."""
    valid_pids = dataset.orders["pid"][dataset.orders["valid"]]
    unique = len(np.unique(valid_pids))
    if unique != len(valid_pids):
        return [
            f"{len(valid_pids) - unique} passengers have multiple valid orders"
        ]
    return []
