"""CSV import/export — bring your own order data.

The simulator stands in for the proprietary Didi dataset, but the rest of
the library (features, models, evaluation) only needs a
:class:`CityDataset`.  This module lets users build one from plain CSV
files of *real* car-hailing records:

- ``orders.csv`` — ``day,ts,pid,origin,dest,valid`` (one row per request);
- ``weather.csv`` — ``day,ts,type,temperature,pm25`` (citywide);
- ``traffic.csv`` — ``area,day,ts,level1,level2,level3,level4``;
- ``areas.csv`` (optional) — ``area_id,archetype,popularity,
  n_road_segments,row,col``; defaults are synthesised when absent.

Sessions (the last-call / waiting-time signals) are derived from the order
stream by grouping per passenger, so only orders are mandatory beyond the
environment files.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Optional

import numpy as np

from ..exceptions import DataError
from .calendar import MINUTES_PER_DAY, SimulationCalendar
from .dataset import CityDataset
from .grid import Archetype, Area, CityGrid
from .orders import ORDER_DTYPE, SESSION_DTYPE
from .traffic import N_CONGESTION_LEVELS, TrafficSeries
from .weather import WeatherSeries


def export_csv(dataset: CityDataset, directory: str | os.PathLike) -> None:
    """Write a dataset as the CSV bundle described in the module docstring.

    Note: ``traffic.csv`` has one row per (area, day, minute) and grows
    large for big cities.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "orders.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["day", "ts", "pid", "origin", "dest", "valid"])
        for order in dataset.orders:
            writer.writerow(
                [
                    int(order["day"]), int(order["ts"]), int(order["pid"]),
                    int(order["origin"]), int(order["dest"]), int(order["valid"]),
                ]
            )

    with open(directory / "weather.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["day", "ts", "type", "temperature", "pm25"])
        weather = dataset.weather
        for day in range(dataset.n_days):
            for ts in range(MINUTES_PER_DAY):
                writer.writerow(
                    [
                        day, ts, int(weather.types[day, ts]),
                        f"{float(weather.temperature[day, ts]):.3f}",
                        f"{float(weather.pm25[day, ts]):.3f}",
                    ]
                )

    with open(directory / "traffic.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["area", "day", "ts", "level1", "level2", "level3", "level4"])
        counts = dataset.traffic.level_counts
        for area in range(dataset.n_areas):
            for day in range(dataset.n_days):
                for ts in range(MINUTES_PER_DAY):
                    quad = counts[area, day, ts]
                    writer.writerow([area, day, ts] + [int(v) for v in quad])

    with open(directory / "areas.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["area_id", "archetype", "popularity", "n_road_segments", "row", "col"]
        )
        for area in dataset.grid:
            writer.writerow(
                [
                    area.area_id, area.archetype.value,
                    f"{area.popularity:.6f}", area.n_road_segments,
                    area.row, area.col,
                ]
            )

    with open(directory / "meta.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["n_days", "start_weekday", "n_areas"])
        writer.writerow(
            [dataset.n_days, dataset.calendar.start_weekday, dataset.n_areas]
        )


def import_csv(
    directory: str | os.PathLike,
    *,
    n_days: Optional[int] = None,
    start_weekday: Optional[int] = None,
    n_areas: Optional[int] = None,
) -> CityDataset:
    """Build a :class:`CityDataset` from the CSV bundle.

    Dimension arguments override (or replace a missing) ``meta.csv``.
    """
    directory = Path(directory)
    n_days, start_weekday, n_areas = _resolve_meta(
        directory, n_days, start_weekday, n_areas
    )

    orders = _read_orders(directory / "orders.csv", n_days, n_areas)
    sessions = _derive_sessions(orders)
    weather = _read_weather(directory / "weather.csv", n_days)
    traffic = _read_traffic(directory / "traffic.csv", n_areas, n_days)
    grid = _read_areas(directory / "areas.csv", n_areas)

    valid_counts = np.zeros((n_areas, n_days, MINUTES_PER_DAY), dtype=np.int32)
    invalid_counts = np.zeros_like(valid_counts)
    for validity, target in ((True, valid_counts), (False, invalid_counts)):
        subset = orders[orders["valid"] == validity]
        np.add.at(
            target,
            (
                subset["origin"].astype(np.int64),
                subset["day"].astype(np.int64),
                subset["ts"].astype(np.int64),
            ),
            1,
        )

    return CityDataset(
        grid=grid,
        calendar=SimulationCalendar(n_days=n_days, start_weekday=start_weekday),
        orders=orders,
        sessions=sessions,
        weather=weather,
        traffic=traffic,
        valid_counts=valid_counts,
        invalid_counts=invalid_counts,
    )


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------


def _resolve_meta(directory: Path, n_days, start_weekday, n_areas):
    meta_path = directory / "meta.csv"
    if meta_path.exists():
        with open(meta_path, newline="") as handle:
            row = list(csv.DictReader(handle))[0]
        n_days = n_days if n_days is not None else int(row["n_days"])
        start_weekday = (
            start_weekday if start_weekday is not None else int(row["start_weekday"])
        )
        n_areas = n_areas if n_areas is not None else int(row["n_areas"])
    if n_days is None or start_weekday is None or n_areas is None:
        raise DataError(
            "meta.csv missing: pass n_days, start_weekday and n_areas explicitly"
        )
    return n_days, start_weekday, n_areas


def _read_orders(path: Path, n_days: int, n_areas: int) -> np.ndarray:
    if not path.exists():
        raise DataError(f"orders file not found: {path}")
    rows = []
    with open(path, newline="") as handle:
        for record in csv.DictReader(handle):
            rows.append(
                (
                    int(record["day"]), int(record["ts"]), int(record["pid"]),
                    int(record["origin"]), int(record["dest"]),
                    bool(int(record["valid"])),
                )
            )
    orders = np.array(rows, dtype=ORDER_DTYPE)
    if len(orders):
        if orders["day"].min() < 0 or orders["day"].max() >= n_days:
            raise DataError("order day outside [0, n_days)")
        if orders["origin"].min() < 0 or orders["origin"].max() >= n_areas:
            raise DataError("order origin outside [0, n_areas)")
        if orders["ts"].min() < 0 or orders["ts"].max() >= MINUTES_PER_DAY:
            raise DataError("order ts outside the day")
    # CityDataset requires (origin, day, ts) ordering.
    orders = orders[np.lexsort((orders["ts"], orders["day"], orders["origin"]))]
    return orders


def _derive_sessions(orders: np.ndarray) -> np.ndarray:
    """Group orders per (pid, area, day) into session summaries."""
    if not len(orders):
        return np.empty(0, dtype=SESSION_DTYPE)
    keys = np.stack(
        [
            orders["origin"].astype(np.int64),
            orders["day"].astype(np.int64),
            orders["pid"].astype(np.int64),
        ]
    )
    sorter = np.lexsort((orders["ts"], keys[2], keys[1], keys[0]))
    ordered = orders[sorter]
    group_key = (
        ordered["origin"].astype(np.int64) * 10**12
        + ordered["day"].astype(np.int64) * 10**9
        + ordered["pid"].astype(np.int64)
    )
    boundaries = np.flatnonzero(np.diff(group_key)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(ordered)]])

    sessions = np.empty(len(starts), dtype=SESSION_DTYPE)
    for i, (start, stop) in enumerate(zip(starts, stops)):
        chunk = ordered[start:stop]
        sessions[i] = (
            chunk["pid"][0],
            chunk["origin"][0],
            chunk["day"][0],
            chunk["ts"].min(),
            chunk["ts"].max(),
            len(chunk),
            bool(chunk["valid"].any()),
        )
    sorter = np.lexsort(
        (sessions["first_ts"], sessions["day"], sessions["area"])
    )
    return sessions[sorter]


def _read_weather(path: Path, n_days: int) -> WeatherSeries:
    if not path.exists():
        raise DataError(f"weather file not found: {path}")
    types = np.zeros((n_days, MINUTES_PER_DAY), dtype=np.int8)
    temperature = np.zeros((n_days, MINUTES_PER_DAY), dtype=np.float32)
    pm25 = np.zeros((n_days, MINUTES_PER_DAY), dtype=np.float32)
    with open(path, newline="") as handle:
        for record in csv.DictReader(handle):
            day, ts = int(record["day"]), int(record["ts"])
            types[day, ts] = int(record["type"])
            temperature[day, ts] = float(record["temperature"])
            pm25[day, ts] = float(record["pm25"])
    return WeatherSeries(types=types, temperature=temperature, pm25=pm25)


def _read_traffic(path: Path, n_areas: int, n_days: int) -> TrafficSeries:
    if not path.exists():
        raise DataError(f"traffic file not found: {path}")
    counts = np.zeros(
        (n_areas, n_days, MINUTES_PER_DAY, N_CONGESTION_LEVELS), dtype=np.int16
    )
    with open(path, newline="") as handle:
        for record in csv.DictReader(handle):
            area, day, ts = int(record["area"]), int(record["day"]), int(record["ts"])
            for level in range(N_CONGESTION_LEVELS):
                counts[area, day, ts, level] = int(record[f"level{level + 1}"])
    return TrafficSeries(level_counts=counts)


def _read_areas(path: Path, n_areas: int) -> CityGrid:
    if not path.exists():
        # Synthesize neutral metadata: real deployments often lack it.
        n_cols = int(np.ceil(np.sqrt(n_areas)))
        return CityGrid(
            [
                Area(i, Archetype.MIXED, 1.0, 100, i // n_cols, i % n_cols)
                for i in range(n_areas)
            ]
        )
    areas = []
    with open(path, newline="") as handle:
        for record in csv.DictReader(handle):
            areas.append(
                Area(
                    area_id=int(record["area_id"]),
                    archetype=Archetype(record["archetype"]),
                    popularity=float(record["popularity"]),
                    n_road_segments=int(record["n_road_segments"]),
                    row=int(record["row"]),
                    col=int(record["col"]),
                )
            )
    areas.sort(key=lambda a: a.area_id)
    if len(areas) != n_areas:
        raise DataError(f"areas.csv has {len(areas)} areas, meta says {n_areas}")
    return CityGrid(areas)
