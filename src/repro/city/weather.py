"""Citywide weather simulation.

Definition 3 of the paper: the weather condition at a timeslot is a tuple
``(wc.type, wc.temp, wc.pm)`` — a categorical weather type (vocabulary size
10 per Table I), the temperature and the PM2.5 reading.  All areas share the
same weather at the same timeslot.

We simulate the type with a first-order Markov chain stepped every 30
minutes, temperature as seasonal base + diurnal sinusoid + type offset +
AR(1) noise, and PM2.5 as a mean-reverting positive AR(1) process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calendar import MINUTES_PER_DAY

#: Weather type vocabulary (10 types, matching the paper's Table I).
WEATHER_TYPES = (
    "sunny",
    "cloudy",
    "overcast",
    "light_rain",
    "moderate_rain",
    "heavy_rain",
    "storm",
    "fog",
    "haze",
    "snow",
)

N_WEATHER_TYPES = len(WEATHER_TYPES)

#: How strongly each weather type raises car-hailing demand (people avoid
#: walking / cycling in bad weather) and lowers effective driver supply.
DEMAND_BOOST = np.array(
    [1.00, 1.02, 1.05, 1.20, 1.30, 1.45, 1.55, 1.15, 1.08, 1.50]
)
SUPPLY_PENALTY = np.array(
    [1.00, 1.00, 0.99, 0.93, 0.89, 0.82, 0.75, 0.90, 0.96, 0.78]
)

#: Mean temperature offset (°C) of each weather type.
_TYPE_TEMP_OFFSET = np.array(
    [2.0, 0.5, -0.5, -1.5, -2.0, -2.5, -3.0, -1.0, 0.0, -8.0]
)

_STEP_MINUTES = 30
_STEPS_PER_DAY = MINUTES_PER_DAY // _STEP_MINUTES


def _transition_matrix() -> np.ndarray:
    """Sticky Markov transition matrix over the 10 weather types.

    Each type strongly prefers to persist; transitions favour
    meteorologically adjacent states (sunny↔cloudy↔overcast↔rain grades).
    """
    base = np.full((N_WEATHER_TYPES, N_WEATHER_TYPES), 0.002)
    neighbours = {
        0: [1],             # sunny -> cloudy
        1: [0, 2, 8],       # cloudy
        2: [1, 3, 7],       # overcast
        3: [2, 4],          # light rain
        4: [3, 5],          # moderate rain
        5: [4, 6],          # heavy rain
        6: [5],             # storm
        7: [2, 8],          # fog
        8: [1, 7],          # haze
        9: [2],             # snow
    }
    for state, nexts in neighbours.items():
        base[state, state] = 0.86
        for nxt in nexts:
            base[state, nxt] += 0.10 / len(nexts)
    return base / base.sum(axis=1, keepdims=True)


@dataclass(frozen=True)
class WeatherSeries:
    """Minute-resolution weather for the whole simulation.

    Attributes
    ----------
    types:
        ``(n_days, 1440)`` int8 array of weather-type codes.
    temperature:
        ``(n_days, 1440)`` float32 array (°C).
    pm25:
        ``(n_days, 1440)`` float32 array (µg/m³, non-negative).
    """

    types: np.ndarray
    temperature: np.ndarray
    pm25: np.ndarray

    def __post_init__(self) -> None:
        if not (self.types.shape == self.temperature.shape == self.pm25.shape):
            raise ValueError("weather arrays must share one (n_days, 1440) shape")
        if self.types.ndim != 2 or self.types.shape[1] != MINUTES_PER_DAY:
            raise ValueError(
                f"weather arrays must be (n_days, {MINUTES_PER_DAY}), "
                f"got {self.types.shape}"
            )

    @property
    def n_days(self) -> int:
        return self.types.shape[0]

    def at(self, day: int, timeslot: int) -> tuple[int, float, float]:
        """The ``(type, temperature, pm2.5)`` tuple at one timeslot."""
        return (
            int(self.types[day, timeslot]),
            float(self.temperature[day, timeslot]),
            float(self.pm25[day, timeslot]),
        )

    def demand_multiplier(self, day: int) -> np.ndarray:
        """Per-minute demand boost implied by the day's weather."""
        return DEMAND_BOOST[self.types[day]]

    def supply_multiplier(self, day: int) -> np.ndarray:
        """Per-minute effective-supply multiplier implied by the weather."""
        return SUPPLY_PENALTY[self.types[day]]


class WeatherSimulator:
    """Generates a :class:`WeatherSeries` with a Markov type chain."""

    def __init__(
        self,
        *,
        base_temperature: float = 16.0,
        diurnal_amplitude: float = 5.0,
        pm25_mean: float = 60.0,
    ) -> None:
        self.base_temperature = base_temperature
        self.diurnal_amplitude = diurnal_amplitude
        self.pm25_mean = pm25_mean
        self._transitions = _transition_matrix()

    def simulate(self, n_days: int, rng: np.random.Generator) -> WeatherSeries:
        if n_days <= 0:
            raise ValueError(f"n_days must be positive, got {n_days}")
        n_steps = n_days * _STEPS_PER_DAY
        states = np.empty(n_steps, dtype=np.int8)
        states[0] = rng.integers(0, 3)  # start in fair weather
        cumulative = self._transitions.cumsum(axis=1)
        uniforms = rng.random(n_steps)
        for step in range(1, n_steps):
            row = cumulative[states[step - 1]]
            states[step] = np.searchsorted(row, uniforms[step])
        types = np.repeat(states, _STEP_MINUTES).reshape(n_days, MINUTES_PER_DAY)

        minutes = np.arange(MINUTES_PER_DAY)
        diurnal = -np.cos(2.0 * np.pi * (minutes - 240) / MINUTES_PER_DAY)
        season = rng.normal(0.0, 1.5, size=n_days).cumsum() * 0.2
        noise = _ar1(n_days * MINUTES_PER_DAY, rho=0.999, sigma=0.02, rng=rng)
        temperature = (
            self.base_temperature
            + season[:, None]
            + self.diurnal_amplitude * diurnal[None, :]
            + _TYPE_TEMP_OFFSET[types]
            + noise.reshape(n_days, MINUTES_PER_DAY)
        ).astype(np.float32)

        pm_noise = _ar1(n_days * MINUTES_PER_DAY, rho=0.9995, sigma=0.3, rng=rng)
        pm25 = np.maximum(
            self.pm25_mean * np.exp(pm_noise.reshape(n_days, MINUTES_PER_DAY) * 0.08),
            1.0,
        ).astype(np.float32)

        return WeatherSeries(types=types, temperature=temperature, pm25=pm25)


def _ar1(n: int, *, rho: float, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Mean-zero AR(1) series of length ``n``."""
    shocks = rng.normal(0.0, sigma, size=n)
    out = np.empty(n)
    out[0] = shocks[0]
    for i in range(1, n):
        out[i] = rho * out[i - 1] + shocks[i]
    return out
