"""Simulation calendar: days, weekdays and minute-resolution timeslots.

The paper divides each day into 1440 one-minute timeslots and identifies a
day by its index ``d`` and its day of week (Monday = 0, …, Sunday = 6).
"""

from __future__ import annotations

from dataclasses import dataclass

MINUTES_PER_DAY = 1440
DAYS_PER_WEEK = 7

WEEKDAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


@dataclass(frozen=True)
class SimulationCalendar:
    """Maps simulated day indices to days of the week.

    Parameters
    ----------
    n_days:
        Total number of simulated days.
    start_weekday:
        Day of week of day 0 (0 = Monday … 6 = Sunday).
    """

    n_days: int
    start_weekday: int = 0

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ValueError(f"n_days must be positive, got {self.n_days}")
        if not 0 <= self.start_weekday < DAYS_PER_WEEK:
            raise ValueError(
                f"start_weekday must be in [0, 7), got {self.start_weekday}"
            )

    def day_of_week(self, day: int) -> int:
        """WeekID of the given day (0 = Monday … 6 = Sunday)."""
        self._check_day(day)
        return (self.start_weekday + day) % DAYS_PER_WEEK

    def weekday_name(self, day: int) -> str:
        return WEEKDAY_NAMES[self.day_of_week(day)]

    def is_weekend(self, day: int) -> bool:
        return self.day_of_week(day) >= 5

    def days_with_weekday(self, weekday: int, *, before: int | None = None) -> list[int]:
        """All day indices that fall on ``weekday``, optionally before a day.

        Used to collect "all the Mondays prior to the d-th day" when building
        the historical supply-demand averages (Section V-A).
        """
        if not 0 <= weekday < DAYS_PER_WEEK:
            raise ValueError(f"weekday must be in [0, 7), got {weekday}")
        limit = self.n_days if before is None else min(before, self.n_days)
        return [d for d in range(limit) if self.day_of_week(d) == weekday]

    def _check_day(self, day: int) -> None:
        if not 0 <= day < self.n_days:
            raise ValueError(f"day {day} outside [0, {self.n_days})")


def format_timeslot(timeslot: int) -> str:
    """Render a minute-of-day timeslot as ``HH:MM``."""
    if not 0 <= timeslot < MINUTES_PER_DAY:
        raise ValueError(f"timeslot {timeslot} outside [0, {MINUTES_PER_DAY})")
    return f"{timeslot // 60:02d}:{timeslot % 60:02d}"


def parse_timeslot(text: str) -> int:
    """Parse ``HH:MM`` into a minute-of-day timeslot."""
    hours, _, minutes = text.partition(":")
    timeslot = int(hours) * 60 + int(minutes)
    if not 0 <= timeslot < MINUTES_PER_DAY:
        raise ValueError(f"time {text!r} outside the day")
    return timeslot
