"""Driver supply model.

For each (area, day) the model yields a per-minute *service capacity*: how
many ride requests the drivers present in the area can answer that minute.
Requests beyond the capacity go unanswered — they become the paper's
*invalid orders*, and the count of invalid orders over ``[t, t+10)`` is the
supply-demand gap the models predict.

Stylised facts built in:

- supply roughly tracks demand (fleet positioning) but *lags* the sharp
  peaks, so rush hours and event surges open gaps;
- bad weather lowers effective supply (fewer active drivers, slower trips)
  at exactly the times it raises demand;
- congestion slows drivers, shrinking per-minute capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calendar import MINUTES_PER_DAY
from .grid import Area
from .weather import WeatherSeries


@dataclass
class SupplyModel:
    """Per-minute service capacity for each area-day.

    Parameters
    ----------
    headroom:
        Ratio of mean capacity to mean demand.  >1 keeps most off-peak
        minutes balanced (the Didi dataset has gap = 0 for ~48% of test
        items) while peaks still exceed capacity.
    lag_minutes:
        How far supply trails demand moves; larger lags mean bigger gaps
        around sharp demand changes.
    smoothing_minutes:
        Width of the moving average applied to demand when deriving the
        supply target — supply cannot follow minute-level wiggles.
    weather_coupling / congestion_coupling:
        Set to 0 to decouple supply from the environment (useful in
        ablations); 1 gives the full effect.
    """

    headroom: float = 1.25
    lag_minutes: int = 25
    smoothing_minutes: int = 45
    weather_coupling: float = 1.0
    congestion_coupling: float = 1.0
    noise_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.headroom <= 0:
            raise ValueError(f"headroom must be positive, got {self.headroom}")
        if self.lag_minutes < 0 or self.smoothing_minutes < 1:
            raise ValueError("lag_minutes must be >= 0 and smoothing_minutes >= 1")
        if not 0.0 <= self.weather_coupling <= 1.0:
            raise ValueError("weather_coupling must be in [0, 1]")
        if not 0.0 <= self.congestion_coupling <= 1.0:
            raise ValueError("congestion_coupling must be in [0, 1]")

    def capacity(
        self,
        area: Area,
        day: int,
        demand_intensity: np.ndarray,
        weather: WeatherSeries,
        congestion_index: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Integer service capacity per minute (length 1440) for one area-day."""
        if demand_intensity.shape != (MINUTES_PER_DAY,):
            raise ValueError(
                f"demand_intensity must have shape ({MINUTES_PER_DAY},), "
                f"got {demand_intensity.shape}"
            )
        if congestion_index.shape != (MINUTES_PER_DAY,):
            raise ValueError(
                f"congestion_index must have shape ({MINUTES_PER_DAY},), "
                f"got {congestion_index.shape}"
            )

        target = self._lagged_smoothed(demand_intensity)
        rate = self.headroom * target

        weather_mult = weather.supply_multiplier(day)
        if self.weather_coupling != 1.0:
            weather_mult = 1.0 + self.weather_coupling * (weather_mult - 1.0)
        rate = rate * weather_mult

        congestion_mult = 1.0 - 0.35 * self.congestion_coupling * congestion_index
        rate = rate * congestion_mult

        rate = rate * rng.lognormal(0.0, self.noise_sigma, size=MINUTES_PER_DAY)
        return rng.poisson(np.maximum(rate, 0.0)).astype(np.int64)

    def _lagged_smoothed(self, demand: np.ndarray) -> np.ndarray:
        """Demand smoothed over a window and shifted ``lag_minutes`` later."""
        kernel = np.ones(self.smoothing_minutes) / self.smoothing_minutes
        padded = np.concatenate([demand[-self.smoothing_minutes:], demand])
        smoothed = np.convolve(padded, kernel, mode="same")[
            self.smoothing_minutes : self.smoothing_minutes + MINUTES_PER_DAY
        ]
        if self.lag_minutes:
            smoothed = np.roll(smoothed, self.lag_minutes)
        return smoothed
