"""Baseline models the paper compares DeepSD against (Section VI-C).

All implemented from scratch on numpy: the empirical average, LASSO
(coordinate descent), gradient-boosted trees and a random forest (both on
histogram-binned CART trees).
"""

from .average import EmpiricalAverage
from .base import Regressor
from .binning import Binner
from .forest import RandomForestRegressor
from .gbdt import GradientBoostingRegressor
from .linear import LassoRegressor, soft_threshold
from .tree import DecisionTreeRegressor

__all__ = [
    "Regressor",
    "EmpiricalAverage",
    "LassoRegressor",
    "soft_threshold",
    "Binner",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
]
