"""Gradient-boosted decision trees for squared loss.

The paper's strongest classical baseline (via XGBoost): an additive
ensemble where each tree fits the residuals of the current prediction,
scaled by a learning rate.  With squared loss the negative gradient *is*
the residual, so the algorithm is plain residual boosting.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import Regressor
from .binning import Binner
from .tree import DecisionTreeRegressor


class GradientBoostingRegressor(Regressor):
    """Least-squares gradient boosting over histogram trees.

    Parameters
    ----------
    n_estimators / learning_rate / max_depth:
        The usual boosting knobs (paper tunes them by grid search).
    subsample:
        Fraction of rows drawn (without replacement) per tree; 1.0 uses
        all rows (stochastic gradient boosting when < 1).
    min_samples_leaf, n_bins:
        Passed to the base trees.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        subsample: float = 1.0,
        min_samples_leaf: int = 5,
        n_bins: int = 32,
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self._binner: Optional[Binner] = None
        self._base_prediction = 0.0
        self.train_scores_: List[float] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        x, y = self._validate_xy(features, targets)
        rng = np.random.default_rng(self.seed)
        self._binner = Binner(self.n_bins)
        codes = self._binner.fit_transform(x)

        self._base_prediction = float(y.mean())
        predictions = np.full(len(y), self._base_prediction)
        self._trees = []
        self.train_scores_ = []

        n = len(y)
        for _ in range(self.n_estimators):
            residuals = y - predictions
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                rows = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=rng,
            )
            tree.fit_binned(codes[rows], residuals[rows])
            predictions += self.learning_rate * tree.predict_binned(codes)
            self._trees.append(tree)
            self.train_scores_.append(float(np.sqrt(((y - predictions) ** 2).mean())))

        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        codes = self._binner.transform(np.asarray(features, dtype=np.float64))
        out = np.full(len(codes), self._base_prediction)
        for tree in self._trees:
            out += self.learning_rate * tree.predict_binned(codes)
        return out

    @property
    def n_trees(self) -> int:
        return len(self._trees)
