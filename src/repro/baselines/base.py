"""Common regressor interface for the baseline models."""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError


class Regressor:
    """fit/predict interface shared by all baselines."""

    _fitted = False

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Regressor":
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")

    @staticmethod
    def _validate_xy(features: np.ndarray, targets: np.ndarray):
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if targets.shape != (features.shape[0],):
            raise ValueError(
                f"targets must be ({features.shape[0]},), got {targets.shape}"
            )
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        return features, targets
