"""Random forest regressor.

Bagged histogram trees with per-node feature subsampling (the classic
Breiman recipe): each tree sees a bootstrap sample of the rows and
considers a random subset of features at every split.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import Regressor
from .binning import Binner
from .tree import DecisionTreeRegressor


class RandomForestRegressor(Regressor):
    """Bootstrap-aggregated regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_leaf, n_bins:
        Base-tree knobs (forest trees are typically grown deep).
    max_features:
        Features considered per split; ``"sqrt"`` (default), ``"all"``, or
        an integer.
    bootstrap:
        Sample rows with replacement per tree.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: str | int = "sqrt",
        bootstrap: bool = True,
        n_bins: int = 32,
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.n_bins = n_bins
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self._binner: Optional[Binner] = None

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "all":
            return None
        if isinstance(self.max_features, int) and self.max_features > 0:
            return min(self.max_features, n_features)
        raise ValueError(f"invalid max_features: {self.max_features!r}")

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        x, y = self._validate_xy(features, targets)
        rng = np.random.default_rng(self.seed)
        self._binner = Binner(self.n_bins)
        codes = self._binner.fit_transform(x)
        max_features = self._resolve_max_features(x.shape[1])

        n = len(y)
        self._trees = []
        for _ in range(self.n_estimators):
            rows = rng.choice(n, size=n, replace=True) if self.bootstrap else np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            tree.fit_binned(codes[rows], y[rows])
            self._trees.append(tree)

        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        codes = self._binner.transform(np.asarray(features, dtype=np.float64))
        total = np.zeros(len(codes))
        for tree in self._trees:
            total += tree.predict_binned(codes)
        return total / len(self._trees)

    @property
    def n_trees(self) -> int:
        return len(self._trees)
