"""Empirical average baseline (Section VI-C).

"For a specific t in area a, we simply use the empirical average gap
``(1/|D_train|) Σ_d gap^{d,t}_a`` as the prediction" — the classic
historical-mean predictor every learned model must beat.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..exceptions import NotFittedError
from ..features.builder import ExampleSet


class EmpiricalAverage:
    """Per-(area, timeslot) mean gap over the training days.

    Unseen (area, timeslot) pairs fall back to the area mean, then to the
    global mean.
    """

    def __init__(self) -> None:
        self._pair_means: Dict[Tuple[int, int], float] = {}
        self._area_means: Dict[int, float] = {}
        self._global_mean = 0.0
        self._fitted = False

    def fit(self, train_set: ExampleSet) -> "EmpiricalAverage":
        areas = train_set.area_ids
        times = train_set.time_ids
        gaps = train_set.gaps.astype(np.float64)

        keys = areas * 10_000 + times
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_gaps = gaps[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk_keys, chunk_gaps in zip(
            np.split(sorted_keys, boundaries), np.split(sorted_gaps, boundaries)
        ):
            key = int(chunk_keys[0])
            self._pair_means[(key // 10_000, key % 10_000)] = float(chunk_gaps.mean())

        for area in np.unique(areas):
            self._area_means[int(area)] = float(gaps[areas == area].mean())
        self._global_mean = float(gaps.mean())
        self._fitted = True
        return self

    def predict(self, example_set: ExampleSet) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("EmpiricalAverage is not fitted yet")
        out = np.empty(example_set.n_items)
        for i, (area, time) in enumerate(
            zip(example_set.area_ids, example_set.time_ids)
        ):
            key = (int(area), int(time))
            if key in self._pair_means:
                out[i] = self._pair_means[key]
            else:
                out[i] = self._area_means.get(int(area), self._global_mean)
        return out
