"""Histogram-based CART regression tree.

Splits minimise squared error (equivalently maximise
``sum_L²/n_L + sum_R²/n_R``) over binned features.  Per node, target sums
and counts are accumulated into one flat (feature × bin) histogram with a
single ``bincount`` pass, then cumulative sums give every candidate split's
statistics at once.

The tree is the base learner for both the GBDT and the random forest; both
pass pre-binned codes so the (one-off) binning cost is shared across trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .base import Regressor
from .binning import Binner


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    bin_threshold: int = 0       # go left when code <= bin_threshold
    left: int = -1
    right: int = -1
    value: float = 0.0


class DecisionTreeRegressor(Regressor):
    """CART regression tree on quantile-binned features.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split / min_samples_leaf:
        Pre-pruning thresholds.
    n_bins:
        Histogram resolution when the tree bins its own input.
    max_features:
        If set, the number of candidate features drawn (without
        replacement) at every node — random-forest style.
    rng:
        Random generator used only when ``max_features`` is set.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        n_bins: int = 32,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("min_samples_leaf >= 1 and min_samples_split >= 2 required")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self._nodes: List[_Node] = []
        self._binner: Optional[Binner] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features, targets = self._validate_xy(features, targets)
        self._binner = Binner(self.n_bins)
        codes = self._binner.fit_transform(features)
        self.fit_binned(codes, targets)
        return self

    def fit_binned(self, codes: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Fit on pre-binned uint8 codes (used by GBDT / forest)."""
        codes = np.ascontiguousarray(codes)
        targets = np.asarray(targets, dtype=np.float64)
        if codes.ndim != 2 or len(codes) != len(targets):
            raise ValueError("codes must be (n, F) aligned with targets")
        self._n_features = codes.shape[1]
        self._nodes = []
        self._grow(codes, targets, np.arange(len(targets)), depth=0)
        self._fitted = True
        return self

    def _grow(
        self,
        codes: np.ndarray,
        targets: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> int:
        node_id = len(self._nodes)
        node = _Node(value=float(targets[indices].mean()))
        self._nodes.append(node)

        if depth >= self.max_depth or len(indices) < self.min_samples_split:
            return node_id

        split = self._best_split(codes, targets, indices)
        if split is None:
            return node_id
        feature, bin_threshold = split

        go_left = codes[indices, feature] <= bin_threshold
        left_idx = indices[go_left]
        right_idx = indices[~go_left]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return node_id

        node.feature = feature
        node.bin_threshold = bin_threshold
        node.left = self._grow(codes, targets, left_idx, depth + 1)
        node.right = self._grow(codes, targets, right_idx, depth + 1)
        return node_id

    def _best_split(
        self, codes: np.ndarray, targets: np.ndarray, indices: np.ndarray
    ) -> Optional[tuple[int, int]]:
        """Best (feature, bin) split by SSE reduction, or None."""
        n_bins = 256  # uint8 codes; histograms sized by the dtype bound
        if self.max_features is not None and self.max_features < self._n_features:
            candidates = self._rng.choice(
                self._n_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(self._n_features)

        node_codes = codes[indices][:, candidates].astype(np.int64)
        node_targets = targets[indices]
        n, f = node_codes.shape

        flat = node_codes + np.arange(f)[None, :] * n_bins
        flat = flat.ravel()
        sums = np.bincount(
            flat, weights=np.repeat(node_targets, f), minlength=f * n_bins
        ).reshape(f, n_bins)
        counts = np.bincount(flat, minlength=f * n_bins).reshape(f, n_bins)

        left_sum = sums.cumsum(axis=1)
        left_count = counts.cumsum(axis=1)
        total_sum = left_sum[:, -1:]
        total_count = left_count[:, -1:]
        right_sum = total_sum - left_sum
        right_count = total_count - left_count

        valid = (left_count >= self.min_samples_leaf) & (
            right_count >= self.min_samples_leaf
        )
        if not valid.any():
            return None

        with np.errstate(divide="ignore", invalid="ignore"):
            score = np.where(
                valid,
                left_sum ** 2 / np.maximum(left_count, 1)
                + right_sum ** 2 / np.maximum(right_count, 1),
                -np.inf,
            )
        base_score = float(total_sum[0, 0] ** 2 / total_count[0, 0])
        best_flat = int(np.argmax(score))
        best_feature, best_bin = divmod(best_flat, n_bins)
        if score[best_feature, best_bin] <= base_score + 1e-12:
            return None
        return int(candidates[best_feature]), int(best_bin)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self._binner is None:
            raise ValueError(
                "tree was fitted on pre-binned codes; use predict_binned()"
            )
        return self.predict_binned(self._binner.transform(features))

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict from pre-binned codes."""
        self._check_fitted()
        codes = np.asarray(codes)
        out = np.empty(len(codes))
        # Route all rows level by level: vectorised double-pointer descent.
        node_of_row = np.zeros(len(codes), dtype=np.int64)
        active = np.arange(len(codes))
        while len(active):
            nodes = node_of_row[active]
            features = np.array([self._nodes[k].feature for k in nodes])
            is_leaf = features == -1
            leaf_rows = active[is_leaf]
            if len(leaf_rows):
                out[leaf_rows] = [self._nodes[k].value for k in node_of_row[leaf_rows]]
            active = active[~is_leaf]
            if not len(active):
                break
            nodes = node_of_row[active]
            features = features[~is_leaf]
            thresholds = np.array([self._nodes[k].bin_threshold for k in nodes])
            lefts = np.array([self._nodes[k].left for k in nodes])
            rights = np.array([self._nodes[k].right for k in nodes])
            go_left = codes[active, features] <= thresholds
            node_of_row[active] = np.where(go_left, lefts, rights)
        return out

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def node_depth(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.feature == -1:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(0)
