"""Quantile feature binning for the histogram-based tree learners.

Exact split search over continuous features is O(n log n) per feature per
node; binning features once to a small number of quantile buckets turns the
per-node cost into a vectorised histogram accumulation — the technique
behind LightGBM-style GBDT implementations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError


class Binner:
    """Maps continuous features to integer bin codes via quantile edges.

    Parameters
    ----------
    n_bins:
        Maximum bins per feature (features with few distinct values get
        fewer).  Bin codes are in ``[0, n_bins)``.
    """

    def __init__(self, n_bins: int = 32) -> None:
        if not 2 <= n_bins <= 256:
            raise ValueError(f"n_bins must be in [2, 256], got {n_bins}")
        self.n_bins = n_bins
        self._edges: list[np.ndarray] | None = None

    def fit(self, features: np.ndarray) -> "Binner":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        self._edges = []
        for j in range(features.shape[1]):
            edges = np.unique(np.quantile(features[:, j], quantiles))
            self._edges.append(edges)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Bin codes, shape ``(n, F)``, dtype uint8."""
        if self._edges is None:
            raise NotFittedError("Binner is not fitted yet")
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != len(self._edges):
            raise ValueError(
                f"expected {len(self._edges)} features, got {features.shape[1]}"
            )
        codes = np.empty(features.shape, dtype=np.uint8)
        for j, edges in enumerate(self._edges):
            codes[:, j] = np.searchsorted(edges, features[:, j], side="right")
        return codes

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def bin_upper_value(self, feature: int, bin_code: int) -> float:
        """Feature-space threshold corresponding to "code <= bin_code"."""
        if self._edges is None:
            raise NotFittedError("Binner is not fitted yet")
        edges = self._edges[feature]
        if bin_code >= len(edges):
            return np.inf
        return float(edges[bin_code])

    @property
    def n_features(self) -> int:
        if self._edges is None:
            raise NotFittedError("Binner is not fitted yet")
        return len(self._edges)
