"""LASSO regression via cyclic coordinate descent.

The paper's linear baseline: "The Lasso is a linear model that estimates
sparse coefficients … Since LASSO can not handle the categorical variables,
we transform each categorical variable to the one-hot representation."
(the one-hot expansion lives in :func:`repro.features.linear_design_matrix`).

Objective: ``(1/2n)‖y − Xw − b‖² + α‖w‖₁`` — minimised by cyclic coordinate
descent with soft-thresholding, the standard algorithm (Friedman et al.,
"Regularization paths for generalized linear models").
"""

from __future__ import annotations

import numpy as np

from .base import Regressor


def soft_threshold(value: float, threshold: float) -> float:
    """The LASSO shrinkage operator ``sign(v)·max(|v|−τ, 0)``."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class LassoRegressor(Regressor):
    """L1-regularised linear regression.

    Parameters
    ----------
    alpha:
        L1 penalty strength (0 gives plain least squares, solved by the
        same iteration).
    max_iter:
        Maximum full passes over the coordinates.
    tol:
        Convergence threshold on the maximum coefficient update per pass.
    fit_intercept:
        Learn an unpenalised intercept (recommended — the gap mean is
        far from zero).
    """

    def __init__(
        self,
        alpha: float = 0.1,
        max_iter: int = 200,
        tol: float = 1e-5,
        fit_intercept: bool = True,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_ = 0.0
        self.n_iter_ = 0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LassoRegressor":
        x, y = self._validate_xy(features, targets)
        n, f = x.shape

        # Centering x and y makes the unpenalised intercept separable:
        # fit on centered data, then intercept = ȳ − x̄·w.
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = y.mean()
            x = x - x_mean
            residual = y - y_mean
        else:
            x_mean = np.zeros(f)
            y_mean = 0.0
            residual = y.copy()
        weights = np.zeros(f)
        column_norms = (x ** 2).sum(axis=0) / n
        threshold = self.alpha

        for iteration in range(self.max_iter):
            max_update = 0.0
            for j in range(f):
                if column_norms[j] == 0.0:
                    continue
                rho = x[:, j] @ residual / n + column_norms[j] * weights[j]
                new_weight = soft_threshold(rho, threshold) / column_norms[j]
                delta = new_weight - weights[j]
                if delta != 0.0:
                    residual -= delta * x[:, j]
                    weights[j] = new_weight
                    max_update = max(max_update, abs(delta))
            self.n_iter_ = iteration + 1
            if max_update < self.tol:
                break

        self.coef_ = weights
        self.intercept_ = float(y_mean - x_mean @ weights)
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        return features @ self.coef_ + self.intercept_

    def sparsity(self) -> float:
        """Fraction of exactly-zero coefficients."""
        self._check_fitted()
        return float((self.coef_ == 0.0).mean())
