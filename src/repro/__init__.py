"""DeepSD reproduction: supply-demand gap prediction for car-hailing services.

Reimplementation of *DeepSD: Supply-Demand Prediction for Online Car-hailing
Services using Deep Neural Networks* (Wang, Cao, Li, Ye — ICDE 2017) as a
self-contained Python library:

- :mod:`repro.nn` — from-scratch numpy autograd / layers / optimisers;
- :mod:`repro.city` — synthetic city simulator standing in for the
  proprietary Didi order data;
- :mod:`repro.features` — the paper's supply-demand / last-call /
  waiting-time / environment feature vectors;
- :mod:`repro.core` — Basic and Advanced DeepSD models plus trainer;
- :mod:`repro.baselines` — empirical average, LASSO, GBDT, random forest;
- :mod:`repro.eval` — MAE/RMSE metrics and the paper's analyses;
- :mod:`repro.experiments` — one runner per table/figure in Section VI;
- :mod:`repro.obs` — structured logging, metrics registry and run
  manifests across the whole pipeline.
"""

from .exceptions import ConfigError, DataError, NotFittedError, ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigError",
    "DataError",
    "NotFittedError",
]
