"""Fig. 10 — accuracy under different gap thresholds.

"For a specific threshold, we evaluate the models on a subset of test data
which has the gaps smaller than the threshold."  The paper plots MAE and
RMSE for GBDT, Basic DeepSD and Advanced DeepSD over increasing thresholds;
Advanced DeepSD is best at every threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..eval import evaluate_under_thresholds
from .context import ExperimentContext

DEFAULT_THRESHOLDS = (2, 5, 10, 20, 50, 100)


@dataclass(frozen=True)
class ThresholdSeries:
    model: str
    thresholds: List[float]
    mae: List[float]
    rmse: List[float]
    n_items: List[int]


def run(
    context: ExperimentContext,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> Dict[str, ThresholdSeries]:
    """Threshold-restricted error curves for GBDT and both DeepSD models."""
    targets = context.test_set.gaps.astype(np.float64)
    predictions = {
        "GBDT": context.baseline("gbdt").test_predictions,
        "Basic DeepSD": context.trained("basic").test_predictions,
        "Advanced DeepSD": context.trained("advanced").test_predictions,
    }
    series = {}
    for name, preds in predictions.items():
        reports = evaluate_under_thresholds(preds, targets, thresholds)
        series[name] = ThresholdSeries(
            model=name,
            thresholds=[float(t) for t in thresholds],
            mae=[reports[float(t)].mae for t in thresholds],
            rmse=[reports[float(t)].rmse for t in thresholds],
            n_items=[reports[float(t)].n_items for t in thresholds],
        )
    return series


def advanced_wins_at_threshold(
    series: Dict[str, ThresholdSeries], index: int, metric: str = "rmse"
) -> bool:
    """Whether Advanced DeepSD leads every other model at one threshold."""
    advanced = getattr(series["Advanced DeepSD"], metric)
    others = [
        getattr(series[name], metric)
        for name in series
        if name != "Advanced DeepSD"
    ]
    if np.isnan(advanced[index]):
        return True
    return advanced[index] <= min(other[index] for other in others) + 1e-9


def advanced_win_fraction(series: Dict[str, ThresholdSeries], metric: str = "rmse") -> float:
    """Fraction of thresholds at which Advanced DeepSD leads.

    The paper reports wins at every threshold; at our reduced synthetic
    scale the advantage concentrates on the larger thresholds (the hard
    items), while tiny-gap subsets are within noise of GBDT/Basic.
    """
    n = len(series["Advanced DeepSD"].thresholds)
    wins = sum(advanced_wins_at_threshold(series, i, metric) for i in range(n))
    return wins / n
