"""Table I — embedding layer settings.

Not a measurement: the table documents the embedding configuration.  The
runner reports the widths actually instantiated by the models so the bench
can assert they match the paper (AreaID→8, TimeID 1440→6, WeekID 7→3,
weather type 10→3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .context import ExperimentContext


@dataclass(frozen=True)
class Table1Row:
    layer: str
    input_vocab: int
    output_dim: int
    occurred_parts: str


def run(context: ExperimentContext) -> List[Table1Row]:
    """Rows mirroring the paper's Table I for the context's configuration."""
    embeddings = context.scale.embeddings
    n_areas = context.scale.simulation.n_areas
    return [
        Table1Row("AreaID", n_areas, embeddings.area_dim,
                  "Identity Part, Extended Order Part"),
        Table1Row("TimeID", embeddings.time_vocab, embeddings.time_dim,
                  "Identity Part"),
        Table1Row("WeekID", embeddings.week_vocab, embeddings.week_dim,
                  "Identity Part, Extended Order Part"),
        Table1Row("wc.type", embeddings.weather_type_vocab,
                  embeddings.weather_type_dim, "Environment Part"),
    ]


def verify_against_model(context: ExperimentContext) -> List[Tuple[str, int]]:
    """Instantiate a model and read back each embedding's actual width."""
    from ..core import AdvancedDeepSD

    model = AdvancedDeepSD(
        context.scale.simulation.n_areas,
        context.scale.features.window_minutes,
        context.scale.embeddings,
        seed=0,
    )
    return [
        ("AreaID", model.identity.area_embedding.embedding_dim),
        ("TimeID", model.identity.time_embedding.embedding_dim),
        ("WeekID", model.identity.week_embedding.embedding_dim),
        ("wc.type", model.weather_block.type_embedding.embedding_dim),
    ]
