"""Fig. 13 — effects of the environment part.

Case A: order part only.  Case B: + weather block.  Case C: + weather and
traffic blocks (the full model).  The paper shows error decreasing from A
to C for both the basic and advanced models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..eval import evaluate
from .context import ExperimentContext

CASES = {
    "A (order only)": "{model}_order_only",
    "B (+weather)": "{model}_weather",
    "C (full)": "{model}",
}


@dataclass(frozen=True)
class Fig13Row:
    model: str
    case: str
    mae: float
    rmse: float


def run(context: ExperimentContext) -> List[Fig13Row]:
    """Train A/B/C variants of both models."""
    targets = context.test_set.gaps.astype(np.float64)
    rows = []
    for model in ("basic", "advanced"):
        for case, template in CASES.items():
            trained = context.trained(template.format(model=model))
            report = evaluate(trained.test_predictions, targets)
            rows.append(
                Fig13Row(model=model, case=case, mae=report.mae, rmse=report.rmse)
            )
    return rows


def case_errors(rows: List[Fig13Row], model: str, metric: str = "rmse") -> Dict[str, float]:
    """Metric per case for one model, keyed 'A'/'B'/'C'."""
    return {
        row.case[0]: getattr(row, metric) for row in rows if row.model == model
    }
