"""Fig. 15 — learned weekday combining weights.

The advanced model's softmax weights over the seven historical day-of-week
averages, visualised for two areas on Tuesday vs Sunday.  The paper's
observations to reproduce:

- on Sundays, the weight concentrates on the weekend days;
- the same weekday's weights differ across areas (one area leans on its own
  weekday, another spreads nearly uniformly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..eval import WeekdayWeightProfile, weekday_weight_profile
from .context import ExperimentContext


@dataclass(frozen=True)
class Fig15Result:
    profiles: List[WeekdayWeightProfile]

    def profile(self, area_id: int) -> WeekdayWeightProfile:
        for profile in self.profiles:
            if profile.area_id == area_id:
                return profile
        raise KeyError(area_id)


def run(context: ExperimentContext, *, n_areas: int = 4) -> Fig15Result:
    """Weight profiles of the busiest areas from the trained advanced model."""
    trained = context.trained("advanced")
    volumes = context.dataset.valid_counts.sum(axis=(1, 2))
    areas = np.argsort(volumes)[::-1][:n_areas]
    profiles = [
        weekday_weight_profile(trained.model, int(area)) for area in areas
    ]
    return Fig15Result(profiles=profiles)


def mean_weekend_mass_on_sunday(result: Fig15Result) -> float:
    """Average Sat+Sun weight when the current day is Sunday (week_id 6)."""
    return float(np.mean([p.weekend_mass(6) for p in result.profiles]))


def mean_weekend_mass_on_tuesday(result: Fig15Result) -> float:
    """Average Sat+Sun weight when the current day is Tuesday (week_id 1)."""
    return float(np.mean([p.weekend_mass(1) for p in result.profiles]))
