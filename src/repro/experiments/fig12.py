"""Fig. 12 — demand curves of areas close/far in embedding space.

Builds on the Table IV machinery: for the closest embedding pair the demand
curves should track each other (high correlation), for the farthest pair
they should not.  Fig. 12(c/d)'s scale-free claim is checked by comparing
raw-scale differences against normalised-curve correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..eval import embedding_distances, mean_demand_correlation
from .context import ExperimentContext


@dataclass(frozen=True)
class CurvePair:
    area_a: int
    area_b: int
    embedding_distance: float
    correlation: float
    scale_ratio: float           # mean demand ratio (≥ 1)
    hourly_a: np.ndarray
    hourly_b: np.ndarray


@dataclass(frozen=True)
class Fig12Result:
    close_pair: CurvePair
    far_pair: CurvePair
    scale_free_pair: CurvePair   # close in embedding, different in volume


def _pair(context: ExperimentContext, a: int, b: int, distance: float, day: int) -> CurvePair:
    dataset = context.dataset
    series_a = dataset.demand_series(a, day)
    series_b = dataset.demand_series(b, day)
    mean_a, mean_b = max(series_a.mean(), 1e-9), max(series_b.mean(), 1e-9)
    days = list(range(context.scale.features.train_days))
    return CurvePair(
        area_a=a,
        area_b=b,
        embedding_distance=distance,
        correlation=mean_demand_correlation(dataset, a, b, days),
        scale_ratio=float(max(mean_a, mean_b) / min(mean_a, mean_b)),
        hourly_a=series_a.reshape(24, 60).sum(axis=1),
        hourly_b=series_b.reshape(24, 60).sum(axis=1),
    )


def run(context: ExperimentContext, *, day: int = 1) -> Fig12Result:
    """Extract the closest, farthest and most scale-contrasting close pairs."""
    trained = context.trained("basic")
    distances = embedding_distances(trained.model.area_embedding_matrix())
    n = distances.shape[0]
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]

    closest = min(pairs, key=lambda p: distances[p])
    farthest = max(pairs, key=lambda p: distances[p])

    # Scale-free similarity: among the closest quartile of pairs, the one
    # with the largest volume ratio.
    cutoff = np.quantile([distances[p] for p in pairs], 0.25)
    close_pairs = [p for p in pairs if distances[p] <= cutoff]
    volumes = context.dataset.valid_counts.sum(axis=(1, 2)).astype(np.float64)

    def volume_ratio(pair):
        a, b = pair
        va, vb = max(volumes[a], 1.0), max(volumes[b], 1.0)
        return max(va, vb) / min(va, vb)

    scale_free = max(close_pairs, key=volume_ratio)

    return Fig12Result(
        close_pair=_pair(context, *closest, float(distances[closest]), day),
        far_pair=_pair(context, *farthest, float(distances[farthest]), day),
        scale_free_pair=_pair(context, *scale_free, float(distances[scale_free]), day),
    )
