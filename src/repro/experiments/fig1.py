"""Fig. 1 — car-hailing demand under four different situations.

The paper's motivating figure: an entertainment-type area is quiet on a
Wednesday but surges on Sunday, while a commuter area shows twin weekday
rush-hour peaks that vanish on Sunday.  The runner extracts the same four
curves (two areas × weekday/Sunday) from the simulated city.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..city import Archetype
from .context import ExperimentContext


@dataclass(frozen=True)
class DemandCurve:
    area_id: int
    archetype: str
    day: int
    weekday_name: str
    hourly_demand: np.ndarray  # (24,) orders per hour


@dataclass(frozen=True)
class Fig1Result:
    curves: List[DemandCurve]

    def curve(self, area_id: int, weekday_name: str) -> DemandCurve:
        for curve in self.curves:
            if curve.area_id == area_id and curve.weekday_name == weekday_name:
                return curve
        raise KeyError((area_id, weekday_name))


def _pick_day(context: ExperimentContext, weekday: int) -> int:
    days = context.dataset.calendar.days_with_weekday(weekday)
    if not days:
        raise ValueError(f"no simulated day falls on weekday {weekday}")
    # Use the latest instance inside the simulation for mature history.
    return days[-1]


def run(context: ExperimentContext) -> Fig1Result:
    """Hourly demand curves for an entertainment and a business area."""
    dataset = context.dataset
    entertainment = dataset.grid.by_archetype(Archetype.ENTERTAINMENT)
    business = dataset.grid.by_archetype(Archetype.BUSINESS)
    if not entertainment or not business:
        raise ValueError("simulation lacks the archetypes Fig. 1 contrasts")

    def busiest(areas):
        volumes = dataset.valid_counts.sum(axis=(1, 2))
        return max(areas, key=lambda a: volumes[a.area_id])

    wednesday = _pick_day(context, 2)
    sunday = _pick_day(context, 6)

    curves = []
    for area in (busiest(entertainment), busiest(business)):
        for day, name in ((wednesday, "Wednesday"), (sunday, "Sunday")):
            hourly = dataset.demand_series(area.area_id, day).reshape(24, 60).sum(axis=1)
            curves.append(
                DemandCurve(
                    area_id=area.area_id,
                    archetype=area.archetype.value,
                    day=day,
                    weekday_name=name,
                    hourly_demand=hourly,
                )
            )
    return Fig1Result(curves=curves)


def entertainment_weekend_ratio(result: Fig1Result) -> float:
    """Sunday/Wednesday demand ratio of the entertainment area (paper: ≫1)."""
    ent = [c for c in result.curves if c.archetype == "entertainment"]
    wednesday = next(c for c in ent if c.weekday_name == "Wednesday")
    sunday = next(c for c in ent if c.weekday_name == "Sunday")
    return float(sunday.hourly_demand.sum() / max(wednesday.hourly_demand.sum(), 1))


def business_commute_peak_ratio(result: Fig1Result) -> float:
    """Weekday rush-hour vs midday demand in the business area (paper: >1)."""
    biz = [c for c in result.curves if c.archetype == "business"]
    wednesday = next(c for c in biz if c.weekday_name == "Wednesday")
    rush = wednesday.hourly_demand[[8, 19]].mean()
    midday = wednesday.hourly_demand[14:16].mean()
    return float(rush / max(midday, 1e-9))
