"""Fig. 16 — convergence of re-training vs fine-tuning.

Section V-C's extendability experiment: first train an advanced model with
only the order part.  Then add the weather and traffic blocks and either
(a) fine-tune — initialise the shared blocks from the trained model — or
(b) re-train everything from scratch.  Fine-tuning converges much faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core import AdvancedDeepSD, Trainer, TrainingConfig
from .context import ExperimentContext


@dataclass(frozen=True)
class Fig16Result:
    finetune_loss: List[float]     # per-epoch training loss
    retrain_loss: List[float]
    finetune_rmse: List[float]     # per-epoch test RMSE
    retrain_rmse: List[float]

    def epochs_to_reach(self, rmse_level: float, curve: str) -> int:
        """First epoch (1-based) at which a curve dips below a level; -1 if never."""
        values = self.finetune_rmse if curve == "finetune" else self.retrain_rmse
        for epoch, value in enumerate(values, start=1):
            if value <= rmse_level:
                return epoch
        return -1


def run(context: ExperimentContext, *, epochs: int | None = None, seed: int = 21) -> Fig16Result:
    """Train the grown model from a fine-tuned vs fresh initialisation."""
    defaults = context.training_defaults()
    epochs = epochs or max(defaults["epochs"] // 2, 3)
    window = context.scale.features.window_minutes
    n_areas = context.dataset.n_areas

    base = context.trained("advanced_order_only")

    def grown_model(model_seed: int) -> AdvancedDeepSD:
        return AdvancedDeepSD(
            n_areas,
            window,
            context.scale.embeddings,
            dropout=defaults["dropout"],
            seed=model_seed,
        )

    finetuned = grown_model(seed)
    finetuned.load_state_dict(base.model.state_dict(), strict=False)
    fresh = grown_model(seed)

    histories = {}
    for name, model in (("finetune", finetuned), ("retrain", fresh)):
        trainer = Trainer(
            model, TrainingConfig(epochs=epochs, best_k=1, seed=seed)
        )
        histories[name] = trainer.fit(
            context.train_set, eval_set=context.test_set
        )

    return Fig16Result(
        finetune_loss=histories["finetune"].train_loss,
        retrain_loss=histories["retrain"].train_loss,
        finetune_rmse=histories["finetune"].eval_rmse,
        retrain_rmse=histories["retrain"].eval_rmse,
    )


def early_epoch_advantage(result: Fig16Result, k: int = 3) -> float:
    """Mean loss gap (retrain − finetune) over the first k epochs (> 0 = faster)."""
    k = min(k, len(result.finetune_loss))
    return float(
        np.mean(result.retrain_loss[:k]) - np.mean(result.finetune_loss[:k])
    )
