"""Shared experiment context: one simulation + featurization per scale.

Every table/figure runner works from the same :class:`ExperimentContext`,
which lazily simulates the city, builds the train/test ExampleSets and
trains models on demand.  Heavy artifacts are cached both in memory (one
process) and on disk (across benchmark runs) under ``REPRO_CACHE_DIR``
(default ``.repro_cache/``).

Cache files are keyed by scale name, simulation seed *and* a fingerprint
of the full scale configuration, so two runs only share artifacts when
every simulation/feature/embedding constant matches — the handoff the
parallel experiment engine (:mod:`repro.experiments.runner`) relies on to
let worker processes reuse one simulated city + featurization instead of
rebuilding them.  Saves go through tmp+rename so concurrent workers never
observe a half-written archive.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..city import CityDataset, simulate_city
from ..config import ExperimentScale, get_scale
from ..obs import get_logger, get_registry
from ..core import (
    AdvancedDeepSD,
    BasicDeepSD,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    config_fingerprint,
)
from ..features import ExampleSet, FeatureBuilder

_log = get_logger(__name__)


def scale_fingerprint(scale: ExperimentScale) -> str:
    """Short digest of every constant in an :class:`ExperimentScale`.

    Nested dataclasses (simulation / features / embeddings) are flattened
    by :func:`repro.core.config_fingerprint`, so any config change —
    not just the name or seed — yields a different cache key.
    """
    return config_fingerprint(scale)[:10]

#: Training hyper-parameters per scale.  The paper trains 50 epochs with
#: dropout 0.5 on ~394k items; the bench/tiny splits are 30-400× smaller,
#: where grid search selects a lighter dropout (EXPERIMENTS.md documents
#: this deviation).
TRAINING_DEFAULTS = {
    "paper": {"epochs": 50, "dropout": 0.5},
    "bench": {"epochs": 50, "dropout": 0.1},
    "tiny": {"epochs": 6, "dropout": 0.1},
}

#: Named model variants used across the experiments.
MODEL_SPECS: Dict[str, dict] = {
    "basic": {"cls": BasicDeepSD},
    "advanced": {"cls": AdvancedDeepSD},
    "basic_onehot": {"cls": BasicDeepSD, "identity_encoding": "onehot"},
    "advanced_onehot": {"cls": AdvancedDeepSD, "identity_encoding": "onehot"},
    "basic_noresidual": {"cls": BasicDeepSD, "residual": False},
    "advanced_noresidual": {"cls": AdvancedDeepSD, "residual": False},
    "basic_order_only": {"cls": BasicDeepSD, "use_weather": False, "use_traffic": False},
    "basic_weather": {"cls": BasicDeepSD, "use_weather": True, "use_traffic": False},
    "advanced_order_only": {
        "cls": AdvancedDeepSD, "use_weather": False, "use_traffic": False,
    },
    "advanced_weather": {
        "cls": AdvancedDeepSD, "use_weather": True, "use_traffic": False,
    },
    "advanced_uniform_weekdays": {
        "cls": AdvancedDeepSD, "uniform_weekday_weights": True,
    },
}


def cache_dir() -> Path:
    path = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def _atomic_savez(path: Path, **arrays) -> None:
    """``np.savez_compressed`` through tmp+rename (safe under concurrency)."""
    # The tmp name keeps the .npz suffix so numpy does not append one.
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed save: drop the partial file
            tmp.unlink()


@dataclass
class TrainedModel:
    """A trained DeepSD variant plus everything the analyses need."""

    key: str
    model: object
    trainer: Trainer
    history: TrainingHistory
    test_predictions: np.ndarray
    seconds_per_epoch: float
    train_seconds: float


@dataclass
class BaselineResult:
    """Predictions and timing of one classical baseline."""

    key: str
    test_predictions: np.ndarray
    fit_seconds: float


#: Tuned baseline hyper-parameters (the paper tunes via grid search).
BASELINE_SPECS = {
    "average": {},
    "lasso": {"alpha": 0.02, "max_iter": 80},
    "gbdt": {
        "n_estimators": 150,
        "max_depth": 5,
        "learning_rate": 0.06,
        "subsample": 0.8,
        "seed": 0,
    },
    "rf": {"n_estimators": 50, "max_depth": 14, "seed": 0},
}


@dataclass
class ExperimentContext:
    """Lazily-built shared state for one (scale, seed)."""

    scale: ExperimentScale
    _dataset: Optional[CityDataset] = None
    _train: Optional[ExampleSet] = None
    _test: Optional[ExampleSet] = None
    _models: Dict[str, TrainedModel] = field(default_factory=dict)
    _baselines: Dict[str, BaselineResult] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> CityDataset:
        if self._dataset is None:
            path = cache_dir() / f"city_{self._tag()}.npz"
            cached = path.exists()
            _log.event(
                "experiment.dataset",
                level=logging.DEBUG,
                tag=self._tag(),
                cached=cached,
            )
            get_registry().counter(
                "repro.experiment.cache_hits" if cached
                else "repro.experiment.cache_misses"
            )
            if cached:
                self._dataset = CityDataset.load(path)
            else:
                self._dataset = simulate_city(self.scale.simulation)
                self._save_atomic(self._dataset.save, path)
        return self._dataset

    @staticmethod
    def _save_atomic(save, path: Path) -> None:
        """Run a ``save(path)`` method through tmp+rename."""
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp.npz")
        try:
            save(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def _example_sets(self) -> None:
        train_path = cache_dir() / f"train_{self._tag()}.npz"
        test_path = cache_dir() / f"test_{self._tag()}.npz"
        cached = train_path.exists() and test_path.exists()
        _log.event(
            "experiment.features",
            level=logging.DEBUG,
            tag=self._tag(),
            cached=cached,
        )
        get_registry().counter(
            "repro.experiment.cache_hits" if cached
            else "repro.experiment.cache_misses"
        )
        if cached:
            self._train = ExampleSet.load(train_path)
            self._test = ExampleSet.load(test_path)
            return
        self._train, self._test = FeatureBuilder(
            self.dataset, self.scale.features
        ).build()
        self._save_atomic(self._train.save, train_path)
        self._save_atomic(self._test.save, test_path)

    @property
    def train_set(self) -> ExampleSet:
        if self._train is None:
            self._example_sets()
        return self._train

    @property
    def test_set(self) -> ExampleSet:
        if self._test is None:
            self._example_sets()
        return self._test

    def _tag(self) -> str:
        scale = self.scale
        return f"{scale.name}_{scale.simulation.seed}_{scale_fingerprint(scale)}"

    def training_defaults(self) -> dict:
        return TRAINING_DEFAULTS.get(self.scale.name, TRAINING_DEFAULTS["bench"])

    # ------------------------------------------------------------------
    # Cache layout (shared with the parallel runner's worker processes)
    # ------------------------------------------------------------------

    def model_cache_path(self, key: str, seed: int = 1) -> Path:
        return cache_dir() / f"model_{key}_{seed}_{self._tag()}.npz"

    def baseline_cache_path(self, key: str) -> Path:
        return cache_dir() / f"baseline_{key}_{self._tag()}.npz"

    def prewarm_shared(self) -> None:
        """Materialise the city + ExampleSets in the on-disk cache.

        Called by the parallel runner before fanning out so every worker
        process loads the one simulated city and featurization from disk
        instead of rebuilding them (the expensive, perfectly shareable
        part of every experiment).
        """
        self.dataset
        self.train_set
        self.test_set

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------

    def trained(self, key: str, *, seed: int = 1) -> TrainedModel:
        """Train (or fetch) one of the named model variants."""
        cache_key = f"{key}_{seed}"
        if cache_key in self._models:
            return self._models[cache_key]

        spec = dict(MODEL_SPECS[key])
        cls = spec.pop("cls")
        defaults = self.training_defaults()
        model = cls(
            self.dataset.n_areas,
            self.scale.features.window_minutes,
            self.scale.embeddings,
            dropout=defaults["dropout"],
            seed=seed,
            **spec,
        )
        trainer = Trainer(
            model,
            TrainingConfig(epochs=defaults["epochs"], best_k=10, seed=seed),
        )

        disk = self.model_cache_path(key, seed)
        cached = disk.exists()
        _log.event(
            "experiment.model",
            level=logging.DEBUG,
            model=key,
            seed=seed,
            cached=cached,
        )
        if cached:
            get_registry().counter("repro.experiment.cache_hits")
            trained = self._load_trained(key, model, trainer, disk)
        else:
            get_registry().counter("repro.experiment.cache_misses")
            with get_registry().timer("repro.experiment.train_seconds") as timer:
                history = trainer.fit(self.train_set, eval_set=self.test_set)
            trained = TrainedModel(
                key=key,
                model=model,
                trainer=trainer,
                history=history,
                test_predictions=trainer.predict(self.test_set),
                seconds_per_epoch=float(np.mean(history.epoch_seconds)),
                train_seconds=timer.elapsed,
            )
            self._save_trained(trained, disk)
        self._models[cache_key] = trained
        return trained

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------

    def baseline(self, key: str) -> BaselineResult:
        """Fit (or fetch) one classical baseline by name."""
        if key not in self._baselines:
            path = self.baseline_cache_path(key)
            cached = path.exists()
            get_registry().counter(
                "repro.experiment.cache_hits" if cached
                else "repro.experiment.cache_misses"
            )
            if cached:
                with np.load(path) as archive:
                    self._baselines[key] = BaselineResult(
                        key=key,
                        test_predictions=archive["test_predictions"].copy(),
                        fit_seconds=float(archive["fit_seconds"][0]),
                    )
            else:
                result = self._fit_baseline(key)
                _atomic_savez(
                    path,
                    test_predictions=result.test_predictions,
                    fit_seconds=np.array([result.fit_seconds]),
                )
                self._baselines[key] = result
        return self._baselines[key]

    def _fit_baseline(self, key: str) -> BaselineResult:
        from ..baselines import (
            EmpiricalAverage,
            GradientBoostingRegressor,
            LassoRegressor,
            RandomForestRegressor,
        )
        from ..features import linear_design_matrix, tree_design_matrix

        train, test = self.train_set, self.test_set
        targets = train.gaps.astype(np.float64)
        spec = BASELINE_SPECS[key]
        with get_registry().timer("repro.experiment.baseline_seconds") as timer:
            if key == "average":
                predictions = EmpiricalAverage().fit(train).predict(test)
            elif key == "lasso":
                x_train, x_test, _ = linear_design_matrix(train, test)
                predictions = (
                    LassoRegressor(**spec).fit(x_train, targets).predict(x_test)
                )
            elif key in ("gbdt", "rf"):
                x_train, _ = tree_design_matrix(train)
                x_test, _ = tree_design_matrix(test)
                cls = (
                    GradientBoostingRegressor if key == "gbdt"
                    else RandomForestRegressor
                )
                predictions = cls(**spec).fit(x_train, targets).predict(x_test)
            else:
                raise KeyError(f"unknown baseline {key!r}")
        _log.event("experiment.baseline", level=logging.DEBUG,
                   baseline=key, seconds=timer.elapsed)
        return BaselineResult(
            key=key,
            test_predictions=predictions,
            fit_seconds=timer.elapsed,
        )

    def _save_trained(self, trained: TrainedModel, path: Path) -> None:
        arrays = {
            "test_predictions": trained.test_predictions,
            "train_loss": np.array(trained.history.train_loss),
            "eval_mae": np.array(trained.history.eval_mae),
            "eval_rmse": np.array(trained.history.eval_rmse),
            "epoch_seconds": np.array(trained.history.epoch_seconds),
            "train_seconds": np.array([trained.train_seconds]),
            "n_ensemble": np.array([len(trained.trainer._ensemble_states)]),
        }
        for name, value in trained.model.state_dict().items():
            arrays[f"live__{name}"] = value
        for i, state in enumerate(trained.trainer._ensemble_states):
            for name, value in state.items():
                arrays[f"ens{i}__{name}"] = value
        _atomic_savez(path, **arrays)

    def _load_trained(
        self, key: str, model, trainer: Trainer, path: Path
    ) -> TrainedModel:
        with np.load(path, allow_pickle=False) as archive:
            history = TrainingHistory(
                train_loss=list(archive["train_loss"]),
                eval_mae=list(archive["eval_mae"]),
                eval_rmse=list(archive["eval_rmse"]),
                epoch_seconds=list(archive["epoch_seconds"]),
            )
            live = {
                name[len("live__"):]: archive[name]
                for name in archive.files
                if name.startswith("live__")
            }
            model.load_state_dict(live)
            n_ensemble = int(archive["n_ensemble"][0])
            trainer._ensemble_states = []
            for i in range(n_ensemble):
                prefix = f"ens{i}__"
                trainer._ensemble_states.append(
                    {
                        name[len(prefix):]: archive[name]
                        for name in archive.files
                        if name.startswith(prefix)
                    }
                )
            # Normalisation scales are refit from the train set (they are
            # deterministic given the data, so this matches training time).
            from ..core import InputScales

            model.input_scales = InputScales.from_example_set(self.train_set)
            return TrainedModel(
                key=key,
                model=model,
                trainer=trainer,
                history=history,
                test_predictions=archive["test_predictions"].copy(),
                seconds_per_epoch=float(np.mean(archive["epoch_seconds"])),
                train_seconds=float(archive["train_seconds"][0]),
            )


_CONTEXTS: Dict[str, ExperimentContext] = {}


def get_context(scale_name: str = "bench", seed: Optional[int] = None) -> ExperimentContext:
    """Process-wide context cache keyed by scale name and seed."""
    scale = get_scale(scale_name, seed)
    key = f"{scale.name}_{scale.simulation.seed}"
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(scale=scale)
    return _CONTEXTS[key]
