"""Experiment runners — one module per table/figure of Section VI.

All runners share an :class:`ExperimentContext` (simulation + featurization
+ cached trained models), so running the full suite trains each model
variant exactly once per scale.
"""

from . import (
    ablations,
    fig1,
    fig10,
    fig11,
    fig12,
    fig13,
    fig15,
    fig16,
    runner,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from .context import (
    BASELINE_SPECS,
    MODEL_SPECS,
    TRAINING_DEFAULTS,
    BaselineResult,
    ExperimentContext,
    TrainedModel,
    cache_dir,
    get_context,
    scale_fingerprint,
)
from .runner import (
    ExperimentTask,
    RunnerReport,
    run_experiment,
    run_tasks,
    tasks_for,
)

__all__ = [
    "ExperimentContext",
    "ExperimentTask",
    "TrainedModel",
    "BaselineResult",
    "RunnerReport",
    "get_context",
    "cache_dir",
    "scale_fingerprint",
    "run_experiment",
    "run_tasks",
    "tasks_for",
    "runner",
    "MODEL_SPECS",
    "BASELINE_SPECS",
    "TRAINING_DEFAULTS",
    "ablations",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig15",
    "fig16",
]
