"""Table IV / Fig. 12 — area similarity in the learned embedding space.

The paper picks four areas and shows their pairwise embedding distances:
areas close in embedding space (3↔19, 4↔24) have near-identical demand
curves; distant areas differ.  Fig. 12(c/d) adds that similarity is
scale-free: two areas with different volumes but the same *trend* are close.

We reproduce with an aggregate statistic rather than hand-picked areas: the
mean demand-curve correlation of the closest quartile of embedding pairs
must exceed that of the farthest quartile.  The displayed 4-area distance
matrix uses the two globally closest and the globally farthest pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..eval import embedding_distances, mean_demand_correlation
from .context import ExperimentContext


@dataclass(frozen=True)
class AreaPair:
    area_a: int
    area_b: int
    embedding_distance: float
    demand_correlation: float


@dataclass(frozen=True)
class Table4Result:
    areas: List[int]
    distances: np.ndarray        # pairwise distances between `areas`
    close_pairs: List[AreaPair]  # globally closest pairs
    far_pairs: List[AreaPair]    # globally farthest pairs
    close_quartile_corr: float   # mean corr, closest quartile of all pairs
    far_quartile_corr: float     # mean corr, farthest quartile of all pairs


def run(context: ExperimentContext, *, n_display_pairs: int = 2) -> Table4Result:
    """Compute the embedding-distance vs demand-similarity relationship.

    Demand-curve correlations are averaged over the training days so one
    day's weather/noise does not dominate.
    """
    trained = context.trained("basic")
    distances = embedding_distances(trained.model.area_embedding_matrix())
    n_areas = distances.shape[0]
    days = list(range(context.scale.features.train_days))
    dataset = context.dataset

    pairs = [(i, j) for i in range(n_areas) for j in range(i + 1, n_areas)]
    pair_distances = np.array([distances[p] for p in pairs])
    pair_correlations = np.array(
        [mean_demand_correlation(dataset, a, b, days) for a, b in pairs]
    )

    order = np.argsort(pair_distances)
    quartile = max(1, len(pairs) // 4)
    close_quartile_corr = float(pair_correlations[order[:quartile]].mean())
    far_quartile_corr = float(pair_correlations[order[-quartile:]].mean())

    def make_pair(index: int) -> AreaPair:
        a, b = pairs[index]
        return AreaPair(a, b, float(pair_distances[index]), float(pair_correlations[index]))

    close_pairs = [make_pair(int(i)) for i in order[:n_display_pairs]]
    far_pairs = [make_pair(int(i)) for i in order[::-1][:n_display_pairs]]

    chosen: List[int] = []
    for pair in close_pairs + far_pairs:
        chosen += [pair.area_a, pair.area_b]
    areas = sorted(set(chosen))[:6]
    sub = distances[np.ix_(areas, areas)]
    return Table4Result(
        areas=areas,
        distances=sub,
        close_pairs=close_pairs,
        far_pairs=far_pairs,
        close_quartile_corr=close_quartile_corr,
        far_quartile_corr=far_quartile_corr,
    )


def mean_correlation_gap(result: Table4Result) -> float:
    """Closest-quartile mean correlation minus farthest-quartile mean.

    Positive values reproduce the paper's claim that embedding distance
    tracks supply-demand-pattern similarity.
    """
    return result.close_quartile_corr - result.far_quartile_corr
