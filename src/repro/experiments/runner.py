"""Parallel experiment engine: fan model variants and baselines across cores.

Every experiment runner trains its DeepSD variants and classical baselines
through :class:`~repro.experiments.context.ExperimentContext`, one task at
a time.  The tasks are embarrassingly parallel — each model variant trains
from its own seed and touches nothing shared except the read-only city and
ExampleSets — so this module fans them out over a process pool and lets
the experiment's normal serial code pick every result up from the shared
on-disk cache afterwards.

Determinism is structural, not incidental:

- **per-task seeding** — every task carries its own training seed
  (models: the ``seed`` field; baselines: the seed pinned inside
  ``BASELINE_SPECS``), so a task's arithmetic never depends on which
  worker runs it, how many workers exist, or in what order tasks finish;
- **shared handoff** — the parent prewarms the simulated city and the
  train/test ExampleSets into the fingerprint-keyed cache
  (:meth:`ExperimentContext.prewarm_shared`), so workers *load* identical
  inputs instead of rebuilding them;
- **bitwise transport** — results travel through ``.npz`` archives, which
  preserve float bits exactly.

Together these make ``run_experiment(name, workers=N)`` produce results
bitwise-identical to serial execution for any ``N`` (asserted by
``tests/experiments/test_runner_parallel.py``).

Observability: worker-pool size, cache hit/miss counts and per-task wall
clock are recorded into the process :class:`~repro.obs.MetricsRegistry`
under ``repro.runner.*`` and surfaced in the returned
:class:`RunnerReport` (the CLI copies them into the run manifest).
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ExperimentScale
from ..exceptions import ConfigError
from ..obs import get_logger, get_registry
from .context import BASELINE_SPECS, MODEL_SPECS, ExperimentContext

_log = get_logger(__name__)

__all__ = [
    "ExperimentTask",
    "RunnerReport",
    "TaskResult",
    "baseline_task",
    "model_task",
    "run_experiment",
    "run_tasks",
    "tasks_for",
]


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of parallel work: train a model variant or fit a baseline.

    ``seed`` is the *task's* training seed (models only) — part of the
    task identity, never derived from worker placement, which is what
    keeps results stable across pool sizes.
    """

    kind: str  # "model" | "baseline"
    key: str
    seed: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("model", "baseline"):
            raise ConfigError(f"task kind must be model/baseline, got {self.kind!r}")
        known = MODEL_SPECS if self.kind == "model" else BASELINE_SPECS
        if self.key not in known:
            raise ConfigError(f"unknown {self.kind} task {self.key!r}")

    @property
    def task_id(self) -> str:
        if self.kind == "model":
            return f"model:{self.key}:{self.seed}"
        return f"baseline:{self.key}"


def model_task(key: str, seed: int = 1) -> ExperimentTask:
    return ExperimentTask("model", key, seed)


def baseline_task(key: str) -> ExperimentTask:
    return ExperimentTask("baseline", key)


def _model_tasks(*keys: str) -> Tuple[ExperimentTask, ...]:
    return tuple(model_task(key) for key in keys)


#: The training/fitting work each experiment needs, derivable from the
#: ``context.trained(...)`` / ``context.baseline(...)`` calls its ``run``
#: makes.  Experiments without an entry (table1, fig1) do no heavy
#: per-model work and run serially as before.
EXPERIMENT_TASKS: Dict[str, Tuple[ExperimentTask, ...]] = {
    "table2": (
        baseline_task("average"),
        baseline_task("lasso"),
        baseline_task("gbdt"),
        baseline_task("rf"),
        *_model_tasks("basic", "advanced"),
    ),
    "table3": _model_tasks("basic", "advanced", "basic_onehot", "advanced_onehot"),
    "table4": _model_tasks("basic"),
    "table5": _model_tasks(
        "basic", "advanced", "basic_noresidual", "advanced_noresidual"
    ),
    "fig10": (baseline_task("gbdt"), *_model_tasks("basic", "advanced")),
    "fig11": (baseline_task("gbdt"), *_model_tasks("advanced")),
    "fig12": _model_tasks("basic"),
    "fig13": _model_tasks(
        "basic_order_only", "basic_weather", "basic",
        "advanced_order_only", "advanced_weather", "advanced",
    ),
    "fig15": _model_tasks("advanced"),
    "fig16": _model_tasks("advanced_order_only"),
}


def tasks_for(name: str) -> Tuple[ExperimentTask, ...]:
    """The parallelizable tasks behind one experiment (possibly empty)."""
    return EXPERIMENT_TASKS.get(name, ())


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task: where it ran and how long it took."""

    task_id: str
    seconds: float
    cached: bool
    pid: int


@dataclass
class RunnerReport:
    """What one :func:`run_tasks` call did, for manifests and tests."""

    workers: int
    wall_seconds: float = 0.0
    prewarm_seconds: float = 0.0
    results: List[TaskResult] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(result.cached for result in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(not result.cached for result in self.results)

    @property
    def task_seconds(self) -> float:
        return float(sum(result.seconds for result in self.results))

    def to_metrics(self) -> Dict[str, float]:
        """Flat numbers for ``RunManifest.record``."""
        return {
            "runner.workers": self.workers,
            "runner.tasks": len(self.results),
            "runner.cache_hits": self.cache_hits,
            "runner.cache_misses": self.cache_misses,
            "runner.wall_seconds": self.wall_seconds,
            "runner.prewarm_seconds": self.prewarm_seconds,
            "runner.task_seconds": self.task_seconds,
        }


#: Per-worker-process context, so one worker running several tasks loads
#: the shared city/ExampleSets from disk once, not once per task.
_WORKER_CONTEXT: Optional[ExperimentContext] = None


def _worker_context(scale: ExperimentScale, cache_root: str) -> ExperimentContext:
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None or _WORKER_CONTEXT.scale != scale:
        os.environ["REPRO_CACHE_DIR"] = cache_root
        _WORKER_CONTEXT = ExperimentContext(scale=scale)
    return _WORKER_CONTEXT


def _execute_task(
    scale: ExperimentScale, cache_root: str, task: ExperimentTask
) -> TaskResult:
    """Worker entry point: run one task into the shared on-disk cache.

    Uses the per-process :class:`ExperimentContext` against the parent's
    cache directory; the prewarmed city/ExampleSets load from disk, the
    task's result lands in the cache, and only the lightweight
    :class:`TaskResult` travels back over the pipe.
    """
    context = _worker_context(scale, cache_root)
    started = time.perf_counter()
    if task.kind == "model":
        cached = context.model_cache_path(task.key, task.seed).exists()
        context.trained(task.key, seed=task.seed)
    else:
        cached = context.baseline_cache_path(task.key).exists()
        context.baseline(task.key)
    return TaskResult(
        task_id=task.task_id,
        seconds=time.perf_counter() - started,
        cached=cached,
        pid=os.getpid(),
    )


def _run_serial(
    context: ExperimentContext, tasks: Sequence[ExperimentTask]
) -> List[TaskResult]:
    results = []
    for task in tasks:
        started = time.perf_counter()
        if task.kind == "model":
            cached = context.model_cache_path(task.key, task.seed).exists()
            context.trained(task.key, seed=task.seed)
        else:
            cached = context.baseline_cache_path(task.key).exists()
            context.baseline(task.key)
        results.append(
            TaskResult(
                task_id=task.task_id,
                seconds=time.perf_counter() - started,
                cached=cached,
                pid=os.getpid(),
            )
        )
    return results


def run_tasks(
    context: ExperimentContext,
    tasks: Sequence[ExperimentTask],
    *,
    workers: Optional[int] = None,
) -> RunnerReport:
    """Execute ``tasks`` with up to ``workers`` processes.

    ``workers=None`` or ``<= 1`` runs everything inline (serial); either
    way the results land in the shared cache *and* the given context's
    in-memory maps, so a subsequent ``experiments.<name>.run(context)``
    finds every model already trained.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    # De-duplicate while preserving order (table2 lists baselines the
    # caller may also have requested explicitly).
    unique: Dict[str, ExperimentTask] = {}
    for task in tasks:
        unique.setdefault(task.task_id, task)
    tasks = list(unique.values())

    registry = get_registry()
    report = RunnerReport(workers=workers)
    started = time.perf_counter()
    with registry.timer("repro.runner.prewarm_seconds") as prewarm_timer:
        context.prewarm_shared()
    report.prewarm_seconds = prewarm_timer.elapsed

    _log.event(
        "runner.start",
        level=logging.DEBUG,
        workers=workers,
        tasks=len(tasks),
        scale=context.scale.name,
    )
    if workers == 1 or len(tasks) <= 1:
        report.results = _run_serial(context, tasks)
    else:
        cache_root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_task, context.scale, cache_root, task)
                for task in tasks
            ]
            report.results = [future.result() for future in futures]
        # Fault the workers' cached results into this context's memory so
        # callers see the same state a serial run would have left behind.
        for task in tasks:
            if task.kind == "model":
                context.trained(task.key, seed=task.seed)
            else:
                context.baseline(task.key)
    report.wall_seconds = time.perf_counter() - started

    registry.gauge("repro.runner.workers", workers)
    registry.counter("repro.runner.tasks", len(report.results))
    registry.counter("repro.runner.cache_hits", report.cache_hits)
    registry.counter("repro.runner.cache_misses", report.cache_misses)
    for result in report.results:
        registry.observe("repro.runner.task_seconds", result.seconds)
    _log.event(
        "runner.done",
        workers=workers,
        tasks=len(report.results),
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        wall_seconds=report.wall_seconds,
    )
    return report


def run_experiment(
    name: str,
    context: ExperimentContext,
    *,
    workers: Optional[int] = None,
):
    """Run one named experiment, fanning its heavy tasks across workers.

    Returns ``(result, report)`` where ``result`` is exactly what the
    experiment's serial ``run(context)`` returns — the parallel phase only
    pre-populates the cache the serial code then reads, which is why the
    rows are bitwise-identical to a serial run.
    """
    from .. import experiments

    try:
        module = getattr(experiments, name)
    except AttributeError:
        raise ConfigError(f"unknown experiment {name!r}") from None
    report = run_tasks(context, tasks_for(name), workers=workers)
    result = module.run(context)
    return result, report
