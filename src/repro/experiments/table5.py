"""Table V — effects of block-level residual learning.

Paper's reference numbers: removing the residual connections (Fig. 14's
concatenation network) worsens both models:

=================  ==========  ==========
Model              With (RMSE) Without
=================  ==========  ==========
Basic DeepSD       15.57       16.40
Advanced DeepSD    13.99       15.06
=================  ==========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..eval import evaluate
from .context import ExperimentContext

PAPER_RESULTS = {
    ("basic", True): (3.56, 15.57),
    ("basic", False): (3.63, 16.40),
    ("advanced", True): (3.30, 13.99),
    ("advanced", False): (3.46, 15.06),
}


@dataclass(frozen=True)
class Table5Row:
    model: str
    residual: bool
    mae: float
    rmse: float


def run(context: ExperimentContext) -> List[Table5Row]:
    """Train each model with and without residual connections."""
    targets = context.test_set.gaps.astype(np.float64)
    rows = []
    for model in ("basic", "advanced"):
        for residual, key in ((True, model), (False, f"{model}_noresidual")):
            trained = context.trained(key)
            report = evaluate(trained.test_predictions, targets)
            rows.append(
                Table5Row(
                    model=model, residual=residual, mae=report.mae, rmse=report.rmse
                )
            )
    return rows
