"""Table III — effects of embedding vs one-hot representations.

Paper's reference numbers: for both Basic and Advanced DeepSD, replacing
embeddings with one-hot inputs worsens MAE/RMSE *and* slows each epoch
(one-hot identity blows the first concatenation up from 17 to >1500 dims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..eval import evaluate
from .context import ExperimentContext

PAPER_RESULTS = {
    ("basic", "One-hot"): (3.65, 16.12, 26.4),
    ("basic", "Embedding"): (3.56, 15.57, 22.8),
    ("advanced", "One-hot"): (3.42, 14.52, 49.8),
    ("advanced", "Embedding"): (3.30, 13.99, 34.8),
}


@dataclass(frozen=True)
class Table3Row:
    model: str
    representation: str
    mae: float
    rmse: float
    seconds_per_epoch: float


def run(context: ExperimentContext) -> List[Table3Row]:
    """Train each model with embedding and one-hot identity encodings."""
    targets = context.test_set.gaps.astype(np.float64)
    rows = []
    for model in ("basic", "advanced"):
        for representation, key in (
            ("One-hot", f"{model}_onehot"),
            ("Embedding", model),
        ):
            trained = context.trained(key)
            report = evaluate(trained.test_predictions, targets)
            rows.append(
                Table3Row(
                    model=model,
                    representation=representation,
                    mae=report.mae,
                    rmse=report.rmse,
                    seconds_per_epoch=trained.seconds_per_epoch,
                )
            )
    return rows
