"""Ablations over the design constants the paper fixes by fiat.

The paper pins C = 10 minutes ("due to the business requirement; it can be
replaced by any other constant"), L = 20 minutes, and trains with squared
error.  These sweeps quantify how sensitive the system is to each choice:

- :func:`horizon_sweep` — the prediction horizon C;
- :func:`window_sweep` — the lookback window L;
- :func:`loss_ablation` — MSE vs Huber vs MAE training loss;
- :func:`seed_stability` — run-to-run variance of the advanced model.

Results are cached on disk like the main experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from ..config import FeatureConfig
from ..core import AdvancedDeepSD, BasicDeepSD, Trainer, TrainingConfig
from ..eval import evaluate
from ..features import FeatureBuilder
from .context import ExperimentContext, cache_dir


@dataclass(frozen=True)
class SweepRow:
    """One setting of a swept parameter and its test errors."""

    parameter: str
    value: float
    mae: float
    rmse: float
    mean_gap: float


def _train_basic_on(context: ExperimentContext, features: FeatureConfig, seed: int = 1):
    """Featurize with a modified config and train a basic model."""
    train_set, test_set = FeatureBuilder(context.dataset, features).build()
    defaults = context.training_defaults()
    model = BasicDeepSD(
        context.dataset.n_areas,
        features.window_minutes,
        context.scale.embeddings,
        dropout=defaults["dropout"],
        seed=seed,
    )
    trainer = Trainer(
        model, TrainingConfig(epochs=defaults["epochs"], best_k=10, seed=seed)
    )
    trainer.fit(train_set, eval_set=test_set)
    predictions = trainer.predict(test_set)
    targets = test_set.gaps.astype(np.float64)
    report = evaluate(predictions, targets)
    return report, float(targets.mean())


def _cached_rows(context: ExperimentContext, name: str, factory) -> List[SweepRow]:
    path = cache_dir() / f"ablation_{name}_{context._tag()}.npz"
    if path.exists():
        with np.load(path, allow_pickle=False) as archive:
            return [
                SweepRow(
                    parameter=str(archive["parameter"][i]),
                    value=float(archive["value"][i]),
                    mae=float(archive["mae"][i]),
                    rmse=float(archive["rmse"][i]),
                    mean_gap=float(archive["mean_gap"][i]),
                )
                for i in range(len(archive["value"]))
            ]
    rows = factory()
    np.savez_compressed(
        path,
        parameter=np.array([row.parameter for row in rows]),
        value=np.array([row.value for row in rows]),
        mae=np.array([row.mae for row in rows]),
        rmse=np.array([row.rmse for row in rows]),
        mean_gap=np.array([row.mean_gap for row in rows]),
    )
    return rows


def horizon_sweep(
    context: ExperimentContext, horizons: Sequence[int] = (5, 10, 20)
) -> List[SweepRow]:
    """Vary the prediction horizon C (paper fixes 10 minutes).

    Longer horizons accumulate more invalid orders per item, so both the
    target scale and the error grow with C.
    """

    def build() -> List[SweepRow]:
        rows = []
        for horizon in horizons:
            features = replace(context.scale.features, gap_minutes=horizon)
            report, mean_gap = _train_basic_on(context, features)
            rows.append(
                SweepRow("gap_minutes", float(horizon), report.mae, report.rmse, mean_gap)
            )
        return rows

    return _cached_rows(context, "horizon", build)


def window_sweep(
    context: ExperimentContext, windows: Sequence[int] = (10, 20, 30)
) -> List[SweepRow]:
    """Vary the lookback window L (paper fixes 20 minutes)."""

    def build() -> List[SweepRow]:
        rows = []
        for window in windows:
            features = replace(context.scale.features, window_minutes=window)
            report, mean_gap = _train_basic_on(context, features)
            rows.append(
                SweepRow("window_minutes", float(window), report.mae, report.rmse, mean_gap)
            )
        return rows

    return _cached_rows(context, "window", build)


def loss_ablation(
    context: ExperimentContext, losses: Sequence[str] = ("mse", "huber", "mae")
) -> List[SweepRow]:
    """Train the advanced model under different losses.

    MSE targets the RMSE metric directly; MAE/Huber trade RMSE for MAE on
    the heavy-tailed gap distribution.
    """

    def build() -> List[SweepRow]:
        defaults = context.training_defaults()
        targets = context.test_set.gaps.astype(np.float64)
        rows = []
        for loss_name in losses:
            model = AdvancedDeepSD(
                context.dataset.n_areas,
                context.scale.features.window_minutes,
                context.scale.embeddings,
                dropout=defaults["dropout"],
                seed=1,
            )
            trainer = Trainer(
                model,
                TrainingConfig(
                    epochs=defaults["epochs"], best_k=10, seed=1, loss=loss_name
                ),
            )
            trainer.fit(context.train_set, eval_set=context.test_set)
            report = evaluate(trainer.predict(context.test_set), targets)
            rows.append(
                SweepRow(f"loss={loss_name}", 0.0, report.mae, report.rmse,
                         float(targets.mean()))
            )
        return rows

    return _cached_rows(context, "loss", build)


def seed_stability(
    context: ExperimentContext, seeds: Sequence[int] = (1, 2, 3)
) -> List[SweepRow]:
    """Advanced-model errors across training seeds (run-to-run variance)."""

    def build() -> List[SweepRow]:
        targets = context.test_set.gaps.astype(np.float64)
        rows = []
        for seed in seeds:
            trained = context.trained("advanced", seed=seed)
            report = evaluate(trained.test_predictions, targets)
            rows.append(
                SweepRow("seed", float(seed), report.mae, report.rmse,
                         float(targets.mean()))
            )
        return rows

    return _cached_rows(context, "seeds", build)


def weekday_weighting_ablation(context: ExperimentContext) -> List[SweepRow]:
    """Learned softmax weekday weights vs fixed uniform pooling.

    Section V-A argues that the right combination of day-of-week history is
    area- and weekday-dependent; the uniform variant pools all history
    equally (a stronger version of the weekday/weekend split prior work
    uses).
    """

    def build() -> List[SweepRow]:
        targets = context.test_set.gaps.astype(np.float64)
        rows = []
        for label, key in (
            ("weekday_weights=learned", "advanced"),
            ("weekday_weights=uniform", "advanced_uniform_weekdays"),
        ):
            trained = context.trained(key)
            report = evaluate(trained.test_predictions, targets)
            rows.append(
                SweepRow(label, 0.0, report.mae, report.rmse, float(targets.mean()))
            )
        return rows

    return _cached_rows(context, "weekday_weighting", build)


def rmse_spread(rows: List[SweepRow]) -> float:
    """Max minus min RMSE over a sweep — the stability measure."""
    values = [row.rmse for row in rows]
    return max(values) - min(values)
