"""Fig. 11 — prediction curves of GBDT vs Advanced DeepSD.

The paper plots ground truth against both models' predictions for sample
areas and highlights regions of rapid variation, where "GBDT is more likely
to overestimate or underestimate the supply-demand gap".  We reproduce the
curves for the most volatile test areas and quantify the claim: on the
rapid-variation subset of test items, Advanced DeepSD's error is lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..eval import prediction_curve, rapid_variation_score, rmse
from .context import ExperimentContext


@dataclass(frozen=True)
class Fig11Result:
    area_id: int
    curve_gbdt: List[Tuple[int, int, float, float]]
    curve_deepsd: List[Tuple[int, int, float, float]]
    rmse_gbdt_rapid: float
    rmse_deepsd_rapid: float
    rmse_gbdt_all: float
    rmse_deepsd_all: float


def run(context: ExperimentContext, *, rapid_quantile: float = 0.8) -> Fig11Result:
    """Curves for the most volatile area + errors on rapid-variation items."""
    test = context.test_set
    targets = test.gaps.astype(np.float64)
    gbdt = context.baseline("gbdt").test_predictions
    deepsd = context.trained("advanced").test_predictions

    # Most volatile area: largest mean absolute step of the true gap curve.
    scores = []
    for area in range(context.dataset.n_areas):
        curve = prediction_curve(
            deepsd, targets, test.area_ids, test.day_ids, test.time_ids, area
        )
        scores.append(rapid_variation_score(curve))
    area_id = int(np.argmax(scores))

    curve_gbdt = prediction_curve(
        gbdt, targets, test.area_ids, test.day_ids, test.time_ids, area_id
    )
    curve_deepsd = prediction_curve(
        deepsd, targets, test.area_ids, test.day_ids, test.time_ids, area_id
    )

    # Rapid-variation items: consecutive-in-day truth steps above the
    # chosen quantile, across all areas.
    rapid_mask = _rapid_item_mask(test, targets, rapid_quantile)
    return Fig11Result(
        area_id=area_id,
        curve_gbdt=curve_gbdt,
        curve_deepsd=curve_deepsd,
        rmse_gbdt_rapid=rmse(gbdt[rapid_mask], targets[rapid_mask]),
        rmse_deepsd_rapid=rmse(deepsd[rapid_mask], targets[rapid_mask]),
        rmse_gbdt_all=rmse(gbdt, targets),
        rmse_deepsd_all=rmse(deepsd, targets),
    )


def _rapid_item_mask(test, targets: np.ndarray, quantile: float) -> np.ndarray:
    """Items whose true gap jumped sharply versus the previous test slot."""
    order = np.lexsort((test.time_ids, test.day_ids, test.area_ids))
    sorted_targets = targets[order]
    same_series = (
        (np.diff(test.area_ids[order]) == 0) & (np.diff(test.day_ids[order]) == 0)
    )
    steps = np.abs(np.diff(sorted_targets))
    steps[~same_series] = 0.0
    threshold = np.quantile(steps[same_series], quantile) if same_series.any() else 0.0
    rapid_sorted = np.zeros(len(targets), dtype=bool)
    rapid_sorted[1:][same_series & (steps >= max(threshold, 1e-9))] = True
    mask = np.zeros(len(targets), dtype=bool)
    mask[order] = rapid_sorted
    if not mask.any():  # degenerate tiny datasets
        mask[:] = True
    return mask
