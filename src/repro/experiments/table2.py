"""Table II — performance comparison of all models.

Paper's reference numbers (Didi data):

=================  =====  =====
Model              MAE    RMSE
=================  =====  =====
Average            14.58  52.94
LASSO               3.82  16.29
GBDT                3.72  15.88
RF                  3.92  17.18
Basic DeepSD        3.56  15.57
Advanced DeepSD     3.30  13.99
=================  =====  =====

The shape to reproduce: both DeepSD variants beat every classical baseline,
the advanced version beats the basic one, and the empirical average is far
behind everything learned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..eval import evaluate
from .context import ExperimentContext

#: The paper's Table II, for EXPERIMENTS.md comparisons.
PAPER_RESULTS = {
    "Average": (14.58, 52.94),
    "LASSO": (3.82, 16.29),
    "GBDT": (3.72, 15.88),
    "RF": (3.92, 17.18),
    "Basic DeepSD": (3.56, 15.57),
    "Advanced DeepSD": (3.30, 13.99),
}


@dataclass(frozen=True)
class Table2Row:
    model: str
    mae: float
    rmse: float


def run(context: ExperimentContext) -> List[Table2Row]:
    """Fit every model and evaluate on the shared test set."""
    targets = context.test_set.gaps.astype(np.float64)
    predictions: Dict[str, np.ndarray] = {
        "Average": context.baseline("average").test_predictions,
        "LASSO": context.baseline("lasso").test_predictions,
        "GBDT": context.baseline("gbdt").test_predictions,
        "RF": context.baseline("rf").test_predictions,
        "Basic DeepSD": context.trained("basic").test_predictions,
        "Advanced DeepSD": context.trained("advanced").test_predictions,
    }
    rows = []
    for name, preds in predictions.items():
        report = evaluate(preds, targets)
        rows.append(Table2Row(model=name, mae=report.mae, rmse=report.rmse))
    return rows


def improvement_over_best_existing(rows: List[Table2Row]) -> float:
    """Advanced DeepSD's relative RMSE improvement over the best baseline.

    The paper reports 11.9% (Advanced DeepSD 13.99 vs GBDT 15.88).
    """
    by_name = {row.model: row for row in rows}
    baselines = [r.rmse for name, r in by_name.items() if "DeepSD" not in name and name != "Average"]
    best_existing = min(baselines)
    advanced = by_name["Advanced DeepSD"].rmse
    return (best_existing - advanced) / best_existing
