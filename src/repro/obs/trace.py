"""Request-scoped span tracing with bounded overhead.

A :class:`Span` is one timed operation — ``(trace_id, span_id,
parent_id, name, start, duration, attrs)``.  A :class:`Tracer` opens
spans as context managers, propagates the active span through a
:mod:`contextvars` variable (so nesting works across ``with`` blocks and,
with explicit context capture, across thread boundaries — see
:meth:`Tracer.current` and the ``parent=`` argument), and stores
completed spans in a fixed-size ring buffer: sustained load overwrites
the oldest spans instead of growing memory.

Design constraints:

- **off by default, near-zero when off** — a disabled tracer's
  :meth:`~Tracer.span` is a single attribute check returning a shared
  no-op context manager; nothing is allocated, timed or stored, so the
  serving and training hot paths are unperturbed (the bitwise-parity
  guarantees in ``tests/serving`` hold with tracing on *and* off —
  tracing observes, never perturbs);
- **bounded** — the ring never reallocates; ``dropped`` counts what
  wrapped away;
- **portable output** — :meth:`Tracer.export` writes Chrome
  ``trace_event`` JSON (one event per line inside a JSON array), which
  opens directly in ``chrome://tracing`` / https://ui.perfetto.dev, and
  ``repro trace FILE`` summarizes the same file into a per-span-name
  latency table (:func:`summarize_spans`).

Cross-thread propagation: new threads start with an empty context, so a
worker that serves requests submitted elsewhere (the serving
``MicroBatcher``) captures ``tracer.current()`` at submit time and passes
it back as ``parent=`` when it opens spans on the worker thread.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "load_chrome_trace",
    "resolve_tracer",
    "set_tracer",
    "summarize_spans",
]


class SpanContext(NamedTuple):
    """The propagatable identity of an open span."""

    trace_id: str
    span_id: str


class Span(NamedTuple):
    """One completed, timed operation."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    duration: float
    attrs: Dict[str, object]
    thread: int

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "thread": self.thread,
        }

    def to_chrome_event(self) -> dict:
        """One Chrome ``trace_event`` complete event (``"ph": "X"``)."""
        args = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }
        args.update(self.attrs)
        return {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(self.start * 1e6, 3),
            "dur": round(self.duration * 1e6, 3),
            "pid": 1,
            "tid": self.thread,
            "args": args,
        }


class _NoopSpan:
    """Shared do-nothing span for disabled tracers (one instance, ever)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NOOP = _NoopSpan()


class _ActiveSpan:
    """An open span: context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "context", "parent_id", "attrs", "_start", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        context: SpanContext,
        parent_id: Optional[str],
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attrs = attrs
        self._start = 0.0
        self._token: Optional[contextvars.Token] = None

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._token = self._tracer._current.set(self.context)
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self._tracer.clock() - self._start
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._store(
            Span(
                trace_id=self.context.trace_id,
                span_id=self.context.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._start,
                duration=duration,
                attrs=self.attrs,
                thread=threading.get_ident(),
            )
        )


class Tracer:
    """Opens, propagates and stores spans in a fixed-size ring buffer.

    Parameters
    ----------
    capacity:
        Ring size — the newest ``capacity`` completed spans are retained;
        older ones are overwritten (counted in :attr:`dropped`).
    clock:
        Monotonic time source (injectable for deterministic tests).
    enabled:
        Off by default; a disabled tracer records nothing and its
        :meth:`span` costs one attribute check.
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self._ring: List[Optional[Span]] = [None] * capacity
        self._next = 0  # total spans ever stored; write slot = _next % capacity
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._current: "contextvars.ContextVar[Optional[SpanContext]]" = (
            contextvars.ContextVar("repro_trace_current", default=None)
        )

    # ------------------------------------------------------------------
    # Opening spans
    # ------------------------------------------------------------------

    def span(self, name: str, parent: Optional[SpanContext] = None, **attrs):
        """Open a span as a context manager.

        The parent is the currently active span in this context unless an
        explicit ``parent=`` :class:`SpanContext` is given (cross-thread
        propagation).  A span with no parent starts a new trace.
        Disabled tracers return a shared no-op context manager.
        """
        if not self.enabled:
            return _NOOP
        if parent is None:
            parent = self._current.get()
        span_id = f"{next(self._ids):x}"
        if parent is None:
            context = SpanContext(trace_id=span_id, span_id=span_id)
            parent_id = None
        else:
            context = SpanContext(trace_id=parent.trace_id, span_id=span_id)
            parent_id = parent.span_id
        return _ActiveSpan(self, name, context, parent_id, attrs)

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        parent: Optional[SpanContext] = None,
        **attrs,
    ) -> None:
        """Store an already-measured span (e.g. a queue wait whose start
        was captured on another thread).  No-op when disabled."""
        if not self.enabled:
            return
        if parent is None:
            parent = self._current.get()
        span_id = f"{next(self._ids):x}"
        trace_id = parent.trace_id if parent is not None else span_id
        self._store(
            Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                start=start,
                duration=duration,
                attrs=attrs,
                thread=threading.get_ident(),
            )
        )

    def current(self) -> Optional[SpanContext]:
        """The active span's context in this thread/context, if any."""
        if not self.enabled:
            return None
        return self._current.get()

    # ------------------------------------------------------------------
    # Ring buffer
    # ------------------------------------------------------------------

    def _store(self, span: Span) -> None:
        with self._lock:
            self._ring[self._next % self.capacity] = span
            self._next += 1

    def spans(self, limit: Optional[int] = None) -> List[Span]:
        """Retained spans, oldest first (newest ``limit`` when given)."""
        with self._lock:
            count = min(self._next, self.capacity)
            start = self._next - count
            out = [self._ring[i % self.capacity] for i in range(start, self._next)]
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out  # type: ignore[return-value]

    def __len__(self) -> int:
        with self._lock:
            return min(self._next, self.capacity)

    @property
    def dropped(self) -> int:
        """Spans overwritten because the ring wrapped."""
        with self._lock:
            return max(self._next - self.capacity, 0)

    def clear(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._next = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome_events(self) -> List[dict]:
        return [span.to_chrome_event() for span in self.spans()]

    def export(self, path: str) -> str:
        """Write retained spans as Chrome ``trace_event`` JSON.

        The file is a valid JSON array with one event per line, so it is
        both loadable with ``json.load`` and greppable line by line; it
        opens directly in ``chrome://tracing`` and Perfetto.  Returns the
        path; the ring is left intact.
        """
        events = self.to_chrome_events()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[\n")
            for index, event in enumerate(events):
                tail = "," if index < len(events) - 1 else ""
                handle.write(json.dumps(event, sort_keys=True) + tail + "\n")
            handle.write("]\n")
        return path


# ----------------------------------------------------------------------
# Default tracer
# ----------------------------------------------------------------------

_default = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until configured)."""
    return _default


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (returns the previous one)."""
    global _default
    previous = _default
    _default = tracer
    return previous


def configure_tracing(
    enabled: Optional[bool] = None,
    capacity: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Tracer:
    """Adjust the default tracer in place (resizing clears the ring)."""
    if capacity is not None and capacity != _default.capacity:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        with _default._lock:
            _default.capacity = capacity
            _default._ring = [None] * capacity
            _default._next = 0
    if enabled is not None:
        _default.enabled = enabled
    if clock is not None:
        _default.clock = clock
    return _default


def resolve_tracer(trace) -> Tracer:
    """Normalize a ``trace=`` knob into a :class:`Tracer`.

    ``None`` → the process default tracer (off unless configured);
    ``True``/``False`` → a fresh private tracer in that state; a
    :class:`Tracer` instance passes through.
    """
    if trace is None:
        return get_tracer()
    if isinstance(trace, Tracer):
        return trace
    if isinstance(trace, bool):
        return Tracer(enabled=trace)
    raise TypeError(f"trace must be None, bool or Tracer, got {type(trace).__name__}")


# ----------------------------------------------------------------------
# Trace-file analysis (the `repro trace` subcommand)
# ----------------------------------------------------------------------


def load_chrome_trace(path: str) -> List[Span]:
    """Parse a file written by :meth:`Tracer.export` back into spans.

    Accepts a complete JSON array or the bracket-tolerant line format
    (chrome://tracing itself tolerates a missing ``]``).  Raises
    ``ValueError`` on malformed events, so tooling fails loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        events = json.loads(text)
    except json.JSONDecodeError:
        events = []
        for line in text.splitlines():
            line = line.strip().rstrip(",")
            if not line or line in ("[", "]"):
                continue
            events.append(json.loads(line))
    if isinstance(events, dict):
        events = events.get("traceEvents", [])
    spans = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            raise ValueError(f"not a Chrome complete event: {event!r}")
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        trace_id = args.pop("trace_id", None)
        parent_id = args.pop("parent_id", None)
        if "name" not in event or "ts" not in event or "dur" not in event:
            raise ValueError(f"event missing name/ts/dur: {event!r}")
        spans.append(
            Span(
                trace_id=str(trace_id) if trace_id is not None else "",
                span_id=str(span_id) if span_id is not None else "",
                parent_id=str(parent_id) if parent_id is not None else None,
                name=str(event["name"]),
                start=float(event["ts"]) / 1e6,
                duration=float(event["dur"]) / 1e6,
                attrs=args,
                thread=int(event.get("tid", 0)),
            )
        )
    return spans


def summarize_spans(spans: Sequence[Span]) -> List[dict]:
    """Per-span-name latency table: count, total, p50/p95/p99, % of parent.

    Percentiles are exact (computed from the sorted durations — a trace
    file is ring-bounded, so this never blows up).  ``pct_of_parent`` is
    the summed duration of spans with this name over the summed duration
    of their distinct (present) parent spans — "where did the parent's
    time go"; a parent with many children of this name counts once.
    Empty for roots or when no parent span made it into the trace.
    """
    by_id = {span.span_id: span for span in spans if span.span_id}
    groups: Dict[str, List[Span]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)

    def exact_quantile(sorted_values: List[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
        return sorted_values[index]

    rows = []
    for name in sorted(groups):
        members = groups[name]
        durations = sorted(span.duration for span in members)
        total = sum(durations)
        parent_total = 0.0
        seen_parents = set()
        for span in members:
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None and parent.span_id not in seen_parents:
                seen_parents.add(parent.span_id)
                parent_total += parent.duration
        rows.append(
            {
                "name": name,
                "count": len(members),
                "total_ms": total * 1e3,
                "p50_ms": exact_quantile(durations, 0.50) * 1e3,
                "p95_ms": exact_quantile(durations, 0.95) * 1e3,
                "p99_ms": exact_quantile(durations, 0.99) * 1e3,
                "pct_of_parent": (
                    100.0 * total / parent_total if parent_total > 0 else None
                ),
            }
        )
    rows.sort(key=lambda row: row["total_ms"], reverse=True)
    return rows
