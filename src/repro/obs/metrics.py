"""Process-local metrics: counters, gauges, histograms and timers.

A :class:`MetricsRegistry` is a plain in-process aggregation sink — no
background threads, no sockets.  Pipeline layers record into the shared
default registry (:func:`get_registry`) under the stable ``repro.*``
namespace documented in ``docs/observability.md``; tests and benchmarks
construct private registries with a fake clock.

Design constraints:

- **off-hot-path** — instrumentation happens at stage/epoch granularity,
  never per minibatch or per order; with ``enabled=False`` every record
  call is a constant-time no-op, so the microbenchmarks are unaffected;
- **injectable clock** — :meth:`MetricsRegistry.timer` reads the
  registry's monotonic clock, so timings are deterministic under test.
  ``REPRO_METRICS=0`` disables the default registry at import time.
"""

from __future__ import annotations

import functools
import json
import math
import os
import re
import threading
import time
from typing import Callable, Dict, Optional

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "configure_metrics",
    "get_registry",
    "record_training_history",
    "set_registry",
]

# Fixed-bucket quantile sketch geometry: log-spaced buckets covering
# 1e-9 .. 1e9 at 20 buckets per decade, i.e. a worst-case relative
# quantile error of 10^(1/20) ≈ 12%.  The geometry is shared by every
# histogram, so memory is a flat 360 ints each — no per-observation
# allocation, no unbounded value lists.
_BUCKETS_PER_DECADE = 20
_LOG_MIN = -9.0
_LOG_MAX = 9.0
_N_BUCKETS = int((_LOG_MAX - _LOG_MIN) * _BUCKETS_PER_DECADE)  # 360


class Histogram:
    """Streaming summary plus a fixed-bucket quantile sketch.

    Tracks exact count/total/min/max and a bounded log-bucket histogram
    of the observed magnitudes, from which :meth:`quantile` (and the
    ``p50``/``p95``/``p99`` properties) estimate percentiles to within
    one bucket (~12% relative).  Values ≤ 0 land in the underflow
    bucket; estimates are clamped to the exact observed ``[min, max]``.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets = [0] * _N_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._buckets[self._index(value)] += 1

    @staticmethod
    def _index(value: float) -> int:
        if value <= 0.0:
            return 0
        index = int((math.log10(value) - _LOG_MIN) * _BUCKETS_PER_DECADE)
        return min(max(index, 0), _N_BUCKETS - 1)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the observations."""
        if self.count == 0:
            return 0.0
        target = min(max(q, 0.0), 1.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._buckets):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                # Geometric midpoint of the bucket, clamped to the exact
                # observed range (a one-element bucket reports exactly).
                mid = 10.0 ** (_LOG_MIN + (index + 0.5) / _BUCKETS_PER_DECADE)
                return min(max(mid, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.p50 if self.count else None,
            "p95": self.p95 if self.count else None,
            "p99": self.p99 if self.count else None,
        }


class Timer:
    """Times a block (context manager) or a function (decorator).

    The elapsed seconds are read from the owning registry's clock and
    recorded into the histogram ``name`` on exit; ``.elapsed`` holds the
    last measurement either way, even when the registry is disabled —
    callers that need the duration (e.g. experiment bookkeeping) can rely
    on it without caring whether metrics are on.
    """

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name
        self.elapsed: float = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = self._registry.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self._registry.clock() - (self._started or 0.0)
        self._started = None
        self._registry.observe(self.name, self.elapsed)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with Timer(self._registry, self.name):
                return fn(*args, **kwargs)

        return wrapper


class MetricsRegistry:
    """Counters, gauges and histograms keyed by dotted metric name."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
    ):
        self.clock = clock
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        # Serving records from request threads and the batcher concurrently;
        # a single lock keeps read-modify-write updates exact.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def counter(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonically growing counter."""
        if self.enabled:
            with self._lock:
                self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        if self.enabled:
            with self._lock:
                self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram."""
        if self.enabled:
            with self._lock:
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.observe(float(value))

    def timer(self, name: str) -> Timer:
        """A :class:`Timer` recording into histogram ``name``."""
        return Timer(self, name)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every metric.

        Dotted ``repro.*`` names become underscore-separated; histograms
        export as summaries with ``quantile="0.5|0.95|0.99"`` sample
        lines plus ``_sum``/``_count`` — the shape Prometheus scrapers
        and ``promtool`` expect from the ``/metrics`` endpoint.
        """

        def sanitize(name: str) -> str:
            clean = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
            return clean if not clean[:1].isdigit() else f"_{clean}"

        def fmt(value: float) -> str:
            return repr(float(value))

        lines = []
        with self._lock:
            for name in sorted(self.counters):
                metric = sanitize(name)
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {fmt(self.counters[name])}")
            for name in sorted(self.gauges):
                metric = sanitize(name)
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {fmt(self.gauges[name])}")
            for name in sorted(self.histograms):
                metric = sanitize(name)
                histogram = self.histograms[name]
                lines.append(f"# TYPE {metric} summary")
                for label, value in (
                    ("0.5", histogram.p50),
                    ("0.95", histogram.p95),
                    ("0.99", histogram.p99),
                ):
                    lines.append(f'{metric}{{quantile="{label}"}} {fmt(value)}')
                lines.append(f"{metric}_sum {fmt(histogram.total)}")
                lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_default = MetricsRegistry(enabled=os.environ.get("REPRO_METRICS", "1") != "0")


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the pipeline records into."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _default
    previous = _default
    _default = registry
    return previous


def configure_metrics(
    enabled: Optional[bool] = None,
    clock: Optional[Callable[[], float]] = None,
) -> MetricsRegistry:
    """Adjust the default registry in place."""
    if enabled is not None:
        _default.enabled = enabled
    if clock is not None:
        _default.clock = clock
    return _default


def record_training_history(
    history,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "repro.train",
) -> None:
    """Bridge a :class:`repro.core.TrainingHistory` into a registry.

    Duck-typed on the history's list attributes so ``repro.obs`` stays
    import-free of the model stack.
    """
    registry = registry or get_registry()
    if not registry.enabled:
        return
    registry.gauge(f"{prefix}.epochs", history.n_epochs)
    if history.train_loss:
        registry.gauge(f"{prefix}.final_loss", history.train_loss[-1])
        registry.gauge(f"{prefix}.best_loss", min(history.train_loss))
    if history.eval_rmse:
        registry.gauge(f"{prefix}.best_rmse", min(history.eval_rmse))
    if history.eval_mae:
        registry.gauge(f"{prefix}.best_mae", min(history.eval_mae))
    for seconds in history.epoch_seconds:
        registry.observe(f"{prefix}.epoch_seconds", seconds)
