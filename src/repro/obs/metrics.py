"""Process-local metrics: counters, gauges, histograms and timers.

A :class:`MetricsRegistry` is a plain in-process aggregation sink — no
background threads, no sockets.  Pipeline layers record into the shared
default registry (:func:`get_registry`) under the stable ``repro.*``
namespace documented in ``docs/observability.md``; tests and benchmarks
construct private registries with a fake clock.

Design constraints:

- **off-hot-path** — instrumentation happens at stage/epoch granularity,
  never per minibatch or per order; with ``enabled=False`` every record
  call is a constant-time no-op, so the microbenchmarks are unaffected;
- **injectable clock** — :meth:`MetricsRegistry.timer` reads the
  registry's monotonic clock, so timings are deterministic under test.
  ``REPRO_METRICS=0`` disables the default registry at import time.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "configure_metrics",
    "get_registry",
    "record_training_history",
    "set_registry",
]


@dataclass
class Histogram:
    """Streaming summary of observed values (count/total/min/max)."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Timer:
    """Times a block (context manager) or a function (decorator).

    The elapsed seconds are read from the owning registry's clock and
    recorded into the histogram ``name`` on exit; ``.elapsed`` holds the
    last measurement either way, even when the registry is disabled —
    callers that need the duration (e.g. experiment bookkeeping) can rely
    on it without caring whether metrics are on.
    """

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name
        self.elapsed: float = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = self._registry.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self._registry.clock() - (self._started or 0.0)
        self._started = None
        self._registry.observe(self.name, self.elapsed)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with Timer(self._registry, self.name):
                return fn(*args, **kwargs)

        return wrapper


class MetricsRegistry:
    """Counters, gauges and histograms keyed by dotted metric name."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
    ):
        self.clock = clock
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        # Serving records from request threads and the batcher concurrently;
        # a single lock keeps read-modify-write updates exact.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def counter(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonically growing counter."""
        if self.enabled:
            with self._lock:
                self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        if self.enabled:
            with self._lock:
                self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram."""
        if self.enabled:
            with self._lock:
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.observe(float(value))

    def timer(self, name: str) -> Timer:
        """A :class:`Timer` recording into histogram ``name``."""
        return Timer(self, name)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_default = MetricsRegistry(enabled=os.environ.get("REPRO_METRICS", "1") != "0")


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the pipeline records into."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _default
    previous = _default
    _default = registry
    return previous


def configure_metrics(
    enabled: Optional[bool] = None,
    clock: Optional[Callable[[], float]] = None,
) -> MetricsRegistry:
    """Adjust the default registry in place."""
    if enabled is not None:
        _default.enabled = enabled
    if clock is not None:
        _default.clock = clock
    return _default


def record_training_history(
    history,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "repro.train",
) -> None:
    """Bridge a :class:`repro.core.TrainingHistory` into a registry.

    Duck-typed on the history's list attributes so ``repro.obs`` stays
    import-free of the model stack.
    """
    registry = registry or get_registry()
    if not registry.enabled:
        return
    registry.gauge(f"{prefix}.epochs", history.n_epochs)
    if history.train_loss:
        registry.gauge(f"{prefix}.final_loss", history.train_loss[-1])
        registry.gauge(f"{prefix}.best_loss", min(history.train_loss))
    if history.eval_rmse:
        registry.gauge(f"{prefix}.best_rmse", min(history.eval_rmse))
    if history.eval_mae:
        registry.gauge(f"{prefix}.best_mae", min(history.eval_mae))
    for seconds in history.epoch_seconds:
        registry.observe(f"{prefix}.epoch_seconds", seconds)
