"""Observability: structured logging, metrics and run manifests.

The three pillars the pipeline is instrumented with (see
``docs/observability.md`` for formats and the metric-name namespace):

- :mod:`repro.obs.logging` — ``get_logger(name)`` structured event
  loggers, configured once via :func:`configure_logging`;
- :mod:`repro.obs.metrics` — the process-local :class:`MetricsRegistry`
  (counters / gauges / histograms / timers) behind :func:`get_registry`;
- :mod:`repro.obs.manifest` — :class:`RunManifest`, the JSON run record
  written next to every CLI artifact and read by ``repro report``.
"""

from .logging import (
    LEVELS,
    EventLogger,
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    parse_level,
)
from .manifest import MANIFEST_SUFFIX, RunManifest, describe_version
from .metrics import (
    Histogram,
    MetricsRegistry,
    Timer,
    configure_metrics,
    get_registry,
    record_training_history,
    set_registry,
)

__all__ = [
    "LEVELS",
    "EventLogger",
    "Histogram",
    "JsonFormatter",
    "KeyValueFormatter",
    "MANIFEST_SUFFIX",
    "MetricsRegistry",
    "RunManifest",
    "Timer",
    "configure_logging",
    "configure_metrics",
    "describe_version",
    "get_logger",
    "get_registry",
    "parse_level",
    "record_training_history",
    "set_registry",
]
