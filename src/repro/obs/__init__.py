"""Observability: structured logging, metrics, tracing and run manifests.

The four pillars the pipeline is instrumented with (see
``docs/observability.md`` for formats and the metric-name namespace):

- :mod:`repro.obs.logging` — ``get_logger(name)`` structured event
  loggers, configured once via :func:`configure_logging`;
- :mod:`repro.obs.metrics` — the process-local :class:`MetricsRegistry`
  (counters / gauges / quantile-sketch histograms / timers) behind
  :func:`get_registry`, exportable as Prometheus text;
- :mod:`repro.obs.trace` — request-scoped :class:`Tracer` spans with a
  bounded ring buffer and Chrome ``trace_event`` export, off by default;
- :mod:`repro.obs.manifest` — :class:`RunManifest`, the JSON run record
  written next to every CLI artifact and read by ``repro report``.
"""

from .logging import (
    LEVELS,
    EventLogger,
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    parse_level,
)
from .manifest import MANIFEST_SUFFIX, RunManifest, describe_version
from .metrics import (
    Histogram,
    MetricsRegistry,
    Timer,
    configure_metrics,
    get_registry,
    record_training_history,
    set_registry,
)
from .trace import (
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    get_tracer,
    load_chrome_trace,
    resolve_tracer,
    set_tracer,
    summarize_spans,
)

__all__ = [
    "LEVELS",
    "EventLogger",
    "Histogram",
    "JsonFormatter",
    "KeyValueFormatter",
    "MANIFEST_SUFFIX",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "SpanContext",
    "Timer",
    "Tracer",
    "configure_logging",
    "configure_metrics",
    "configure_tracing",
    "describe_version",
    "get_logger",
    "get_registry",
    "get_tracer",
    "load_chrome_trace",
    "parse_level",
    "record_training_history",
    "resolve_tracer",
    "set_registry",
    "set_tracer",
    "summarize_spans",
]
