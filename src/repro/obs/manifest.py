"""Run manifests: a persisted JSON record of what a pipeline stage did.

Every CLI command writes a :class:`RunManifest` next to its primary
artifact (``<out>.manifest.json``) capturing the command, its config,
the seed, a git-describe-style version, per-stage wall-clock timings and
the final metrics.  ``repro report`` reads one or more manifests back
and renders a stage-timing + metric summary table.
"""

from __future__ import annotations

import json
import os
import subprocess
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Iterator, List, Optional

import time

__all__ = ["MANIFEST_SUFFIX", "RunManifest", "describe_version"]

MANIFEST_SUFFIX = ".manifest.json"
SCHEMA_VERSION = 2


def describe_version() -> str:
    """``git describe``-style version, falling back to the package version."""
    try:
        out = subprocess.run(
            ["git", "describe", "--tags", "--always", "--dirty"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    from .. import __version__

    return f"repro-{__version__}"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class RunManifest:
    """Record of one pipeline run (see ``docs/observability.md`` §Manifests)."""

    command: str
    config: dict = field(default_factory=dict)
    seed: Optional[int] = None
    version: str = ""
    created_at: str = ""
    stages: List[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    artifacts: dict = field(default_factory=dict)
    resume: Optional[dict] = None
    schema_version: int = SCHEMA_VERSION
    _clock: Callable[[], float] = field(
        default=time.perf_counter, repr=False, compare=False
    )

    @classmethod
    def begin(
        cls,
        command: str,
        *,
        config: Optional[dict] = None,
        seed: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "RunManifest":
        """Start a manifest for a run that is about to execute."""
        return cls(
            command=command,
            config=dict(config or {}),
            seed=seed,
            version=describe_version(),
            created_at=_utc_now(),
            _clock=clock,
        )

    # ------------------------------------------------------------------
    # Stage timings
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a pipeline stage: ``with manifest.stage("featurize"): ...``."""
        started = self._clock()
        try:
            yield
        finally:
            self.add_stage(name, self._clock() - started)

    def add_stage(self, name: str, seconds: float) -> None:
        self.stages.append({"name": name, "seconds": float(seconds)})

    @property
    def total_seconds(self) -> float:
        return float(sum(stage["seconds"] for stage in self.stages))

    def record(self, **metrics) -> None:
        """Merge final metrics (numbers keyed by dotted name)."""
        self.metrics.update(metrics)

    def mark_resumed(self, source: str, epoch: int) -> None:
        """Record that this run continued from a training checkpoint.

        ``source`` is the checkpoint the run restarted from and ``epoch``
        the number of epochs it had already completed — the provenance a
        reader needs to reconstruct the full history of a spliced run.
        """
        self.resume = {"from": os.fspath(source), "epoch": int(epoch)}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @staticmethod
    def default_path(artifact: str | os.PathLike) -> str:
        """``<artifact>.manifest.json`` — the manifest's home beside its artifact."""
        return os.fspath(artifact) + MANIFEST_SUFFIX

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "command": self.command,
            "config": self.config,
            "seed": self.seed,
            "version": self.version,
            "created_at": self.created_at,
            "stages": self.stages,
            "total_seconds": self.total_seconds,
            "metrics": self.metrics,
            "artifacts": self.artifacts,
            "resume": self.resume,
        }

    def write(
        self,
        path: Optional[str | os.PathLike] = None,
        *,
        artifact: Optional[str | os.PathLike] = None,
    ) -> str:
        """Serialize to ``path`` (or next to ``artifact``); returns the path."""
        if path is None:
            if artifact is None:
                raise ValueError("write() needs a path or an artifact")
            path = self.default_path(artifact)
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunManifest":
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            command=payload.get("command", "?"),
            config=payload.get("config", {}),
            seed=payload.get("seed"),
            version=payload.get("version", ""),
            created_at=payload.get("created_at", ""),
            stages=list(payload.get("stages", [])),
            metrics=payload.get("metrics", {}),
            artifacts=payload.get("artifacts", {}),
            resume=payload.get("resume"),
            schema_version=payload.get("schema_version", SCHEMA_VERSION),
        )
