"""Structured logging for the repro pipeline.

Library modules obtain a logger with :func:`get_logger` and emit *events* —
named records carrying key=value fields — via :meth:`EventLogger.event`.
Nothing is printed until :func:`configure_logging` installs a handler
(the CLI does this once from its ``--log-level/--log-format/--log-file``
options); until then the ``repro`` logger tree carries a ``NullHandler``
so importing the library stays silent.

Two output formats are supported:

- ``kv`` — one ``ts=... level=... logger=... event=... k=v`` line per
  record, grep-friendly;
- ``json`` — one JSON object per line (JSON-lines), machine-friendly.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

__all__ = [
    "EventLogger",
    "JsonFormatter",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
    "parse_level",
]

#: Root of the library's logger namespace.
ROOT_LOGGER = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

FORMATS = ("kv", "json")

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def parse_level(level: int | str) -> int:
    """Accept either a numeric level or a name like ``"info"``."""
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; known: {sorted(LEVELS)}"
        ) from None


def _render_value(value: object) -> str:
    """Render one field value for the kv format."""
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = str(value).lower()
    else:
        text = str(value)
    if any(c.isspace() for c in text) or text == "":
        text = '"' + text.replace('"', r"\"") + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... [event=...] [msg=...] k=v ...``"""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record, _TIME_FORMAT)}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
        ]
        event = getattr(record, "event", None)
        if event:
            parts.append(f"event={event}")
        message = record.getMessage()
        if message:
            parts.append(f"msg={_render_value(message)}")
        for key, value in getattr(record, "fields", {}).items():
            parts.append(f"{key}={_render_value(value)}")
        if record.exc_info:
            parts.append(f"exc={_render_value(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per record (JSON-lines)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": self.formatTime(record, _TIME_FORMAT),
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        event = getattr(record, "event", None)
        if event:
            payload["event"] = event
        message = record.getMessage()
        if message:
            payload["msg"] = message
        payload.update(getattr(record, "fields", {}))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class EventLogger:
    """Thin wrapper over :class:`logging.Logger` adding structured events.

    ``event(name, **fields)`` emits a record whose formatter-visible
    payload is the event name plus the fields; the standard ``debug`` /
    ``info`` / ``warning`` / ``error`` methods also accept ``**fields``.
    """

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    def event(self, name: str, *, level: int = logging.INFO, **fields) -> None:
        """Emit a named structured event, e.g. ``event("train.epoch", loss=…)``."""
        if self._logger.isEnabledFor(level):
            self._logger.log(level, "", extra={"event": name, "fields": fields})

    def _log(self, level: int, message: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, message, extra={"fields": fields})

    def debug(self, message: str, **fields) -> None:
        self._log(logging.DEBUG, message, fields)

    def info(self, message: str, **fields) -> None:
        self._log(logging.INFO, message, fields)

    def warning(self, message: str, **fields) -> None:
        self._log(logging.WARNING, message, fields)

    def error(self, message: str, **fields) -> None:
        self._log(logging.ERROR, message, fields)


def get_logger(name: str) -> EventLogger:
    """Structured logger under the ``repro`` namespace.

    ``name`` is typically ``__name__``; names outside the namespace are
    prefixed so every library logger shares the one configuration root.
    """
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return EventLogger(logging.getLogger(name))


class _StderrProxy:
    """File-like object resolving ``sys.stderr`` at write time.

    Binding the live attribute (not a snapshot) keeps the handler valid
    when test harnesses swap ``sys.stderr`` per test.
    """

    def write(self, text: str) -> int:
        return sys.stderr.write(text)

    def flush(self) -> None:
        try:
            sys.stderr.flush()
        except (ValueError, OSError):  # pragma: no cover - closed stream
            pass


def configure_logging(
    level: int | str = "info",
    fmt: str = "kv",
    file: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Handler:
    """Install one handler on the ``repro`` logger tree (idempotent).

    Called once by the CLI from ``--log-level/--log-format/--log-file``;
    programmatic users may call it directly.  ``file`` wins over
    ``stream``; the default sink is ``sys.stderr``.  Returns the handler
    (tests use it to flush/close).
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown log format {fmt!r}; known: {FORMATS}")
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
            handler.close()
    if file:
        handler: logging.Handler = logging.FileHandler(file, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream or _StderrProxy())
    handler.setFormatter(KeyValueFormatter() if fmt == "kv" else JsonFormatter())
    root.addHandler(handler)
    root.setLevel(parse_level(level))
    root.propagate = False
    return handler
