"""Configuration objects for simulation, featurization and experiments.

Three layers of configuration:

- :class:`SimulationConfig` — how the synthetic city is generated;
- :class:`FeatureConfig` — the paper's featurization constants (window size
  L, gap horizon C, embedding widths, train/test item protocol);
- :class:`ExperimentScale` — bundled presets (``paper``, ``bench``,
  ``tiny``) trading fidelity against CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .exceptions import ConfigError


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of the synthetic city simulation."""

    n_areas: int = 58
    n_days: int = 52
    start_weekday: int = 0
    seed: int = 20170301
    base_demand_rate: float = 2.2
    supply_headroom: float = 1.6
    supply_lag_minutes: int = 15
    idle_persistence: float = 0.9
    max_idle_pool: int = 100
    retry_probability: float = 0.72
    retry_min_delay: int = 1
    retry_max_delay: int = 4
    retry_max_attempts: int = 4
    weather_coupling: float = 1.0
    traffic_coupling: float = 1.0
    events_per_week: float = 0.0

    def __post_init__(self) -> None:
        if self.n_areas <= 0:
            raise ConfigError(f"n_areas must be positive, got {self.n_areas}")
        if self.events_per_week < 0:
            raise ConfigError("events_per_week must be non-negative")
        if self.n_days <= 0:
            raise ConfigError(f"n_days must be positive, got {self.n_days}")
        if not 0 <= self.start_weekday < 7:
            raise ConfigError("start_weekday must be in [0, 7)")
        if self.base_demand_rate <= 0:
            raise ConfigError("base_demand_rate must be positive")


@dataclass(frozen=True)
class FeatureConfig:
    """The paper's featurization constants (Sections II, IV, VI).

    Attributes
    ----------
    window_minutes:
        L — how many past minutes feed the real-time vectors (paper: 20).
    gap_minutes:
        C — length of the prediction interval (paper: 10).
    train_days / test_days:
        Chronological split: the first ``train_days`` days are training,
        the following ``test_days`` are test (paper: 24 / 28).
    train_start_minute / train_stride_minutes:
        One training item per area every ``train_stride_minutes`` from
        ``train_start_minute`` to the end of day (paper: every 5 minutes
        from 0:20).
    test_start_minute / test_end_minute / test_stride_minutes:
        Test items every ``test_stride_minutes`` between the bounds
        (paper: every 2 hours from 7:30 to 23:30).
    projection_dim:
        Width of the projection space in the extended blocks (paper: 16).
    """

    window_minutes: int = 20
    gap_minutes: int = 10
    train_days: int = 24
    test_days: int = 28
    train_start_minute: int = 20
    train_stride_minutes: int = 5
    test_start_minute: int = 450   # 7:30
    test_end_minute: int = 1410    # 23:30
    test_stride_minutes: int = 120
    projection_dim: int = 16

    def __post_init__(self) -> None:
        if self.window_minutes <= 0 or self.gap_minutes <= 0:
            raise ConfigError("window_minutes and gap_minutes must be positive")
        if self.train_start_minute < self.window_minutes:
            raise ConfigError(
                "train_start_minute must be >= window_minutes so the lookback "
                "window fits inside the day"
            )
        if self.train_days <= 0 or self.test_days <= 0:
            raise ConfigError("train_days and test_days must be positive")
        if self.test_start_minute < self.window_minutes:
            raise ConfigError("test_start_minute must be >= window_minutes")
        if self.test_end_minute + self.gap_minutes > 1440:
            raise ConfigError("test_end_minute + gap_minutes must fit in the day")
        if self.train_stride_minutes <= 0 or self.test_stride_minutes <= 0:
            raise ConfigError("strides must be positive")

    @property
    def n_days(self) -> int:
        return self.train_days + self.test_days

    def train_timeslots(self) -> range:
        """Timeslots at which training items are generated each day."""
        return range(
            self.train_start_minute,
            1440 - self.gap_minutes + 1,
            self.train_stride_minutes,
        )

    def test_timeslots(self) -> range:
        """Timeslots at which test items are generated each day."""
        return range(
            self.test_start_minute,
            self.test_end_minute + 1,
            self.test_stride_minutes,
        )


@dataclass(frozen=True)
class EmbeddingConfig:
    """Embedding widths from the paper's Table I."""

    area_dim: int = 8
    time_dim: int = 6
    week_dim: int = 3
    weather_type_dim: int = 3
    time_vocab: int = 1440
    week_vocab: int = 7
    weather_type_vocab: int = 10

    def __post_init__(self) -> None:
        for name in ("area_dim", "time_dim", "week_dim", "weather_type_dim"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass(frozen=True)
class ExperimentScale:
    """A named bundle of simulation + feature configuration."""

    name: str
    simulation: SimulationConfig
    features: FeatureConfig
    embeddings: EmbeddingConfig = field(default_factory=EmbeddingConfig)

    def __post_init__(self) -> None:
        if self.simulation.n_days < self.features.n_days:
            raise ConfigError(
                f"simulation covers {self.simulation.n_days} days but the "
                f"feature split needs {self.features.n_days}"
            )


def paper_scale(seed: int = 20170301) -> ExperimentScale:
    """The paper's full protocol: 58 areas, 24+28 days, 5-minute items.

    CPU-heavy — expect hours of featurization + training on a laptop.
    """
    return ExperimentScale(
        name="paper",
        simulation=SimulationConfig(n_areas=58, n_days=52, seed=seed),
        features=FeatureConfig(),
    )


def bench_scale(seed: int = 20170301) -> ExperimentScale:
    """Reduced scale for the benchmark harness: same protocol ratios.

    20 areas, 14 train + 7 test days, one training item every 30 minutes and
    one test item every 2 hours.  Small enough to train DeepSD on a CPU in
    minutes, large enough for the paper's comparisons to be meaningful.

    The training grid starts at 0:30 so that every test timeslot (7:30,
    9:30, …) is also a training timeslot — the paper's 5-minute training
    grid covers its test slots the same way, and TimeID embeddings are only
    trained for timeslots that occur in training items.
    """
    return ExperimentScale(
        name="bench",
        simulation=SimulationConfig(n_areas=20, n_days=21, seed=seed),
        features=FeatureConfig(
            train_days=14,
            test_days=7,
            train_start_minute=30,
            train_stride_minutes=30,
            test_stride_minutes=120,
        ),
    )


def tiny_scale(seed: int = 7) -> ExperimentScale:
    """Minimal scale for unit/integration tests (seconds, not minutes)."""
    return ExperimentScale(
        name="tiny",
        simulation=SimulationConfig(
            n_areas=6, n_days=10, seed=seed, base_demand_rate=1.2
        ),
        features=FeatureConfig(
            train_days=7,
            test_days=3,
            train_start_minute=30,
            train_stride_minutes=60,
            test_stride_minutes=240,
        ),
    )


SCALES = {
    "paper": paper_scale,
    "bench": bench_scale,
    "tiny": tiny_scale,
}


def get_scale(name: str, seed: int | None = None) -> ExperimentScale:
    """Look up a preset scale by name."""
    try:
        factory = SCALES[name]
    except KeyError:
        raise ConfigError(f"unknown scale {name!r}; known: {sorted(SCALES)}") from None
    return factory() if seed is None else factory(seed)


def with_seed(scale: ExperimentScale, seed: int) -> ExperimentScale:
    """Copy of ``scale`` with a different simulation seed."""
    return replace(scale, simulation=replace(scale.simulation, seed=seed))
