"""The advanced model's extended order blocks (Section V).

Each extended block handles one signal (supply-demand, last-call or
waiting-time) and implements the two-stage construction of Section V-A:

1. combine the per-weekday historical vectors ``H^(Mon..Sun)`` into the
   empirical estimates ``E^{d,t}`` and ``E^{d,t+C}`` using softmax weights
   learned from (AreaID, WeekID);
2. project ``V^{d,t}``, ``E^{d,t}`` and ``E^{d,t+C}`` into a shared
   low-dimensional space, estimate
   ``Proj(V^{d,t+C}) = Proj(E^{d,t+C}) + Proj(V^{d,t}) − Proj(E^{d,t})``
   (the real-time deviation from the empirical pattern is carried forward),
   and feed the four projections through FC64 → FC32.

Blocks are chained with the same block-level residual connections as the
environment blocks.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import EmbeddingConfig
from ..nn import Dense, Module, Tensor, concat
from .blocks import BLOCK_WIDTH, HIDDEN_WIDTH, WeekdayCombiner


def combine_history(weights: Tensor, history: np.ndarray) -> Tensor:
    """Weighted sum over the weekday axis: ``E = Σ_w p_w · H^(w)``.

    ``weights`` is a differentiable (n, 7) tensor, ``history`` a constant
    (n, 7, dim) array; the result is a (n, dim) tensor through which
    gradients flow into the weights.
    """
    if weights.shape[1] != 7 or history.ndim != 3 or history.shape[1] != 7:
        raise ValueError(
            f"expected (n, 7) weights and (n, 7, dim) history, got "
            f"{weights.shape} and {history.shape}"
        )
    total = None
    for weekday in range(7):
        term = weights.slice_cols(weekday, weekday + 1) * Tensor(history[:, weekday, :])
        total = term if total is None else total + term
    return total


class ExtendedBlock(Module):
    """Extended supply-demand / last-call / waiting-time block (Fig. 9).

    Parameters
    ----------
    signal:
        ``"sd"``, ``"lc"`` or ``"wt"`` — selects the batch fields
        ``{signal}_now``, ``{signal}_hist`` and ``{signal}_hist_next``.
    residual_input:
        Whether the block receives the previous block's output through a
        direct connection and adds its FC32 output as a residual.  The
        first block in the chain sets this to False.
    uniform_weights:
        Ablation switch: replace the learned softmax combiner with fixed
        uniform weights p = (1/7, …, 1/7) — i.e. pool all history equally,
        the naive strategy Section V-A argues against.
    """

    def __init__(
        self,
        signal: str,
        window: int,
        n_areas: int,
        embeddings: EmbeddingConfig,
        projection_dim: int,
        rng: np.random.Generator,
        *,
        residual_input: bool = True,
        uniform_weights: bool = False,
    ) -> None:
        super().__init__()
        if signal not in ("sd", "lc", "wt"):
            raise ValueError(f"unknown signal {signal!r}")
        if projection_dim <= 0:
            raise ValueError("projection_dim must be positive")
        self.signal = signal
        self.residual_input = residual_input
        self.uniform_weights = uniform_weights
        self.combiner = WeekdayCombiner(n_areas, embeddings, rng)
        # One shared projection makes Proj(V) - Proj(E) a deviation in a
        # common space, which is the point of the construction.
        self.projection = Dense(2 * window, projection_dim, rng=rng)
        in_dim = 4 * projection_dim + (BLOCK_WIDTH if residual_input else 0)
        self.hidden = Dense(in_dim, HIDDEN_WIDTH, rng=rng)
        self.output = Dense(HIDDEN_WIDTH, BLOCK_WIDTH, rng=rng)
        self.output_dim = BLOCK_WIDTH

    def forward(
        self, batch: Dict[str, np.ndarray], x_prev: Optional[Tensor] = None
    ) -> Tensor:
        if self.uniform_weights:
            n = len(batch["area_ids"])
            weights = Tensor(np.full((n, 7), 1.0 / 7.0))
        else:
            weights = self.combiner(batch)
        v_now = Tensor(batch[f"{self.signal}_now"])
        e_now = combine_history(weights, batch[f"{self.signal}_hist"])
        e_next = combine_history(weights, batch[f"{self.signal}_hist_next"])

        proj_v = self.projection(v_now)
        proj_e = self.projection(e_now)
        proj_e_next = self.projection(e_next)
        estimated_next = proj_e_next + proj_v - proj_e

        parts = [proj_v, proj_e, proj_e_next, estimated_next]
        if self.residual_input:
            if x_prev is None:
                raise ValueError("block was built with residual_input=True")
            features = concat([x_prev] + parts, axis=1)
            return x_prev + self.output(self.hidden(features))
        return self.output(self.hidden(concat(parts, axis=1)))

    def weekday_weights(self, area_id: int, week_id: int) -> np.ndarray:
        """Learned combining weights for one (area, weekday) — Fig. 15."""
        return self.combiner.weights_for(area_id, week_id)
