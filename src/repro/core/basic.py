"""Basic DeepSD (Section IV, Fig. 3).

Identity part (embedded AreaID/TimeID/WeekID) + order part (supply-demand
block) + environment part (weather and traffic blocks chained through
block-level residual learning), a concatenation and an FC32 + linear output
neuron.  Dropout (p = 0.5) follows every block except the identity block.

Constructor flags expose the paper's ablations:

- ``identity_encoding='onehot'`` — Table III (embedding vs one-hot);
- ``residual=False`` — Table V / Fig. 14 (concatenate block outputs instead
  of residual chaining);
- ``use_weather`` / ``use_traffic`` — Fig. 13's cases A/B/C and the Fig. 16
  fine-tuning experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import EmbeddingConfig
from ..nn import Dropout, Module, Tensor, concat
from .normalization import InputScales
from .blocks import (
    BLOCK_WIDTH,
    IdentityBlock,
    OneHotIdentityBlock,
    OutputHead,
    SupplyDemandBlock,
    TrafficBlock,
    WeatherBlock,
)


class BasicDeepSD(Module):
    """The basic DeepSD network.

    Parameters
    ----------
    n_areas:
        Vocabulary size of AreaID.
    window:
        The paper's L (lookback minutes); input vectors are 2L wide.
    embeddings:
        Embedding widths (Table I).
    identity_encoding:
        ``"embedding"`` (paper default) or ``"onehot"`` (Table III ablation).
    residual:
        Block-level residual learning on (default) or the concatenation
        ablation (Table V).
    use_weather, use_traffic:
        Include the environment blocks (Fig. 13 cases).
    dropout:
        Dropout probability after each non-identity block.
    seed:
        Seed for weight init and dropout noise.
    """

    def __init__(
        self,
        n_areas: int,
        window: int,
        embeddings: Optional[EmbeddingConfig] = None,
        *,
        identity_encoding: str = "embedding",
        residual: bool = True,
        use_weather: bool = True,
        use_traffic: bool = True,
        dropout: float = 0.5,
        seed: int = 0,
        input_scales: "InputScales | None" = None,
    ) -> None:
        super().__init__()
        embeddings = embeddings or EmbeddingConfig()
        rng = np.random.default_rng(seed)
        self.window = window
        self.input_scales = input_scales
        self.residual = residual
        self.use_weather = use_weather
        self.use_traffic = use_traffic
        # One-hot identity encoding allocates fresh arrays per forward, which
        # the execution tape (repro.nn.tape) cannot replay.
        self.tape_safe = identity_encoding == "embedding"

        if identity_encoding == "embedding":
            self.identity = IdentityBlock(n_areas, embeddings, rng)
        elif identity_encoding == "onehot":
            self.identity = OneHotIdentityBlock(n_areas, embeddings)
        else:
            raise ValueError(
                f"identity_encoding must be 'embedding' or 'onehot', "
                f"got {identity_encoding!r}"
            )

        self.sd_block = SupplyDemandBlock(window, rng)
        self.weather_block = (
            WeatherBlock(window, embeddings, rng, residual=residual)
            if use_weather
            else None
        )
        self.traffic_block = (
            TrafficBlock(window, rng, residual=residual) if use_traffic else None
        )

        n_blocks = 1 + int(use_weather) + int(use_traffic)
        blocks_dim = BLOCK_WIDTH if residual else BLOCK_WIDTH * n_blocks
        self.head = OutputHead(self.identity.output_dim + blocks_dim, rng)

        self.sd_dropout = Dropout(dropout, rng=np.random.default_rng(seed + 1))
        self.weather_dropout = Dropout(dropout, rng=np.random.default_rng(seed + 2))
        self.traffic_dropout = Dropout(dropout, rng=np.random.default_rng(seed + 3))

        # The batch fields forward() reads — the trainer gathers only these
        # per epoch instead of every ExampleSet field (the basic model never
        # touches the six (n, 7, 2L) history arrays, the bulk of the data).
        fields = ["area_ids", "time_ids", "week_ids", "sd_now"]
        if use_weather:
            fields += ["weather_types", "temperature", "pm25"]
        if use_traffic:
            fields.append("traffic")
        self.input_fields = tuple(fields)

        # Constructor provenance: enough to rebuild this architecture from a
        # checkpoint alone (`repro.core.build_from_spec`) — the serving layer
        # reconstructs models this way.
        self.spec = {
            "model": "basic",
            "n_areas": int(n_areas),
            "window": int(window),
            "embeddings": dict(vars(embeddings)),
            "identity_encoding": identity_encoding,
            "residual": bool(residual),
            "use_weather": bool(use_weather),
            "use_traffic": bool(use_traffic),
            "dropout": float(dropout),
            "seed": int(seed),
        }

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """Predict the gap for each item in the batch — a (n,) tensor."""
        if self.input_scales is not None:
            batch = self.input_scales.apply(batch)
        x_id = self.identity(batch)
        x = self.sd_dropout(self.sd_block(batch))

        if self.residual:
            if self.weather_block is not None:
                x = self.weather_dropout(self.weather_block(batch, x))
            if self.traffic_block is not None:
                x = self.traffic_dropout(self.traffic_block(batch, x))
            features = concat([x_id, x], axis=1)
        else:
            outputs: List[Tensor] = [x]
            if self.weather_block is not None:
                outputs.append(self.weather_dropout(self.weather_block(batch, None)))
            if self.traffic_block is not None:
                outputs.append(self.traffic_dropout(self.traffic_block(batch, None)))
            features = concat([x_id] + outputs, axis=1)
        return self.head(features)

    def area_embedding_matrix(self) -> np.ndarray:
        """The learned AreaID embedding table (Table IV / Fig. 12 analyses)."""
        if not isinstance(self.identity, IdentityBlock):
            raise AttributeError("one-hot identity has no embedding matrix")
        return self.identity.area_embedding.weight.data
