"""Fault-tolerant training: versioned checkpoint bundles and best-k spill.

The paper's extendability story (Section V-C) reuses trained weights, and
the long Table 1 / Fig. 16 sweeps make losing a run at epoch 49 expensive.
This module provides the persistence layer behind
``Trainer.fit(checkpoint_dir=..., resume_from=...)``:

- :class:`Checkpoint` — one atomic ``.npz`` + JSON bundle per save point
  holding the model weights, full optimizer/scheduler state, the trainer's
  shuffle RNG and every dropout noise stream, the
  :class:`~repro.core.trainer.TrainingHistory` so far, references to the
  best-k epoch snapshots, and a fingerprint of the
  :class:`~repro.core.trainer.TrainingConfig` so a resume with different
  hyper-parameters fails loudly;
- :class:`BestSnapshots` — a bounded running top-k of epoch snapshots
  (by per-epoch eval RMSE), spilled through the checkpoint directory when
  one is configured so peak memory is O(best_k), not O(epochs).

A run killed mid-way and resumed from its latest checkpoint replays the
exact arithmetic of the uninterrupted run: weights, Adam moments and step
count, learning-rate schedule position, and all random streams are
restored bitwise (arrays through ``.npz``, RNG bit-generator states and
history floats through JSON, both of which round-trip exactly).

File layout inside a checkpoint directory::

    ckpt-00012.npz    arrays: model/<param>, optim/<buffer>/<index>
    ckpt-00012.json   everything else + the npz file name
    best-00007.npz    spilled best-k epoch snapshots
    latest.json       pointer to the newest complete bundle

Every file is written to a same-directory temp name and ``os.replace``-d
into place; the ``latest.json`` pointer is updated only after both halves
of a bundle landed, so a crash mid-write never corrupts the resume point.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ConfigError
from ..nn import Dropout, Module
from ..nn.serialization import load_state, save_state

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "BestSnapshots",
    "Checkpoint",
    "config_fingerprint",
    "dropout_rng_states",
    "restore_dropout_rng_states",
]

CHECKPOINT_SCHEMA_VERSION = 1
_CKPT_PREFIX = "ckpt-"
_BEST_PREFIX = "best-"
_LATEST = "latest.json"


def _describe(value: object) -> str:
    """Stable JSON fallback for non-serializable config values.

    Callables hash by qualified name, not ``repr`` — a function's default
    repr embeds its memory address, which would change the fingerprint on
    every process start.
    """
    return getattr(value, "__qualname__", None) or str(value)


def config_fingerprint(config: object) -> str:
    """Deterministic digest of a training config's fields.

    Accepts a dataclass (e.g. ``TrainingConfig``) or a mapping.  Stored in
    every checkpoint and re-checked on resume: continuing a run under
    different hyper-parameters would silently break the equivalence
    guarantee, so it is rejected instead.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        fields = dataclasses.asdict(config)
    else:
        fields = dict(config)
    blob = json.dumps(fields, sort_keys=True, default=_describe)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def dropout_rng_states(model: Module) -> List[dict]:
    """Bit-generator states of every dropout noise stream, in module order."""
    return [m.rng_state for m in model.modules() if isinstance(m, Dropout)]


def restore_dropout_rng_states(model: Module, states: List[dict]) -> None:
    layers = [m for m in model.modules() if isinstance(m, Dropout)]
    if len(layers) != len(states):
        raise ConfigError(
            f"checkpoint has {len(states)} dropout streams, "
            f"model has {len(layers)}"
        )
    for layer, state in zip(layers, states):
        layer.rng_state = state


def _write_json_atomic(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=_describe)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _snapshot_name(epoch: int) -> str:
    return f"{_BEST_PREFIX}{epoch:05d}.npz"


class BestSnapshots:
    """Bounded running top-k of epoch snapshots, ranked by (score, epoch).

    Replaces the trainer's historical all-epochs ``snapshots`` list: at any
    moment at most ``k`` states are retained.  Without a directory they
    live in memory; with one they are spilled as ``best-<epoch>.npz`` files
    and memory holds only (epoch, score) bookkeeping.

    Ranking is lexicographic on ``(score, epoch)`` with strict improvement
    required for eviction, which reproduces exactly the selection of a
    stable argsort over the full per-epoch score list
    (:meth:`TrainingHistory.best_epochs`).
    """

    def __init__(self, k: int, directory: Optional[str] = None) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.directory = os.fspath(directory) if directory is not None else None
        self.entries: List[dict] = []
        self._states: Dict[int, Dict[str, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def update(self, epoch: int, score: float, state: Dict[str, np.ndarray]) -> bool:
        """Offer one epoch's snapshot; returns whether it entered the top-k."""
        score = float(score)
        if len(self.entries) >= self.k:
            worst = max(self.entries, key=lambda e: (e["score"], e["epoch"]))
            if (score, epoch) >= (worst["score"], worst["epoch"]):
                return False
            self.entries.remove(worst)
            # The spilled file (if any) is intentionally left on disk:
            # earlier checkpoints may still reference it.  Checkpoint.save
            # prunes files no retained bundle points at.
            self._states.pop(worst["epoch"], None)
        entry = {"epoch": int(epoch), "score": score}
        if self.directory is not None:
            entry["file"] = _snapshot_name(epoch)
            save_state(state, os.path.join(self.directory, entry["file"]))
        else:
            self._states[int(epoch)] = state
        self.entries.append(entry)
        return True

    def ordered(self) -> List[dict]:
        """Entries best-first (ascending score, ties to the earlier epoch)."""
        return sorted(self.entries, key=lambda e: (e["score"], e["epoch"]))

    def best_epochs(self) -> List[int]:
        return [entry["epoch"] for entry in self.ordered()]

    def state_for(self, entry: dict) -> Dict[str, np.ndarray]:
        if self.directory is not None:
            return load_state(os.path.join(self.directory, entry["file"]))
        return self._states[entry["epoch"]]

    def states(self) -> List[Dict[str, np.ndarray]]:
        """The retained snapshots, best-first (the prediction ensemble)."""
        return [self.state_for(entry) for entry in self.ordered()]

    def restore(self, entries: List[dict], source_dir: Optional[str]) -> None:
        """Rebuild the tracker from a checkpoint's best-k references.

        Spill files are re-homed if the tracker writes to a different
        directory than the checkpoint was read from, and loaded into
        memory when this run checkpoints nowhere.
        """
        self.entries = []
        self._states = {}
        for entry in entries:
            epoch = int(entry["epoch"])
            restored = {"epoch": epoch, "score": float(entry["score"])}
            source = (
                os.path.join(source_dir, entry["file"])
                if source_dir is not None and "file" in entry
                else None
            )
            if self.directory is not None:
                restored["file"] = _snapshot_name(epoch)
                target = os.path.join(self.directory, restored["file"])
                if source is None:
                    raise ConfigError(
                        f"checkpoint entry for epoch {epoch} has no spill file"
                    )
                if os.path.abspath(source) != os.path.abspath(target):
                    save_state(load_state(source), target)
                elif not os.path.exists(target):
                    raise ConfigError(f"missing best-k snapshot {target}")
            else:
                if source is None:
                    raise ConfigError(
                        f"checkpoint entry for epoch {epoch} has no spill file"
                    )
                self._states[epoch] = load_state(source)
            self.entries.append(restored)


@dataclass
class Checkpoint:
    """One resumable save point of a training run (schema version 1).

    ``epoch`` counts *completed* epochs; resuming restarts the loop there.
    ``history`` is the plain-dict form of ``TrainingHistory`` (the trainer
    converts) to keep this module free of a circular import.
    """

    epoch: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, object]
    scheduler_state: Dict[str, object]
    rng_state: dict
    dropout_states: List[dict]
    history: Dict[str, List[float]]
    best_entries: List[dict]
    fingerprint: str
    config: Dict[str, object] = field(default_factory=dict)
    #: Deployment metadata written by the trainer so a serving process can
    #: rebuild the model without the training script: the model's
    #: constructor ``spec``, its fitted input scales, the training set's
    #: environment scalers and feature window.  Additive — bundles written
    #: before this field existed load with an empty dict.
    serving: Dict[str, object] = field(default_factory=dict)
    schema_version: int = CHECKPOINT_SCHEMA_VERSION
    # Set by save()/load(); not serialized.
    path: Optional[str] = None
    directory: Optional[str] = None

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------

    def save(self, directory: str | os.PathLike, *, retain: int = 3) -> str:
        """Write the bundle atomically; returns the JSON half's path.

        ``retain`` bounds disk growth: after a successful save only the
        newest ``retain`` bundles survive, and ``best-*.npz`` spill files
        referenced by none of them are removed.
        """
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        stem = f"{_CKPT_PREFIX}{self.epoch:05d}"

        arrays: Dict[str, np.ndarray] = {
            f"model/{name}": value for name, value in self.model_state.items()
        }
        optim_scalars: Dict[str, object] = {}
        optim_buffers: List[str] = []
        for key, value in self.optimizer_state.items():
            if isinstance(value, list):
                optim_buffers.append(key)
                for index, array in enumerate(value):
                    arrays[f"optim/{key}/{index}"] = array
            else:
                optim_scalars[key] = value

        save_state(arrays, os.path.join(directory, f"{stem}.npz"))
        payload = {
            "schema_version": self.schema_version,
            "epoch": self.epoch,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "arrays_file": f"{stem}.npz",
            "optimizer": {"scalars": optim_scalars, "buffers": sorted(optim_buffers)},
            "scheduler": self.scheduler_state,
            "rng_state": self.rng_state,
            "dropout_states": self.dropout_states,
            "history": self.history,
            "best": self.best_entries,
            "serving": self.serving,
        }
        json_path = os.path.join(directory, f"{stem}.json")
        _write_json_atomic(json_path, payload)
        _write_json_atomic(os.path.join(directory, _LATEST), {"latest": stem})
        self.path = json_path
        self.directory = directory
        self._prune(directory, retain)
        return json_path

    @staticmethod
    def _prune(directory: str, retain: int) -> None:
        stems = sorted(
            name[: -len(".json")]
            for name in os.listdir(directory)
            if name.startswith(_CKPT_PREFIX) and name.endswith(".json")
        )
        retained, dropped = stems[-retain:], stems[:-retain]
        for stem in dropped:
            for suffix in (".json", ".npz"):
                try:
                    os.remove(os.path.join(directory, stem + suffix))
                except OSError:
                    pass
        referenced = set()
        for stem in retained:
            try:
                with open(
                    os.path.join(directory, stem + ".json"), encoding="utf-8"
                ) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            for entry in payload.get("best", []):
                if "file" in entry:
                    referenced.add(entry["file"])
        for name in os.listdir(directory):
            if name.startswith(_BEST_PREFIX) and name.endswith(".npz"):
                if name not in referenced:
                    try:
                        os.remove(os.path.join(directory, name))
                    except OSError:
                        pass

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    @staticmethod
    def latest_stem(directory: str | os.PathLike) -> Optional[str]:
        """Newest complete bundle in ``directory`` (via the pointer file,
        falling back to a directory scan for robustness)."""
        directory = os.fspath(directory)
        pointer = os.path.join(directory, _LATEST)
        if os.path.exists(pointer):
            try:
                with open(pointer, encoding="utf-8") as handle:
                    stem = json.load(handle).get("latest")
                if stem and os.path.exists(os.path.join(directory, f"{stem}.json")):
                    return stem
            except (OSError, ValueError):
                pass
        stems = sorted(
            name[: -len(".json")]
            for name in os.listdir(directory)
            if name.startswith(_CKPT_PREFIX) and name.endswith(".json")
        )
        return stems[-1] if stems else None

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Checkpoint":
        """Read a bundle from a directory, a ``ckpt-*.json`` path or a stem."""
        path = os.fspath(path)
        if os.path.isdir(path):
            stem = cls.latest_stem(path)
            if stem is None:
                raise FileNotFoundError(f"no checkpoints in {path!r}")
            json_path = os.path.join(path, f"{stem}.json")
        elif path.endswith(".json"):
            json_path = path
        else:
            json_path = f"{path}.json"
        directory = os.path.dirname(json_path) or "."

        with open(json_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported checkpoint schema version {version!r} "
                f"(expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        arrays = load_state(os.path.join(directory, payload["arrays_file"]))

        model_state: Dict[str, np.ndarray] = {}
        buffers: Dict[str, Dict[int, np.ndarray]] = {}
        for key, value in arrays.items():
            if key.startswith("model/"):
                model_state[key[len("model/") :]] = value
            elif key.startswith("optim/"):
                _, buffer, index = key.split("/", 2)
                buffers.setdefault(buffer, {})[int(index)] = value
        optimizer_state: Dict[str, object] = dict(payload["optimizer"]["scalars"])
        for buffer in payload["optimizer"]["buffers"]:
            slots = buffers.get(buffer, {})
            optimizer_state[buffer] = [slots[i] for i in sorted(slots)]

        return cls(
            epoch=int(payload["epoch"]),
            model_state=model_state,
            optimizer_state=optimizer_state,
            scheduler_state=payload["scheduler"],
            rng_state=payload["rng_state"],
            dropout_states=payload["dropout_states"],
            history=payload["history"],
            best_entries=payload["best"],
            fingerprint=payload["fingerprint"],
            config=payload.get("config", {}),
            serving=payload.get("serving", {}),
            schema_version=version,
            path=json_path,
            directory=directory,
        )

    def ensemble_states(self) -> List[Dict[str, np.ndarray]]:
        """The best-k epoch snapshots, best-first (the prediction ensemble).

        Requires a loaded-from-disk bundle whose best entries were spilled
        (always the case for checkpoints written with a checkpoint
        directory).  Falls back to the live model state when the bundle
        tracked no snapshots, so inference never silently loses weights.
        """
        if not self.best_entries:
            return [dict(self.model_state)]
        if self.directory is None:
            raise ConfigError(
                "checkpoint has no directory; load it from disk before "
                "reading ensemble states"
            )
        ordered = sorted(
            self.best_entries, key=lambda e: (e["score"], e["epoch"])
        )
        states = []
        for entry in ordered:
            if "file" not in entry:
                raise ConfigError(
                    f"best-k entry for epoch {entry['epoch']} has no spill file"
                )
            states.append(load_state(os.path.join(self.directory, entry["file"])))
        return states
