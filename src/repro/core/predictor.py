"""Online gap prediction for arbitrary (area, day, timeslot) queries.

The :class:`~repro.core.trainer.Trainer` predicts over pre-built
ExampleSets; a deployed scheduler instead asks "what is the gap going to be
in area a over the next ten minutes, *now*?".  :class:`GapPredictor` serves
that query shape: it featurizes on demand from a :class:`CityDataset`
(profiles and per-weekday histories are built lazily per area and cached)
and runs the trained model.

This is the component the paper's conclusion describes deploying inside
Didi's scheduling system.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import FeatureConfig
from ..exceptions import DataError
from ..features.builder import SIGNALS, ExampleSet, apply_environment_scalers
from ..features.environment import extract_environment
from ..features.vectors import AreaDayProfile
from .batching import make_batch
from .trainer import Trainer

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset
    from ..nn import Module


@dataclass(frozen=True)
class GapQuery:
    """One prediction request."""

    area_id: int
    day: int
    timeslot: int


class GapPredictor:
    """Featurize-and-predict service around a trained DeepSD model.

    Parameters
    ----------
    model:
        A trained :class:`BasicDeepSD` / :class:`AdvancedDeepSD` (or a
        :class:`Trainer`, whose best-k ensemble is then used).
    dataset:
        The city whose order/weather/traffic streams feed the features.
    config:
        Featurization constants — must match what the model was trained on.
    scalers:
        The training ExampleSet's environment scalers
        (``{"temperature": (mean, std), "pm25": (mean, std)}``); pass the
        training set's ``scalers`` attribute.
    """

    def __init__(
        self,
        model: "Module | Trainer",
        dataset: "CityDataset",
        config: FeatureConfig,
        scalers: Dict[str, Tuple[float, float]],
        *,
        max_profiles: Optional[int] = None,
    ) -> None:
        if isinstance(model, Trainer):
            self._trainer = model
        else:
            self._trainer = Trainer(model)
        self.dataset = dataset
        self.config = config
        for required in ("temperature", "pm25"):
            if required not in scalers:
                raise DataError(f"scalers must contain {required!r}")
        self.scalers = dict(scalers)
        # Warm featurization state: per-(area, day) profiles, LRU-bounded
        # when ``max_profiles`` is set (long-running serving processes) and
        # guarded by a lock so observation ingestion can drop entries while
        # another thread featurizes.
        if max_profiles is not None and max_profiles <= 0:
            raise DataError(f"max_profiles must be positive, got {max_profiles}")
        self.max_profiles = max_profiles
        self._profiles: "OrderedDict[Tuple[int, int], AreaDayProfile]" = OrderedDict()
        self._profiles_lock = threading.Lock()
        # Vectorized featurization: group queries by (area, day) and
        # extract signal vectors through the batched AreaDayProfile APIs.
        # Bitwise-identical to the historical row loop on every field it
        # fills; set False to force the row loop.
        self.vectorized_featurize = True
        # Which signal arrays _featurize fills: "all" keeps the builder-
        # parity contract (every signal array populated); "model" fills
        # only the arrays named in the model's ``input_fields`` and leaves
        # the rest zero — predictions are unaffected (the model never
        # reads them) and a model without history inputs skips prior-day
        # profile builds entirely.  The serving layer opts into "model".
        self.feature_fields = "all"

    @classmethod
    def from_training(
        cls,
        model: "Module | Trainer",
        dataset: "CityDataset",
        config: FeatureConfig,
        train_set: ExampleSet,
    ) -> "GapPredictor":
        """Build a predictor reusing the training set's scalers."""
        return cls(model, dataset, config, train_set.scalers)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def predict(self, area_id: int, day: int, timeslot: int) -> float:
        """Predicted gap for ``[timeslot, timeslot + C)`` in one area."""
        return float(self.predict_many([GapQuery(area_id, day, timeslot)])[0])

    def predict_many(self, queries: Sequence[GapQuery]) -> np.ndarray:
        """Predicted gaps for a batch of queries (one pass per call)."""
        if not queries:
            return np.empty(0)
        example_set = self._featurize(queries)
        return self._trainer.predict(example_set)

    def actual_gap(self, area_id: int, day: int, timeslot: int) -> int:
        """Ground truth for the same interval (for backtesting)."""
        return self.dataset.gap(
            area_id, day, timeslot, horizon=self.config.gap_minutes
        )

    # ------------------------------------------------------------------
    # Featurization
    # ------------------------------------------------------------------

    def _profile(self, area_id: int, day: int) -> AreaDayProfile:
        key = (area_id, day)
        with self._profiles_lock:
            profile = self._profiles.get(key)
            if profile is not None:
                self._profiles.move_to_end(key)
                return profile
        # Build outside the lock: profiles are deterministic functions of the
        # dataset, so a racing double-build just wastes one construction.
        profile = AreaDayProfile(
            self.dataset, area_id, day, self.config.window_minutes
        )
        with self._profiles_lock:
            self._profiles[key] = profile
            self._profiles.move_to_end(key)
            if self.max_profiles is not None:
                while len(self._profiles) > self.max_profiles:
                    self._profiles.popitem(last=False)
        return profile

    def drop_profiles(self, area_id: int, day: int) -> int:
        """Forget cached profiles for ``(area_id, day)``.

        Call after mutating the dataset's order stream for that area/day so
        the next featurization rebuilds from the fresh data.  Returns the
        number of entries dropped.
        """
        with self._profiles_lock:
            return 1 if self._profiles.pop((area_id, day), None) is not None else 0

    def _validate(self, query: GapQuery) -> None:
        L = self.config.window_minutes
        if not 0 <= query.area_id < self.dataset.n_areas:
            raise DataError(f"area {query.area_id} outside the city")
        if not 0 <= query.day < self.dataset.n_days:
            raise DataError(f"day {query.day} outside the simulation")
        if not L <= query.timeslot <= 1440 - self.config.gap_minutes:
            raise DataError(
                f"timeslot {query.timeslot} must be in "
                f"[{L}, {1440 - self.config.gap_minutes}] so the lookback "
                "window and the prediction interval fit inside the day"
            )

    def _history(
        self, area_id: int, day: int, timeslot: int, signal: str
    ) -> np.ndarray:
        """Per-weekday mean of a signal's vectors over prior days — (7, 2L)."""
        calendar = self.dataset.calendar
        L = self.config.window_minutes
        history = np.zeros((7, 2 * L))
        for weekday in range(7):
            prior = calendar.days_with_weekday(weekday, before=day)
            if not prior:
                continue
            vectors = [
                self._signal_vector(self._profile(area_id, m), timeslot, signal)
                for m in prior
            ]
            history[weekday] = np.mean(vectors, axis=0)
        return history

    @staticmethod
    def _signal_vector(profile: AreaDayProfile, timeslot: int, signal: str) -> np.ndarray:
        if signal == "sd":
            return profile.supply_demand_vector(timeslot)
        if signal == "lc":
            return profile.last_call_vector(timeslot)
        return profile.waiting_time_vector(timeslot)

    @staticmethod
    def _signal_vectors(
        profile: AreaDayProfile, timeslots: np.ndarray, signal: str
    ) -> np.ndarray:
        if signal == "sd":
            return profile.supply_demand_vectors(timeslots)
        if signal == "lc":
            return profile.last_call_vectors(timeslots)
        return profile.waiting_time_vectors(timeslots)

    def _signals_per_row(self, queries: Sequence[GapQuery]):
        """The historical row-at-a-time extraction — every signal array."""
        config = self.config
        L = config.window_minutes
        n = len(queries)
        now = {name: np.empty((n, 2 * L), dtype=np.float32) for name in SIGNALS}
        hist = {name: np.empty((n, 7, 2 * L), dtype=np.float32) for name in SIGNALS}
        hist_next = {name: np.empty((n, 7, 2 * L), dtype=np.float32) for name in SIGNALS}
        for i, query in enumerate(queries):
            profile = self._profile(query.area_id, query.day)
            shifted = query.timeslot + config.gap_minutes
            for name in SIGNALS:
                now[name][i] = self._signal_vector(profile, query.timeslot, name)
                hist[name][i] = self._history(
                    query.area_id, query.day, query.timeslot, name
                )
                hist_next[name][i] = self._history(
                    query.area_id, query.day, shifted, name
                )
        return now, hist, hist_next

    def _signals_grouped(self, queries: Sequence[GapQuery], time_ids: np.ndarray):
        """Batched extraction: group by (area, day).

        In ``feature_fields="model"`` mode, only arrays named in the
        model's ``input_fields`` are computed; the rest stay zero (the
        model never reads them, so predictions are unaffected).  A model
        that reads no history arrays — the basic network — then never
        touches prior-day profiles at all, which is the bulk of the
        cold-path cost.

        Each computed element is bitwise-identical to the per-row path:
        the batched vector extractions are pure gathers (row-independent),
        and ``np.mean`` over the leading axis of a stacked ``(k, T, 2L)``
        array reduces in the same sequential order as over ``(k, 2L)``.
        """
        config = self.config
        L = config.window_minutes
        n = len(queries)
        if self.feature_fields == "model":
            fields = set(self._trainer._input_fields())
        else:
            fields = {
                f"{name}_{part}"
                for name in SIGNALS
                for part in ("now", "hist", "hist_next")
            }
        need = {
            name: (
                f"{name}_now" in fields,
                f"{name}_hist" in fields,
                f"{name}_hist_next" in fields,
            )
            for name in SIGNALS
        }
        now = {name: np.zeros((n, 2 * L), dtype=np.float32) for name in SIGNALS}
        hist = {name: np.zeros((n, 7, 2 * L), dtype=np.float32) for name in SIGNALS}
        hist_next = {
            name: np.zeros((n, 7, 2 * L), dtype=np.float32) for name in SIGNALS
        }
        history_signals = [
            name for name in SIGNALS if need[name][1] or need[name][2]
        ]

        groups: Dict[Tuple[int, int], List[int]] = {}
        for i, query in enumerate(queries):
            groups.setdefault((query.area_id, query.day), []).append(i)

        calendar = self.dataset.calendar
        for (area_id, day), indices in groups.items():
            rows = np.array(indices, dtype=np.int64)
            ts = time_ids[rows]
            profile = self._profile(area_id, day)
            for name in SIGNALS:
                if need[name][0]:
                    now[name][rows] = self._signal_vectors(profile, ts, name)
            if not history_signals:
                continue
            # hist wants vectors at t, hist_next at t + C; one batched
            # extraction over the concatenation serves both.
            ts_both = np.concatenate([ts, ts + config.gap_minutes])
            for weekday in range(7):
                prior = calendar.days_with_weekday(weekday, before=day)
                if not prior:
                    continue
                profiles = [self._profile(area_id, m) for m in prior]
                for name in history_signals:
                    stack = np.stack(
                        [self._signal_vectors(p, ts_both, name) for p in profiles]
                    )
                    mean = np.mean(stack, axis=0)
                    if need[name][1]:
                        hist[name][rows, weekday] = mean[: len(rows)]
                    if need[name][2]:
                        hist_next[name][rows, weekday] = mean[len(rows):]
        return now, hist, hist_next

    def _featurize(self, queries: Sequence[GapQuery]) -> ExampleSet:
        for query in queries:
            self._validate(query)
        config = self.config
        L = config.window_minutes
        area_ids = np.array([q.area_id for q in queries], dtype=np.int64)
        day_ids = np.array([q.day for q in queries], dtype=np.int64)
        time_ids = np.array([q.timeslot for q in queries], dtype=np.int64)
        week_ids = np.array(
            [self.dataset.calendar.day_of_week(q.day) for q in queries],
            dtype=np.int64,
        )

        if self.vectorized_featurize:
            now, hist, hist_next = self._signals_grouped(queries, time_ids)
        else:
            now, hist, hist_next = self._signals_per_row(queries)

        environment = extract_environment(
            self.dataset, area_ids, day_ids, time_ids, L
        )

        gaps = self.dataset.gaps(
            area_ids, day_ids, time_ids, horizon=config.gap_minutes
        )
        example_set = ExampleSet(
            area_ids=area_ids,
            time_ids=time_ids,
            week_ids=week_ids,
            day_ids=day_ids,
            sd_now=now["sd"], sd_hist=hist["sd"], sd_hist_next=hist_next["sd"],
            lc_now=now["lc"], lc_hist=hist["lc"], lc_hist_next=hist_next["lc"],
            wt_now=now["wt"], wt_hist=hist["wt"], wt_hist_next=hist_next["wt"],
            weather_types=environment.weather_types,
            temperature=environment.temperature,
            pm25=environment.pm25,
            traffic=environment.traffic.astype(np.float32),
            gaps=gaps.astype(np.float32),
            window=L,
            n_areas=self.dataset.n_areas,
            scalers=dict(self.scalers),
        )
        apply_environment_scalers(example_set)
        return example_set
