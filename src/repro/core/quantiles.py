"""Risk heads: P10/P50/P90 gap intervals on top of a trained point model.

DeepSD predicts the conditional mean gap; a dispatcher acting on that point
estimate is blind to regime risk (storms, event surges — see
``repro.scenarios``).  This module trains a small *quantile head* on the
residuals of a fitted :class:`~repro.core.trainer.Trainer`: per
time-of-day bucket, a learned offset per quantile level, optimised with the
pinball loss from :mod:`repro.nn.losses` (dormant until now) through the
real autograd engine.

The head is deliberately tiny — ``(n_buckets, n_levels)`` parameters — so

* it serializes losslessly into the checkpoint bundle's ``serving`` extras
  (plain JSON floats round-trip exactly → bitwise-stable intervals),
* serving adds intervals with a table lookup, preserving every latency and
  batch-invariance contract of the point path untouched, and
* monotonicity (P10 ≤ P50 ≤ P90) is *guaranteed*, not hoped for: after
  training, each bucket's offsets are sorted ascending, and adding the same
  gap to sorted offsets preserves the order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigError
from ..features.builder import ExampleSet
from ..nn import Adam, Module, Parameter, Tensor
from ..nn.losses import pinball_loss
from ..obs import get_logger

_log = get_logger(__name__)

DEFAULT_LEVELS: Tuple[float, ...] = (0.1, 0.5, 0.9)
MINUTES_PER_DAY = 1440

__all__ = [
    "DEFAULT_LEVELS",
    "QuantileHead",
    "fit_quantile_head",
    "attach_quantile_head",
]


class QuantileHead(Module):
    """Per-time-bucket residual quantile offsets.

    ``forward(bucket_ids)`` gathers the ``(n_levels,)`` offset row for each
    bucket, differentiably (``gather_rows`` scatter-adds gradients), so the
    head trains with plain :class:`~repro.nn.Adam` + pinball loss.
    """

    def __init__(
        self,
        levels: Sequence[float] = DEFAULT_LEVELS,
        bucket_minutes: int = 60,
    ) -> None:
        super().__init__()
        levels = tuple(float(q) for q in levels)
        if not levels or any(not 0.0 < q < 1.0 for q in levels):
            raise ConfigError(f"quantile levels must be in (0, 1), got {levels!r}")
        if sorted(levels) != list(levels):
            raise ConfigError(f"quantile levels must be ascending, got {levels!r}")
        if bucket_minutes < 1 or MINUTES_PER_DAY % bucket_minutes != 0:
            raise ConfigError(
                f"bucket_minutes must divide {MINUTES_PER_DAY}, got {bucket_minutes}"
            )
        self.levels = levels
        self.bucket_minutes = int(bucket_minutes)
        self.n_buckets = MINUTES_PER_DAY // self.bucket_minutes
        self.offsets = Parameter(np.zeros((self.n_buckets, len(levels))))

    def bucket_ids(self, time_ids: np.ndarray) -> np.ndarray:
        """Map minute-of-day slot ids to bucket rows (clipped to the day)."""
        ids = np.asarray(time_ids, dtype=np.int64)
        return np.clip(ids, 0, MINUTES_PER_DAY - 1) // self.bucket_minutes

    def forward(self, bucket_ids: np.ndarray) -> Tensor:
        return self.offsets.gather_rows(np.asarray(bucket_ids, dtype=np.int64))

    def sort_levels(self) -> None:
        """Enforce monotone offsets (P10 ≤ P50 ≤ P90) after training."""
        self.offsets.data.sort(axis=1)

    def intervals(self, gap: float, timeslot: int) -> Dict[str, float]:
        """``{"p10": …, "p50": …, "p90": …}`` for one point prediction.

        The gap shifts every level identically, so sorted offsets keep the
        interval monotone for any gap.
        """
        row = self.offsets.data[int(self.bucket_ids(np.asarray([timeslot]))[0])]
        return {
            f"p{round(q * 100):d}": float(gap) + float(offset)
            for q, offset in zip(self.levels, row)
        }

    # -- checkpoint serialization (plain JSON; floats round-trip exactly) --

    def to_config(self) -> Dict[str, object]:
        return {
            "levels": list(self.levels),
            "bucket_minutes": self.bucket_minutes,
            "offsets": [[float(x) for x in row] for row in self.offsets.data],
        }

    @classmethod
    def from_config(cls, payload: Dict[str, object]) -> "QuantileHead":
        head = cls(
            levels=tuple(payload["levels"]),
            bucket_minutes=int(payload["bucket_minutes"]),
        )
        offsets = np.asarray(payload["offsets"], dtype=np.float64)
        if offsets.shape != head.offsets.data.shape:
            raise ConfigError(
                f"quantile offsets shape {offsets.shape} does not match "
                f"head shape {head.offsets.data.shape}"
            )
        head.offsets.data[...] = offsets
        return head


def fit_quantile_head(
    trainer,
    train_set: ExampleSet,
    *,
    levels: Sequence[float] = DEFAULT_LEVELS,
    bucket_minutes: int = 60,
    epochs: int = 200,
    learning_rate: float = 0.05,
) -> QuantileHead:
    """Train a quantile head on the trainer's residuals and attach it.

    Full-batch Adam over the pinball losses of every level jointly; fully
    deterministic (no shuffling, no dropout), so re-fitting on the same
    trainer + train set is bitwise-reproducible.
    """
    residuals = train_set.gaps.astype(np.float64) - trainer.predict(train_set)
    head = QuantileHead(levels=levels, bucket_minutes=bucket_minutes)
    buckets = head.bucket_ids(train_set.time_ids)
    target = residuals.reshape(-1, 1)
    optimizer = Adam(head.parameters(), lr=learning_rate)
    for _ in range(max(1, epochs)):
        optimizer.zero_grad()
        out = head(buckets)
        loss = None
        for k, q in enumerate(head.levels):
            term = pinball_loss(out.slice_cols(k, k + 1), target, q)
            loss = term if loss is None else loss + term
        loss.backward()
        optimizer.step()
    head.sort_levels()
    trainer.quantile_head = head
    _log.event(
        "quantiles.fit",
        items=train_set.n_items,
        buckets=head.n_buckets,
        levels=",".join(f"{q:g}" for q in head.levels),
        loss=loss.item(),
    )
    return head


def attach_quantile_head(checkpoint_path, head: QuantileHead) -> str:
    """Patch a saved checkpoint bundle with a quantile head, in place.

    Loads the bundle, adds ``serving["quantiles"]`` and re-saves the same
    stem atomically — the training fingerprint, weights, optimizer state and
    ``latest.json`` pointer are untouched, so resume semantics are
    unaffected and old readers simply ignore the extra key.
    """
    from .checkpoint import Checkpoint

    checkpoint = Checkpoint.load(checkpoint_path)
    checkpoint.serving = dict(checkpoint.serving)
    checkpoint.serving["quantiles"] = head.to_config()
    return checkpoint.save(checkpoint.directory)
