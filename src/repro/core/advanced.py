"""Advanced DeepSD (Section V, Fig. 7).

Replaces the basic model's order part with the extended order part: three
extended blocks (supply-demand, last-call, waiting-time), each combining
per-weekday history through learned softmax weights and estimating the
next-interval vector in projection space.  The environment part and output
head are unchanged, so a model trained without environment blocks can grow
them later and fine-tune (Section V-C, Fig. 16).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import EmbeddingConfig
from ..nn import Dropout, Module, Tensor, concat
from .normalization import InputScales
from .blocks import (
    BLOCK_WIDTH,
    IdentityBlock,
    OneHotIdentityBlock,
    OutputHead,
    TrafficBlock,
    WeatherBlock,
)
from .extended import ExtendedBlock


class AdvancedDeepSD(Module):
    """The advanced DeepSD network.

    Shares all constructor flags with :class:`~repro.core.basic.BasicDeepSD`
    plus ``projection_dim`` (paper: 16).
    """

    def __init__(
        self,
        n_areas: int,
        window: int,
        embeddings: Optional[EmbeddingConfig] = None,
        *,
        projection_dim: int = 16,
        identity_encoding: str = "embedding",
        residual: bool = True,
        use_weather: bool = True,
        use_traffic: bool = True,
        uniform_weekday_weights: bool = False,
        dropout: float = 0.5,
        seed: int = 0,
        input_scales: "InputScales | None" = None,
    ) -> None:
        super().__init__()
        embeddings = embeddings or EmbeddingConfig()
        rng = np.random.default_rng(seed)
        self.window = window
        self.input_scales = input_scales
        self.residual = residual
        self.use_weather = use_weather
        self.use_traffic = use_traffic
        # One-hot identity and uniform weekday weights both allocate fresh
        # arrays per forward; the execution tape cannot replay either.
        self.tape_safe = (
            identity_encoding == "embedding" and not uniform_weekday_weights
        )

        if identity_encoding == "embedding":
            self.identity = IdentityBlock(n_areas, embeddings, rng)
        elif identity_encoding == "onehot":
            self.identity = OneHotIdentityBlock(n_areas, embeddings)
        else:
            raise ValueError(
                f"identity_encoding must be 'embedding' or 'onehot', "
                f"got {identity_encoding!r}"
            )

        def extended(signal: str, residual_input: bool) -> ExtendedBlock:
            return ExtendedBlock(
                signal,
                window,
                n_areas,
                embeddings,
                projection_dim,
                rng,
                residual_input=residual_input and residual,
                uniform_weights=uniform_weekday_weights,
            )

        self.sd_block = extended("sd", residual_input=False)
        self.lc_block = extended("lc", residual_input=True)
        self.wt_block = extended("wt", residual_input=True)
        self.weather_block = (
            WeatherBlock(window, embeddings, rng, residual=residual)
            if use_weather
            else None
        )
        self.traffic_block = (
            TrafficBlock(window, rng, residual=residual) if use_traffic else None
        )

        n_blocks = 3 + int(use_weather) + int(use_traffic)
        blocks_dim = BLOCK_WIDTH if residual else BLOCK_WIDTH * n_blocks
        self.head = OutputHead(self.identity.output_dim + blocks_dim, rng)

        self.dropouts = [
            Dropout(dropout, rng=np.random.default_rng(seed + 1 + i)) for i in range(5)
        ]

        # The batch fields forward() reads (see BasicDeepSD): the extended
        # blocks consume all three signals' now/hist/hist_next arrays.
        fields = ["area_ids", "time_ids", "week_ids"]
        for signal in ("sd", "lc", "wt"):
            fields += [f"{signal}_now", f"{signal}_hist", f"{signal}_hist_next"]
        if use_weather:
            fields += ["weather_types", "temperature", "pm25"]
        if use_traffic:
            fields.append("traffic")
        self.input_fields = tuple(fields)

        # Constructor provenance for `repro.core.build_from_spec` (serving).
        self.spec = {
            "model": "advanced",
            "n_areas": int(n_areas),
            "window": int(window),
            "embeddings": dict(vars(embeddings)),
            "projection_dim": int(projection_dim),
            "identity_encoding": identity_encoding,
            "residual": bool(residual),
            "use_weather": bool(use_weather),
            "use_traffic": bool(use_traffic),
            "uniform_weekday_weights": bool(uniform_weekday_weights),
            "dropout": float(dropout),
            "seed": int(seed),
        }

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """Predict the gap for each item in the batch — a (n,) tensor."""
        if self.input_scales is not None:
            batch = self.input_scales.apply(batch)
        x_id = self.identity(batch)
        drop_sd, drop_lc, drop_wt, drop_wc, drop_tc = self.dropouts

        if self.residual:
            x = drop_sd(self.sd_block(batch))
            x = drop_lc(self.lc_block(batch, x))
            x = drop_wt(self.wt_block(batch, x))
            if self.weather_block is not None:
                x = drop_wc(self.weather_block(batch, x))
            if self.traffic_block is not None:
                x = drop_tc(self.traffic_block(batch, x))
            features = concat([x_id, x], axis=1)
        else:
            outputs: List[Tensor] = [
                drop_sd(self.sd_block(batch)),
                drop_lc(self.lc_block(batch)),
                drop_wt(self.wt_block(batch)),
            ]
            if self.weather_block is not None:
                outputs.append(drop_wc(self.weather_block(batch, None)))
            if self.traffic_block is not None:
                outputs.append(drop_tc(self.traffic_block(batch, None)))
            features = concat([x_id] + outputs, axis=1)
        return self.head(features)

    def area_embedding_matrix(self) -> np.ndarray:
        """The learned AreaID embedding table (Table IV / Fig. 12 analyses)."""
        if not isinstance(self.identity, IdentityBlock):
            raise AttributeError("one-hot identity has no embedding matrix")
        return self.identity.area_embedding.weight.data

    def weekday_weights(self, area_id: int, week_id: int) -> np.ndarray:
        """The supply-demand block's learned combining weights (Fig. 15)."""
        return self.sd_block.weekday_weights(area_id, week_id)
