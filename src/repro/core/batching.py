"""Batch extraction from an :class:`~repro.features.ExampleSet`.

Models consume plain dicts of numpy arrays keyed by the ExampleSet field
names; this keeps the training loop agnostic to which blocks a given model
variant actually uses.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..features.builder import ExampleSet

#: Every array field a model might consume (labels excluded).
INPUT_FIELDS = (
    "area_ids",
    "time_ids",
    "week_ids",
    "sd_now",
    "sd_hist",
    "sd_hist_next",
    "lc_now",
    "lc_hist",
    "lc_hist_next",
    "wt_now",
    "wt_hist",
    "wt_hist_next",
    "weather_types",
    "temperature",
    "pm25",
    "traffic",
)


def make_batch(
    example_set: ExampleSet,
    indices: np.ndarray | None = None,
    fields: Sequence[str] = INPUT_FIELDS,
) -> Dict[str, np.ndarray]:
    """Extract the requested input fields (optionally a row subset)."""
    batch = {}
    for name in fields:
        value = getattr(example_set, name)
        batch[name] = value if indices is None else value[indices]
    return batch


def batch_targets(example_set: ExampleSet, indices: np.ndarray | None = None) -> np.ndarray:
    """Gap labels for the same rows."""
    return example_set.gaps if indices is None else example_set.gaps[indices]
