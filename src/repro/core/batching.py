"""Batch extraction from an :class:`~repro.features.ExampleSet`.

Models consume plain dicts of numpy arrays keyed by the ExampleSet field
names; this keeps the training loop agnostic to which blocks a given model
variant actually uses.

Two access patterns are provided:

- :func:`make_batch` — gather arbitrary rows with one fancy-index per
  field (used for ad-hoc lookups and the serving predictor);
- :class:`EpochBatches` — the trainer's hot path: gather the requested
  fields once per epoch with a single permutation fancy-index, then
  serve each minibatch as zero-copy contiguous slice views.  Per-batch
  fancy indexing of all 16 input fields costs 16 gathers and 16
  allocations per step; the epoch gather pays the cost once, and only
  for the fields the model declares it reads (``model.input_fields``) —
  the basic network, for example, never touches the six ``(n, 7, 2L)``
  history arrays that dominate an ExampleSet's bytes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..features.builder import ExampleSet

#: Every array field a model might consume (labels excluded).
INPUT_FIELDS = (
    "area_ids",
    "time_ids",
    "week_ids",
    "sd_now",
    "sd_hist",
    "sd_hist_next",
    "lc_now",
    "lc_hist",
    "lc_hist_next",
    "wt_now",
    "wt_hist",
    "wt_hist_next",
    "weather_types",
    "temperature",
    "pm25",
    "traffic",
)


def make_batch(
    example_set: ExampleSet,
    indices: np.ndarray | None = None,
    fields: Sequence[str] = INPUT_FIELDS,
) -> Dict[str, np.ndarray]:
    """Extract the requested input fields (optionally a row subset)."""
    batch = {}
    for name in fields:
        value = getattr(example_set, name)
        batch[name] = value if indices is None else value[indices]
    return batch


def batch_targets(example_set: ExampleSet, indices: np.ndarray | None = None) -> np.ndarray:
    """Gap labels for the same rows."""
    return example_set.gaps if indices is None else example_set.gaps[indices]


class EpochBatches:
    """One epoch of minibatches served as contiguous slice views.

    With a ``permutation`` (training), every input field and the labels
    are gathered once — ``field[permutation]`` — so each row is copied
    exactly once per epoch and every minibatch afterwards is a zero-copy
    view ``gathered[start:stop]``.  Without one (inference), the
    underlying ExampleSet arrays are sliced directly.

    ``slice(start, stop)`` returns exactly the same arrays as
    ``make_batch(example_set, permutation[start:stop])`` /
    ``batch_targets(...)`` would, bitwise, because
    ``field[perm][start:stop] == field[perm[start:stop]]`` — the trainer
    relies on this for checkpoint/resume equivalence.  Models must not
    mutate batches in place (none do: input scaling copies).

    ``buffers`` is an optional caller-owned dict the gathered arrays are
    written into (``np.take(..., out=...)``) and cached in across epochs.
    Without it, every epoch allocates fresh multi-megabyte destination
    arrays, which the allocator hands back to the OS on free — so every
    epoch re-pays the page-fault cost of touching that memory.  Passing
    the same dict each epoch (as the trainer does) pays it once per fit.
    Consumers must therefore not hold batch views across epochs — the
    next gather overwrites them (nothing in the model stack does: every
    float field is cast to a fresh float64 array on the way into the
    autograd graph, and integer id fields are only read by embedding
    lookups).
    """

    def __init__(
        self,
        example_set: ExampleSet,
        permutation: Optional[np.ndarray] = None,
        fields: Sequence[str] = INPUT_FIELDS,
        buffers: Optional[Dict[str, np.ndarray]] = None,
    ):
        self.n_items = example_set.n_items
        if permutation is None:
            self._fields = {name: getattr(example_set, name) for name in fields}
            self._targets = example_set.gaps
        else:
            if buffers is None:
                buffers = {}
            self._fields = {
                name: self._gather(getattr(example_set, name), permutation, name, buffers)
                for name in fields
            }
            self._targets = self._gather(example_set.gaps, permutation, "gaps", buffers)

    @staticmethod
    def _gather(
        source: np.ndarray,
        permutation: np.ndarray,
        name: str,
        buffers: Dict[str, np.ndarray],
    ) -> np.ndarray:
        out = buffers.get(name)
        if out is None or out.shape != source.shape or out.dtype != source.dtype:
            out = np.empty_like(source)
            buffers[name] = out
        np.take(source, permutation, axis=0, out=out)
        return out

    def slice(self, start: int, stop: int) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """(inputs, targets) for rows ``[start, stop)`` of the epoch order."""
        batch = {name: value[start:stop] for name, value in self._fields.items()}
        return batch, self._targets[start:stop]

    def batches(self, batch_size: int):
        """Yield ``(inputs, targets)`` minibatch views in epoch order."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, self.n_items, batch_size):
            yield self.slice(start, min(start + batch_size, self.n_items))
