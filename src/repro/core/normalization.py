"""Input scaling for the DeepSD networks.

The paper feeds raw order counts into the network (weather scalars are the
only obviously re-scaled inputs).  At our synthetic scale the count vectors
and the traffic level counts live on very different ranges, which slows Adam
down noticeably, so the trainer standardises each signal family by a single
scalar (its training-set standard deviation).  One scalar per family keeps
the advanced block's algebra intact: ``Proj(E^{t+C}) + Proj(V) − Proj(E)``
is equivariant to a common rescaling of V and the H vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..features.builder import ExampleSet

#: Batch keys scaled by each family's factor.
_SCALED_KEYS = {
    "sd": ("sd_now", "sd_hist", "sd_hist_next"),
    "lc": ("lc_now", "lc_hist", "lc_hist_next"),
    "wt": ("wt_now", "wt_hist", "wt_hist_next"),
    "traffic": ("traffic",),
}


@dataclass(frozen=True)
class InputScales:
    """Per-signal divisors applied to network inputs."""

    sd: float = 1.0
    lc: float = 1.0
    wt: float = 1.0
    traffic: float = 1.0

    def __post_init__(self) -> None:
        for name in ("sd", "lc", "wt", "traffic"):
            if getattr(self, name) <= 0:
                raise ValueError(f"scale {name} must be positive")

    @classmethod
    def from_example_set(cls, example_set: ExampleSet) -> "InputScales":
        """Standard deviations of the real-time vectors on the training set."""

        def std(values: np.ndarray) -> float:
            value = float(values.std())
            return value if value > 1e-9 else 1.0

        return cls(
            sd=std(example_set.sd_now),
            lc=std(example_set.lc_now),
            wt=std(example_set.wt_now),
            traffic=std(example_set.traffic),
        )

    def apply(self, batch: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """A shallow copy of ``batch`` with the count inputs divided."""
        scaled = dict(batch)
        for family, keys in _SCALED_KEYS.items():
            factor = getattr(self, family)
            if factor == 1.0:
                continue
            for key in keys:
                if key in scaled:
                    scaled[key] = scaled[key] / factor
        return scaled
