"""Training loop for DeepSD models (Section VI-B/C of the paper).

Replicates the paper's protocol: Adam with batch size 64, 50 epochs, the
model evaluated after every epoch, and the final model being the *average of
the models from the best 10 epochs* ("To make our model more robust, our
final model is the average of the models in the best 10 epochs").  Averaging
is implemented as a prediction ensemble over the best-k epoch snapshots —
averaging raw weights across distant epochs of a non-convex model destroys
them, whereas averaging predictions gives the robustness the paper reports.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..exceptions import ConfigError
from ..features.builder import ExampleSet
from ..obs import get_logger, get_registry, record_training_history
from ..nn import (
    Adam,
    ConstantSchedule,
    CosineDecay,
    Module,
    StepDecay,
    Tensor,
    clip_gradients,
    iterate_minibatches,
    losses,
)
from .batching import batch_targets, make_batch
from .normalization import InputScales

_log = get_logger(__name__)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run (paper defaults).

    ``loss`` is a name ("mse" / "mae" / "huber") or any callable
    ``(pred, target) -> Tensor`` — e.g. ``repro.nn.quantile_loss(0.8)``
    for risk-aware dispatch targets.  ``lr_schedule`` is ``"constant"``
    (the paper's setting), ``"step"`` (halve every ``epochs // 3``) or
    ``"cosine"``.  ``grad_clip`` bounds the global gradient norm per step
    (0 disables clipping).
    """

    epochs: int = 50
    batch_size: int = 64
    learning_rate: float = 1e-3
    loss: object = "mse"
    best_k: int = 10
    seed: int = 0
    shuffle: bool = True
    lr_schedule: str = "constant"
    grad_clip: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.best_k <= 0:
            raise ConfigError("best_k must be positive")
        if self.lr_schedule not in ("constant", "step", "cosine"):
            raise ConfigError(
                f"lr_schedule must be constant/step/cosine, got {self.lr_schedule!r}"
            )
        if self.grad_clip < 0:
            raise ConfigError("grad_clip must be non-negative (0 disables)")


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_loss: List[float] = field(default_factory=list)
    eval_mae: List[float] = field(default_factory=list)
    eval_rmse: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    def best_epochs(self, k: int) -> List[int]:
        """Indices of the k best epochs by eval RMSE (train loss fallback)."""
        scores = self.eval_rmse if self.eval_rmse else self.train_loss
        order = np.argsort(scores)
        return [int(i) for i in order[:k]]


class Trainer:
    """Trains a DeepSD model on an :class:`ExampleSet`.

    ``clock`` is the monotonic clock used for epoch timings
    (``time.perf_counter`` by default); tests inject a fake one so
    ``TrainingHistory.epoch_seconds`` is deterministic.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[TrainingConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.clock = clock or time.perf_counter
        self._loss_fn = losses.get(self.config.loss)
        self._ensemble_states: List[Dict[str, np.ndarray]] = []

    def fit(
        self,
        train_set: ExampleSet,
        eval_set: Optional[ExampleSet] = None,
        *,
        callback: Optional[Callable[[int, TrainingHistory], None]] = None,
    ) -> TrainingHistory:
        """Run the full training protocol and load the averaged best weights.

        ``callback(epoch, history)`` fires after each epoch — used by the
        convergence experiments (Fig. 16) to record learning curves.
        """
        config = self.config
        # DeepSD models normalise their count inputs; fit the per-signal
        # scales from the training set unless the caller provided them.
        if getattr(self.model, "input_scales", "absent") is None:
            self.model.input_scales = InputScales.from_example_set(train_set)
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        scheduler = self._build_scheduler(optimizer)
        rng = np.random.default_rng(config.seed)
        history = TrainingHistory()
        snapshots: List[Dict[str, np.ndarray]] = []

        _log.event(
            "train.start",
            level=logging.DEBUG,
            epochs=config.epochs,
            items=train_set.n_items,
            batch_size=config.batch_size,
            seed=config.seed,
        )
        for epoch in range(config.epochs):
            started = self.clock()
            epoch_loss = self._run_epoch(train_set, optimizer, rng)
            epoch_lr = optimizer.lr
            scheduler.step()
            history.train_loss.append(epoch_loss)
            history.epoch_seconds.append(self.clock() - started)

            if eval_set is not None:
                predictions = self._predict_current(eval_set)
                errors = predictions - eval_set.gaps
                history.eval_mae.append(float(np.abs(errors).mean()))
                history.eval_rmse.append(float(np.sqrt((errors ** 2).mean())))

            if _log.isEnabledFor(logging.INFO):
                fields = {
                    "epoch": epoch + 1,
                    "epochs": config.epochs,
                    "train_loss": epoch_loss,
                    "lr": epoch_lr,
                    # Global grad norm of the last batch — a cheap proxy,
                    # computed only when the event is actually emitted.
                    "grad_norm": _grad_norm(self.model.parameters()),
                    "seconds": history.epoch_seconds[-1],
                }
                if history.eval_mae:
                    fields["val_mae"] = history.eval_mae[-1]
                    fields["val_rmse"] = history.eval_rmse[-1]
                _log.event("train.epoch", **fields)

            snapshots.append(self.model.state_dict())
            if callback is not None:
                callback(epoch, history)

        best = history.best_epochs(min(config.best_k, len(snapshots)))
        self._ensemble_states = [snapshots[i] for i in best]
        # Leave the live weights at the single best epoch; predict() then
        # ensembles over the best-k snapshots.
        self.model.load_state_dict(self._ensemble_states[0])
        record_training_history(history, get_registry())
        _log.event(
            "train.done",
            level=logging.DEBUG,
            epochs=history.n_epochs,
            best_epoch=best[0],
            seconds=float(sum(history.epoch_seconds)),
        )
        return history

    def _run_epoch(
        self,
        train_set: ExampleSet,
        optimizer: Adam,
        rng: np.random.Generator,
    ) -> float:
        config = self.config
        self.model.train()
        total_loss = 0.0
        n_batches = 0
        for indices in iterate_minibatches(
            train_set.n_items, config.batch_size, shuffle=config.shuffle, rng=rng
        ):
            batch = make_batch(train_set, indices)
            targets = batch_targets(train_set, indices)
            optimizer.zero_grad()
            predictions = self.model(batch)
            loss = self._loss_fn(predictions, Tensor(targets))
            loss.backward()
            if config.grad_clip:
                clip_gradients(self.model.parameters(), config.grad_clip)
            optimizer.step()
            total_loss += loss.item()
            n_batches += 1
        return total_loss / max(n_batches, 1)

    def _build_scheduler(self, optimizer: Adam):
        config = self.config
        if config.lr_schedule == "step":
            return StepDecay(optimizer, step_size=max(config.epochs // 3, 1))
        if config.lr_schedule == "cosine":
            return CosineDecay(optimizer, total_epochs=config.epochs)
        return ConstantSchedule(optimizer)

    def predict(self, example_set: ExampleSet, batch_size: int = 1024) -> np.ndarray:
        """Gap predictions, ensembled over the best-k epoch snapshots.

        Before :meth:`fit` completes (or when it ran without snapshots) the
        live weights are used directly.
        """
        if not self._ensemble_states:
            return self._predict_current(example_set, batch_size)
        current = self.model.state_dict()
        total = np.zeros(example_set.n_items)
        for state in self._ensemble_states:
            self.model.load_state_dict(state)
            total += self._predict_current(example_set, batch_size)
        self.model.load_state_dict(current)
        return total / len(self._ensemble_states)

    def _predict_current(
        self, example_set: ExampleSet, batch_size: int = 1024
    ) -> np.ndarray:
        """Predictions from the live weights (inference mode, no dropout)."""
        self.model.eval()
        outputs = np.empty(example_set.n_items)
        for indices in iterate_minibatches(
            example_set.n_items, batch_size, shuffle=False
        ):
            batch = make_batch(example_set, indices)
            outputs[indices] = self.model(batch).data
        self.model.train()
        return outputs


def _grad_norm(parameters) -> float:
    """Global L2 norm of the current parameter gradients."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad ** 2).sum())
    return float(np.sqrt(total))


def _average_states(states: List[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Elementwise mean of several state dicts (the best-k averaging)."""
    if not states:
        raise ValueError("no states to average")
    averaged = {}
    for key in states[0]:
        averaged[key] = np.mean([state[key] for state in states], axis=0)
    return averaged


def predict_gaps(model: Module, example_set: ExampleSet, batch_size: int = 1024) -> np.ndarray:
    """Standalone inference helper for a trained model."""
    return Trainer(model).predict(example_set, batch_size=batch_size)
