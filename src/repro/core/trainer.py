"""Training loop for DeepSD models (Section VI-B/C of the paper).

Replicates the paper's protocol: Adam with batch size 64, 50 epochs, the
model evaluated after every epoch, and the final model being the *average of
the models from the best 10 epochs* ("To make our model more robust, our
final model is the average of the models in the best 10 epochs").  Averaging
is implemented as a prediction ensemble over the best-k epoch snapshots —
averaging raw weights across distant epochs of a non-convex model destroys
them, whereas averaging predictions gives the robustness the paper reports.

Training is fault tolerant: ``fit(checkpoint_dir=…)`` writes atomic
:class:`~repro.core.checkpoint.Checkpoint` bundles and ``resume_from=``
restarts a killed run with bitwise-identical arithmetic (see
``docs/reproduce.md`` §Fault-tolerant training).  The best-k snapshots are
kept as a bounded running top-k — spilled through the checkpoint directory
when one is configured — so peak memory never scales with the epoch count.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigError
from ..features.builder import ExampleSet
from ..obs import get_logger, get_registry, get_tracer, record_training_history
from ..nn import (
    INVARIANT_BLOCK,
    Adam,
    ConstantSchedule,
    CosineDecay,
    ForwardTape,
    Module,
    StepDecay,
    TapeUnsupported,
    Tensor,
    TrainingTape,
    batch_invariant,
    clip_gradients,
    losses,
)
from .batching import INPUT_FIELDS, EpochBatches
from .checkpoint import (
    BestSnapshots,
    Checkpoint,
    config_fingerprint,
    dropout_rng_states,
    restore_dropout_rng_states,
)
from .normalization import _SCALED_KEYS, InputScales

_log = get_logger(__name__)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run (paper defaults).

    ``loss`` is a name ("mse" / "mae" / "huber") or any callable
    ``(pred, target) -> Tensor`` — e.g. ``repro.nn.quantile_loss(0.8)``
    for risk-aware dispatch targets.  ``lr_schedule`` is ``"constant"``
    (the paper's setting), ``"step"`` (halve every ``epochs // 3``) or
    ``"cosine"``.  ``grad_clip`` bounds the global gradient norm per step
    (0 disables clipping).
    """

    epochs: int = 50
    batch_size: int = 64
    learning_rate: float = 1e-3
    loss: object = "mse"
    best_k: int = 10
    seed: int = 0
    shuffle: bool = True
    lr_schedule: str = "constant"
    grad_clip: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.best_k <= 0:
            raise ConfigError("best_k must be positive")
        if self.lr_schedule not in ("constant", "step", "cosine"):
            raise ConfigError(
                f"lr_schedule must be constant/step/cosine, got {self.lr_schedule!r}"
            )
        if self.grad_clip < 0:
            raise ConfigError("grad_clip must be non-negative (0 disables)")


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_loss: List[float] = field(default_factory=list)
    eval_mae: List[float] = field(default_factory=list)
    eval_rmse: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    def best_epochs(self, k: int) -> List[int]:
        """Indices of the k best epochs by eval RMSE (train loss fallback).

        The sort is stable so ties resolve to the earlier epoch — the same
        rule the trainer's running :class:`BestSnapshots` tracker applies,
        keeping the two selections identical.
        """
        scores = self.eval_rmse if self.eval_rmse else self.train_loss
        order = np.argsort(scores, kind="stable")
        return [int(i) for i in order[:k]]

    def to_dict(self) -> Dict[str, List[float]]:
        """Plain-list form for JSON persistence (checkpoints)."""
        return {
            "train_loss": list(self.train_loss),
            "eval_mae": list(self.eval_mae),
            "eval_rmse": list(self.eval_rmse),
            "epoch_seconds": list(self.epoch_seconds),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, List[float]]) -> "TrainingHistory":
        return cls(
            train_loss=[float(x) for x in payload.get("train_loss", [])],
            eval_mae=[float(x) for x in payload.get("eval_mae", [])],
            eval_rmse=[float(x) for x in payload.get("eval_rmse", [])],
            epoch_seconds=[float(x) for x in payload.get("epoch_seconds", [])],
        )


class Trainer:
    """Trains a DeepSD model on an :class:`ExampleSet`.

    ``clock`` is the monotonic clock used for epoch timings
    (``time.perf_counter`` by default); tests inject a fake one so
    ``TrainingHistory.epoch_seconds`` is deterministic.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[TrainingConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
        use_tape: Optional[bool] = None,
        tape_dtype: str = "float64",
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.clock = clock or time.perf_counter
        self._loss_fn = losses.get(self.config.loss)
        # Taped execution (repro.nn.tape): trace one minibatch / inference
        # block, replay as flat preallocated numpy.  ``None`` auto-enables
        # for models that declare themselves tape-safe; float64 tapes are
        # bitwise-identical to module dispatch, so this is purely a speed
        # knob.  ``tape_dtype="float32"`` opts inference into reduced
        # precision (training tapes stay float64 regardless).
        if use_tape is None:
            use_tape = bool(getattr(model, "tape_safe", False))
        if tape_dtype not in ("float64", "float32"):
            raise ConfigError(
                f"tape_dtype must be 'float64' or 'float32', got {tape_dtype!r}"
            )
        self.use_tape = bool(use_tape)
        self.tape_dtype = tape_dtype
        # rows -> TrainingTape; set to None permanently on TapeUnsupported.
        self._train_tapes: Optional[Dict[int, TrainingTape]] = {}
        # n_rows -> ForwardTape; set to None permanently on TapeUnsupported.
        self._eval_tapes: Optional[Dict[int, ForwardTape]] = {}
        self._eval_tape_scales = None
        self._ensemble_states: List[Dict[str, np.ndarray]] = []
        # Reused epoch-gather destinations (see EpochBatches ``buffers``).
        self._gather_buffers: Dict[str, np.ndarray] = {}
        # Provenance of the most recent fit(), for run manifests.
        self.resumed_from: Optional[str] = None
        self.resumed_epoch: Optional[int] = None
        self.last_checkpoint: Optional[str] = None
        # Training-set metadata captured by fit() and persisted into every
        # checkpoint's `serving` extras, so a serving process can featurize
        # queries exactly as training did (see Trainer.from_checkpoint).
        self._train_meta: Dict[str, object] = {}
        # Set by from_checkpoint(): the bundle's serving extras.
        self.serving_meta: Optional[Dict[str, object]] = None
        # Optional P10/P50/P90 residual head (repro.core.quantiles); rides
        # along in the checkpoint serving extras when present.
        self.quantile_head = None

    def fit(
        self,
        train_set: ExampleSet,
        eval_set: Optional[ExampleSet] = None,
        *,
        callback: Optional[Callable[[int, TrainingHistory], None]] = None,
        checkpoint_dir: Optional[str | os.PathLike] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[str | os.PathLike] = None,
        stop_after_epoch: Optional[int] = None,
    ) -> TrainingHistory:
        """Run the full training protocol and load the averaged best weights.

        ``callback(epoch, history)`` fires after each epoch — used by the
        convergence experiments (Fig. 16) to record learning curves.

        With ``checkpoint_dir`` set, a :class:`Checkpoint` bundle is written
        atomically every ``checkpoint_every`` epochs (and at the final one),
        and the best-k snapshots spill to disk instead of living in memory.
        ``resume_from`` (a checkpoint directory, ``ckpt-*.json`` path or
        stem) restarts a killed run from its save point with bitwise-
        identical arithmetic — same final weights, history and ensemble as
        the uninterrupted run.  ``stop_after_epoch`` ends the run early
        after writing a checkpoint; it exists for fault-injection tests and
        graceful preemption drains.
        """
        config = self.config
        if checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if stop_after_epoch is not None and stop_after_epoch < 1:
            raise ConfigError(
                f"stop_after_epoch must be >= 1, got {stop_after_epoch}"
            )
        if checkpoint_dir is not None:
            checkpoint_dir = os.fspath(checkpoint_dir)
        # DeepSD models normalise their count inputs; fit the per-signal
        # scales from the training set unless the caller provided them.
        if getattr(self.model, "input_scales", "absent") is None:
            self.model.input_scales = InputScales.from_example_set(train_set)
        # Input scales are folded into the tapes' refill step; retrace now
        # that they are final for this run.
        self._train_tapes = {}
        self._eval_tapes = {}
        self._train_meta = {
            "window": int(train_set.window),
            "n_areas": int(train_set.n_areas),
            "feature_scalers": {
                name: [float(mean), float(std)]
                for name, (mean, std) in sorted(train_set.scalers.items())
            },
        }
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        scheduler = self._build_scheduler(optimizer)
        rng = np.random.default_rng(config.seed)
        history = TrainingHistory()
        tracker = BestSnapshots(config.best_k, directory=checkpoint_dir)
        fingerprint = config_fingerprint(config)
        self.resumed_from = None
        self.resumed_epoch = None
        self.last_checkpoint = None

        start_epoch = 0
        if resume_from is not None:
            ckpt = Checkpoint.load(resume_from)
            if ckpt.fingerprint != fingerprint:
                raise ConfigError(
                    f"checkpoint {ckpt.path!r} was written under a different "
                    f"training config (fingerprint {ckpt.fingerprint} != "
                    f"{fingerprint}); resuming would break run equivalence"
                )
            if ckpt.epoch > config.epochs:
                raise ConfigError(
                    f"checkpoint is at epoch {ckpt.epoch}, beyond the "
                    f"configured {config.epochs} epochs"
                )
            self.model.load_state_dict(ckpt.model_state)
            optimizer.load_state_dict(ckpt.optimizer_state)
            scheduler.load_state_dict(ckpt.scheduler_state)
            rng.bit_generator.state = ckpt.rng_state
            restore_dropout_rng_states(self.model, ckpt.dropout_states)
            history = TrainingHistory.from_dict(ckpt.history)
            tracker.restore(ckpt.best_entries, ckpt.directory)
            start_epoch = ckpt.epoch
            self.resumed_from = ckpt.path
            self.resumed_epoch = ckpt.epoch
            _log.event("train.resume", path=ckpt.path, epoch=ckpt.epoch)

        _log.event(
            "train.start",
            level=logging.DEBUG,
            epochs=config.epochs,
            items=train_set.n_items,
            batch_size=config.batch_size,
            seed=config.seed,
        )
        tracer = get_tracer()
        for epoch in range(start_epoch, config.epochs):
            started = self.clock()
            with tracer.span("train.epoch", epoch=epoch + 1):
                epoch_loss, grad_norm = self._run_epoch(train_set, optimizer, rng)
            epoch_lr = optimizer.lr
            scheduler.step()
            history.train_loss.append(epoch_loss)
            history.epoch_seconds.append(self.clock() - started)

            if eval_set is not None:
                predictions = self._predict_current(eval_set)
                errors = predictions - eval_set.gaps
                history.eval_mae.append(float(np.abs(errors).mean()))
                history.eval_rmse.append(float(np.sqrt((errors ** 2).mean())))

            if _log.isEnabledFor(logging.INFO):
                fields = {
                    "epoch": epoch + 1,
                    "epochs": config.epochs,
                    "train_loss": epoch_loss,
                    "lr": epoch_lr,
                    # Pre-clip global norm of the last batch, as returned
                    # by clip_gradients.
                    "grad_norm": grad_norm,
                    "seconds": history.epoch_seconds[-1],
                }
                if history.eval_mae:
                    fields["val_mae"] = history.eval_mae[-1]
                    fields["val_rmse"] = history.eval_rmse[-1]
                _log.event("train.epoch", **fields)

            # The ranking score mirrors best_epochs(): eval RMSE when an
            # eval set is present, else the training loss.
            score = history.eval_rmse[-1] if eval_set is not None else epoch_loss
            tracker.update(epoch, score, self.model.state_dict())

            done = epoch + 1 == config.epochs
            stopping = stop_after_epoch is not None and epoch + 1 >= stop_after_epoch
            if checkpoint_dir is not None and (
                done or stopping or (epoch + 1) % checkpoint_every == 0
            ):
                self.last_checkpoint = self._save_checkpoint(
                    checkpoint_dir, epoch + 1, optimizer, scheduler, rng,
                    history, tracker, fingerprint,
                )
            if callback is not None:
                callback(epoch, history)
            if stopping and not done:
                _log.event(
                    "train.interrupted",
                    epoch=epoch + 1,
                    epochs=config.epochs,
                    checkpoint=self.last_checkpoint,
                )
                break

        best = tracker.best_epochs()
        self._ensemble_states = tracker.states()
        # Leave the live weights at the single best epoch; predict() then
        # ensembles over the best-k snapshots.
        if self._ensemble_states:
            self.model.load_state_dict(self._ensemble_states[0])
        record_training_history(history, get_registry())
        _log.event(
            "train.done",
            level=logging.DEBUG,
            epochs=history.n_epochs,
            best_epoch=best[0] if best else -1,
            seconds=float(sum(history.epoch_seconds)),
        )
        return history

    def _save_checkpoint(
        self,
        checkpoint_dir: str,
        epoch: int,
        optimizer: Adam,
        scheduler,
        rng: np.random.Generator,
        history: TrainingHistory,
        tracker: BestSnapshots,
        fingerprint: str,
    ) -> str:
        serving: Dict[str, object] = dict(self._train_meta)
        spec = getattr(self.model, "spec", None)
        if spec is not None:
            serving["model_spec"] = dict(spec)
        scales = getattr(self.model, "input_scales", None)
        if scales is not None:
            serving["input_scales"] = {
                name: float(value) for name, value in vars(scales).items()
            }
        if self.quantile_head is not None:
            serving["quantiles"] = self.quantile_head.to_config()
        checkpoint = Checkpoint(
            epoch=epoch,
            model_state=self.model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            scheduler_state=scheduler.state_dict(),
            rng_state=rng.bit_generator.state,
            dropout_states=dropout_rng_states(self.model),
            history=history.to_dict(),
            best_entries=tracker.ordered(),
            fingerprint=fingerprint,
            config=vars(self.config).copy(),
            serving=serving,
        )
        path = checkpoint.save(checkpoint_dir)
        _log.event("train.checkpoint", level=logging.DEBUG, path=path, epoch=epoch)
        return path

    def _run_epoch(
        self,
        train_set: ExampleSet,
        optimizer: Adam,
        rng: np.random.Generator,
    ) -> Tuple[float, float]:
        """One pass over the training set.

        Returns the mean batch loss and the last batch's pre-clip global
        gradient norm (clip_gradients measures it either way; an infinite
        bound turns the call into a pure measurement when clipping is off).

        Batches come from one :class:`EpochBatches` permutation-gather
        over the fields the model declares it reads (``input_fields``) —
        the same rows in the same order as per-batch fancy indexing of the
        shuffled index array, so the arithmetic (and the RNG stream, one
        shuffle per epoch) is bitwise-identical to the historical loop,
        which gathered every ExampleSet field for every batch.
        """
        config = self.config
        tracer = get_tracer()
        self.model.train()
        total_loss = 0.0
        n_batches = 0
        grad_norm = 0.0
        max_norm = config.grad_clip if config.grad_clip else float("inf")
        with tracer.span("train.batch_gather", items=train_set.n_items):
            permutation = None
            if config.shuffle:
                permutation = np.arange(train_set.n_items)
                rng.shuffle(permutation)
            epoch_batches = EpochBatches(
                train_set, permutation, self._input_fields(), self._gather_buffers
            )
        # parameters() walks the module tree; resolve it once per epoch
        # instead of once per step.
        parameters = list(self.model.parameters())
        for batch, targets in epoch_batches.batches(config.batch_size):
            tape = self._train_tape(batch, targets) if self.use_tape else None
            if tape is not None:
                # Taped replay: bitwise-identical to the module-dispatch
                # path below (same arithmetic, same dropout RNG stream,
                # same gradient accumulation order), minus the dispatch.
                with tracer.span("train.forward"):
                    batch_loss = tape.run_forward(batch, targets)
                with tracer.span("train.backward"):
                    tape.run_backward()
                grad_norm = tape.run_clip(parameters, max_norm)
                with tracer.span("train.optim.step"):
                    if not tape.run_optim(optimizer):
                        optimizer.step()
                total_loss += batch_loss
                n_batches += 1
                continue
            optimizer.zero_grad()
            with tracer.span("train.forward"):
                predictions = self.model(batch)
                loss = self._loss_fn(predictions, Tensor(targets))
            with tracer.span("train.backward"):
                loss.backward()
            grad_norm = clip_gradients(parameters, max_norm)
            with tracer.span("train.optim.step"):
                optimizer.step()
            total_loss += loss.item()
            n_batches += 1
        return total_loss / max(n_batches, 1), grad_norm

    def _tape_divisors(self) -> Dict[str, float]:
        """Per-field divisors equivalent to ``InputScales.apply``, folded
        into the tapes' input-refill step."""
        scales = getattr(self.model, "input_scales", None)
        if scales is None:
            return {}
        divisors: Dict[str, float] = {}
        for key, fields in _SCALED_KEYS.items():
            factor = float(getattr(scales, key))
            if factor != 1.0:
                for name in fields:
                    divisors[name] = factor
        return divisors

    def _train_tape(self, batch, targets) -> Optional[TrainingTape]:
        """Cached per-row-count training tape; None => module dispatch."""
        if self._train_tapes is None:
            return None
        rows = len(targets)
        tape = self._train_tapes.get(rows)
        if tape is not None and not tape.is_valid(self.model):
            tape = None
        if tape is None:
            try:
                tape = TrainingTape.trace(
                    self.model,
                    self._loss_fn,
                    batch,
                    targets,
                    divisors=self._tape_divisors(),
                )
            except TapeUnsupported as exc:
                _log.info("training tape disabled", reason=str(exc))
                self._train_tapes = None
                return None
            self._train_tapes[rows] = tape
        return tape

    def _forward_tape(
        self, template, n_rows: int = INVARIANT_BLOCK
    ) -> Optional[ForwardTape]:
        """Cached inference tape traced at ``n_rows`` rows.

        One tape per block size: big batches replay INVARIANT_BLOCK-row
        blocks; short serving batches use the smallest power-of-two block
        that fits (see :meth:`_predict_current`).
        """
        if self._eval_tapes is None:
            return None
        scales = getattr(self.model, "input_scales", None)
        if self._eval_tape_scales is not scales:
            # Scales are folded into every tape's refill step; a new
            # scales object invalidates them all.
            self._eval_tapes = {}
            self._eval_tape_scales = scales
        tape = self._eval_tapes.get(n_rows)
        if tape is not None and (
            not tape.matches(template) or not tape.params_bound()
        ):
            tape = None
        if tape is None:
            dtype = None if self.tape_dtype == "float64" else self.tape_dtype
            # Trace in inference mode (no dropout); replay never consults
            # module modes, so the caller's mode is restored right away.
            was_training = self.model.training
            if was_training:
                self.model.eval()
            try:
                tape = ForwardTape.trace(
                    self.model,
                    template,
                    n_rows=n_rows,
                    divisors=self._tape_divisors(),
                    dtype=dtype,
                )
            except TapeUnsupported as exc:
                _log.info("inference tape disabled", reason=str(exc))
                self._eval_tapes = None
                return None
            finally:
                if was_training:
                    self.model.train()
            self._eval_tapes[n_rows] = tape
        tape.refresh_params()  # no-op for float64 tapes
        return tape

    def _input_fields(self):
        """The batch fields to gather: what the model says it reads.

        Models without an ``input_fields`` declaration get every field
        (the historical behaviour), so ad-hoc models keep working.
        """
        return tuple(getattr(self.model, "input_fields", None) or INPUT_FIELDS)

    def _build_scheduler(self, optimizer: Adam):
        config = self.config
        if config.lr_schedule == "step":
            return StepDecay(optimizer, step_size=max(config.epochs // 3, 1))
        if config.lr_schedule == "cosine":
            return CosineDecay(optimizer, total_epochs=config.epochs)
        return ConstantSchedule(optimizer)

    @classmethod
    def from_checkpoint(
        cls, source: "str | os.PathLike | Checkpoint"
    ) -> "Trainer":
        """Rebuild an inference-ready trainer from a checkpoint bundle.

        The bundle must carry serving metadata (every checkpoint written by
        :meth:`fit` does): the model's constructor spec, its input scales and
        the best-k snapshot references.  The returned trainer predicts with
        the same best-k ensemble the training run would have produced — the
        serving layer (:mod:`repro.serving`) builds on this.

        The training-set metadata travels on the trainer as
        ``serving_meta`` (window, n_areas, environment scalers).
        """
        from . import build_from_spec

        checkpoint = (
            source if isinstance(source, Checkpoint) else Checkpoint.load(source)
        )
        serving = checkpoint.serving
        spec = serving.get("model_spec")
        if not spec:
            raise ConfigError(
                f"checkpoint {checkpoint.path!r} carries no serving metadata "
                "(model_spec); re-train with a current version to serve from it"
            )
        model = build_from_spec(spec)
        scales = serving.get("input_scales")
        if scales is not None:
            model.input_scales = InputScales(**scales)
        try:
            trainer = cls(model, TrainingConfig(**checkpoint.config))
        except (TypeError, ConfigError, KeyError):
            # Configs carrying non-roundtrippable values (e.g. a custom loss
            # callable serialized by name) don't matter for inference.
            trainer = cls(model, TrainingConfig())
        trainer._ensemble_states = checkpoint.ensemble_states()
        model.load_state_dict(trainer._ensemble_states[0])
        model.eval()
        trainer.serving_meta = dict(serving)
        quantiles = serving.get("quantiles")
        if quantiles:
            from .quantiles import QuantileHead

            trainer.quantile_head = QuantileHead.from_config(quantiles)
        return trainer

    def predict(self, example_set: ExampleSet, batch_size: int = 1024) -> np.ndarray:
        """Gap predictions, ensembled over the best-k epoch snapshots.

        Before :meth:`fit` completes (or when it ran without snapshots) the
        live weights are used directly.  Predictions are independent of
        ``batch_size`` bitwise: inference runs under
        :func:`repro.nn.batch_invariant`, so serving the same item alone or
        inside any micro-batch yields identical bits (the serving
        determinism contract).
        """
        if not self._ensemble_states:
            return self._predict_current(example_set, batch_size)
        current = self.model.state_dict()
        total = np.zeros(example_set.n_items)
        for state in self._ensemble_states:
            self.model.load_state_dict(state)
            total += self._predict_current(example_set, batch_size)
        self.model.load_state_dict(current)
        return total / len(self._ensemble_states)

    def _predict_current(
        self, example_set: ExampleSet, batch_size: int = 1024
    ) -> np.ndarray:
        """Predictions from the live weights (inference mode, no dropout).

        The model's prior train/eval mode is restored on exit, so running
        inference on a trained model does not leave dropout active for a
        later direct ``model(batch)`` call.
        """
        n_items = example_set.n_items
        outputs = np.empty(n_items)
        if n_items == 0:
            return outputs
        # Sequential order: serve zero-copy slice views of the set itself.
        epoch_batches = EpochBatches(example_set, fields=self._input_fields())
        tape = None
        if self.use_tape:
            # Short batches replay on a tape traced at the smallest
            # power-of-two block that fits (min 4): a sub-block plain
            # matmul is exactly what batch_invariant() computes for a
            # partial block, so every row's bits are unchanged — only the
            # padding work shrinks.
            block = INVARIANT_BLOCK
            if n_items < INVARIANT_BLOCK:
                block = 4
                while block < n_items:
                    block *= 2
            template, _ = epoch_batches.slice(0, min(n_items, block))
            tape = self._forward_tape(template, block)
        with get_tracer().span("trainer.predict", items=n_items):
            if tape is not None:
                # Taped replay in INVARIANT_BLOCK-row blocks: a full plain
                # block matmul is bitwise-identical to the blocked
                # batch_invariant() matmul, so padding short batches inside
                # the tape preserves the serving determinism contract.
                # The tape was traced in inference mode and replay never
                # consults module state, so no eval()/train() tree walks
                # are needed here (they dominate small-batch latency).
                block = tape.n_rows
                for start in range(0, n_items, block):
                    stop = min(start + block, n_items)
                    batch, _ = epoch_batches.slice(start, stop)
                    outputs[start:stop] = tape.replay(batch)
            else:
                was_training = self.model.training
                self.model.eval()
                try:
                    with batch_invariant():
                        for start in range(0, n_items, batch_size):
                            stop = min(start + batch_size, n_items)
                            batch, _ = epoch_batches.slice(start, stop)
                            outputs[start:stop] = self.model(batch).data
                finally:
                    if was_training:
                        self.model.train()
        return outputs


def predict_gaps(model: Module, example_set: ExampleSet, batch_size: int = 1024) -> np.ndarray:
    """Standalone inference helper for a trained model."""
    return Trainer(model).predict(example_set, batch_size=batch_size)
