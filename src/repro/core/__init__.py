"""DeepSD models: the paper's primary contribution.

- :class:`BasicDeepSD` — Section IV: identity + supply-demand + environment
  blocks chained with block-level residual learning;
- :class:`AdvancedDeepSD` — Section V: extended order part with per-weekday
  history combination, projection-space estimation, last-call and
  waiting-time blocks;
- :class:`Trainer` — the paper's training protocol (Adam, batch 64,
  50 epochs, best-10-epoch parameter averaging), with fault-tolerant
  checkpoint/resume (:mod:`repro.core.checkpoint`);
- constructor flags expose every ablation the evaluation section needs
  (one-hot identity, no-residual, environment on/off).
"""

from .advanced import AdvancedDeepSD
from .basic import BasicDeepSD
from .batching import INPUT_FIELDS, batch_targets, make_batch
from .checkpoint import BestSnapshots, Checkpoint, config_fingerprint
from .blocks import (
    BLOCK_WIDTH,
    HIDDEN_WIDTH,
    IdentityBlock,
    OneHotIdentityBlock,
    OutputHead,
    SupplyDemandBlock,
    TrafficBlock,
    WeatherBlock,
    WeekdayCombiner,
)
from .extended import ExtendedBlock, combine_history
from .normalization import InputScales
from .predictor import GapPredictor, GapQuery
from .quantiles import (
    DEFAULT_LEVELS,
    QuantileHead,
    attach_quantile_head,
    fit_quantile_head,
)
from .trainer import (
    Trainer,
    TrainingConfig,
    TrainingHistory,
    predict_gaps,
)


def build_from_spec(spec: dict):
    """Rebuild a DeepSD model from its constructor provenance dict.

    Every model instance records its constructor arguments in ``.spec``;
    checkpoints persist that dict so a serving process can reconstruct the
    exact architecture without the training script (see
    :meth:`Trainer.from_checkpoint`).
    """
    from ..config import EmbeddingConfig
    from ..exceptions import ConfigError

    kwargs = dict(spec)
    name = kwargs.pop("model", None)
    classes = {"basic": BasicDeepSD, "advanced": AdvancedDeepSD}
    if name not in classes:
        raise ConfigError(f"unknown model spec {name!r}; known: {sorted(classes)}")
    n_areas = kwargs.pop("n_areas")
    window = kwargs.pop("window")
    embeddings = EmbeddingConfig(**kwargs.pop("embeddings", {}))
    return classes[name](n_areas, window, embeddings, **kwargs)


__all__ = [
    "BasicDeepSD",
    "AdvancedDeepSD",
    "build_from_spec",
    "BestSnapshots",
    "Checkpoint",
    "config_fingerprint",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "predict_gaps",
    "IdentityBlock",
    "OneHotIdentityBlock",
    "SupplyDemandBlock",
    "WeatherBlock",
    "TrafficBlock",
    "OutputHead",
    "WeekdayCombiner",
    "ExtendedBlock",
    "combine_history",
    "InputScales",
    "GapPredictor",
    "GapQuery",
    "DEFAULT_LEVELS",
    "QuantileHead",
    "attach_quantile_head",
    "fit_quantile_head",
    "BLOCK_WIDTH",
    "HIDDEN_WIDTH",
    "INPUT_FIELDS",
    "make_batch",
    "batch_targets",
]
