"""DeepSD building blocks (Sections IV-A to IV-C of the paper).

Blocks are the unit of the architecture.  Each block consumes a fresh slice
of the input data, and — except for the identity block — participates in the
block-level residual chain: block ``k`` receives the running representation
``X`` through a direct connection, computes a residual correction ``R`` from
``(X, its own data)``, and emits ``X ⊕ R``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import EmbeddingConfig
from ..nn import Dense, Embedding, Module, Tensor, concat
from ..nn import functional as F

#: Width of every block's output representation (the paper's FC32).
BLOCK_WIDTH = 32
#: Width of every block's hidden layer (the paper's FC64).
HIDDEN_WIDTH = 64


class IdentityBlock(Module):
    """Embeds AreaID, TimeID and WeekID and concatenates them (Fig. 4)."""

    def __init__(
        self,
        n_areas: int,
        embeddings: EmbeddingConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.area_embedding = Embedding(n_areas, embeddings.area_dim, rng=rng)
        self.time_embedding = Embedding(embeddings.time_vocab, embeddings.time_dim, rng=rng)
        self.week_embedding = Embedding(embeddings.week_vocab, embeddings.week_dim, rng=rng)
        self.output_dim = embeddings.area_dim + embeddings.time_dim + embeddings.week_dim

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        return concat(
            [
                self.area_embedding(batch["area_ids"]),
                self.time_embedding(batch["time_ids"]),
                self.week_embedding(batch["week_ids"]),
            ],
            axis=1,
        )


class OneHotIdentityBlock(Module):
    """Ablation variant: one-hot identity features (Table III baseline).

    No trainable parameters — the categorical values are expanded to
    one-hot vectors and concatenated, exactly the encoding the paper
    compares embeddings against.
    """

    def __init__(self, n_areas: int, embeddings: EmbeddingConfig) -> None:
        super().__init__()
        self.n_areas = n_areas
        self.time_vocab = embeddings.time_vocab
        self.week_vocab = embeddings.week_vocab
        self.output_dim = n_areas + self.time_vocab + self.week_vocab

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        pieces = []
        for ids, vocab in (
            (batch["area_ids"], self.n_areas),
            (batch["time_ids"], self.time_vocab),
            (batch["week_ids"], self.week_vocab),
        ):
            one_hot = np.zeros((len(ids), vocab))
            one_hot[np.arange(len(ids)), ids] = 1.0
            pieces.append(Tensor(one_hot))
        return concat(pieces, axis=1)


class SupplyDemandBlock(Module):
    """The basic model's order block (Fig. 5): ``V_sd → FC64 → FC32``."""

    def __init__(self, window: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.window = window
        self.hidden = Dense(2 * window, HIDDEN_WIDTH, rng=rng)
        self.output = Dense(HIDDEN_WIDTH, BLOCK_WIDTH, rng=rng)
        self.output_dim = BLOCK_WIDTH

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        return self.output(self.hidden(Tensor(batch["sd_now"])))


class _ResidualEnvBlock(Module):
    """Shared machinery of the weather and traffic blocks (Fig. 6).

    Concatenates the previous block's output with this block's environment
    vector, passes it through FC64 → FC32 to get the residual ``R``, and
    returns ``X_prev ⊕ R`` (⊕ = elementwise add via the shortcut).

    When ``residual=False`` (the Table V / Fig. 14 ablation) the block sees
    only its own environment vector and returns just its FC32 output — the
    model then concatenates block outputs instead of summing them.
    """

    def __init__(
        self, env_dim: int, rng: np.random.Generator, residual: bool = True
    ) -> None:
        super().__init__()
        self.residual = residual
        in_dim = env_dim + (BLOCK_WIDTH if residual else 0)
        self.hidden = Dense(in_dim, HIDDEN_WIDTH, rng=rng)
        self.output = Dense(HIDDEN_WIDTH, BLOCK_WIDTH, rng=rng)
        self.output_dim = BLOCK_WIDTH

    def _env_vector(self, batch: Dict[str, np.ndarray]) -> Tensor:
        raise NotImplementedError

    def forward(self, batch: Dict[str, np.ndarray], x_prev: Optional[Tensor]) -> Tensor:
        env = self._env_vector(batch)
        if self.residual:
            if x_prev is None:
                raise ValueError("residual block requires the previous block output")
            r = self.output(self.hidden(concat([x_prev, env], axis=1)))
            return x_prev + r
        return self.output(self.hidden(env))


class WeatherBlock(_ResidualEnvBlock):
    """Weather block: embedded type + temperature + PM2.5 per lookback minute."""

    def __init__(
        self,
        window: int,
        embeddings: EmbeddingConfig,
        rng: np.random.Generator,
        residual: bool = True,
    ) -> None:
        env_dim = window * (embeddings.weather_type_dim + 2)
        super().__init__(env_dim, rng, residual)
        self.window = window
        self.type_embedding = Embedding(
            embeddings.weather_type_vocab, embeddings.weather_type_dim, rng=rng
        )

    def _env_vector(self, batch: Dict[str, np.ndarray]) -> Tensor:
        types = batch["weather_types"]          # (n, L) int
        n, L = types.shape
        embedded = self.type_embedding(types.reshape(-1)).reshape(
            n, L * self.type_embedding.embedding_dim
        )
        return concat(
            [embedded, Tensor(batch["temperature"]), Tensor(batch["pm25"])], axis=1
        )


class TrafficBlock(_ResidualEnvBlock):
    """Traffic block: four congestion-level counts per lookback minute."""

    def __init__(
        self, window: int, rng: np.random.Generator, residual: bool = True
    ) -> None:
        super().__init__(window * 4, rng, residual)
        self.window = window

    def _env_vector(self, batch: Dict[str, np.ndarray]) -> Tensor:
        traffic = batch["traffic"]              # (n, L, 4)
        n = traffic.shape[0]
        return Tensor(traffic.reshape(n, -1))


class OutputHead(Module):
    """Final layers (Fig. 3): concat(identity, blocks) → FC32 → linear neuron."""

    def __init__(self, in_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = Dense(in_dim, BLOCK_WIDTH, rng=rng)
        self.neuron = Dense(BLOCK_WIDTH, 1, activation="linear", rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.neuron(self.hidden(x)).reshape(-1)


class WeekdayCombiner(Module):
    """Learned weekday combining weights ``p`` (Fig. 8, Equation 1).

    Embeds the current AreaID and WeekID, concatenates, and applies a
    softmax layer to produce a 7-way weight vector over the historical
    day-of-week averages.
    """

    def __init__(
        self,
        n_areas: int,
        embeddings: EmbeddingConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.area_embedding = Embedding(n_areas, embeddings.area_dim, rng=rng)
        self.week_embedding = Embedding(embeddings.week_vocab, embeddings.week_dim, rng=rng)
        self.softmax_layer = Dense(
            embeddings.area_dim + embeddings.week_dim,
            7,
            activation="linear",
            rng=rng,
        )

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        embedded = concat(
            [
                self.area_embedding(batch["area_ids"]),
                self.week_embedding(batch["week_ids"]),
            ],
            axis=1,
        )
        return F.softmax(self.softmax_layer(embedded), axis=1)

    def weights_for(self, area_id: int, week_id: int) -> np.ndarray:
        """The learned weight vector for one (area, weekday) — Fig. 15."""
        batch = {
            "area_ids": np.array([area_id]),
            "week_ids": np.array([week_id]),
        }
        self.eval()
        return self.forward(batch).data[0]
