"""Flat design matrices for the classical baselines.

Section VI-C: "For fair comparisons, we use the same input features for the
above methods as those used in DeepSD" — identity features, the three
real-time vectors, per-weekday historical vectors and the environment data.

Trees and LASSO consume a flat numeric matrix, so this module flattens the
structured ExampleSet.  Full per-weekday history would be ~1700 columns
(unmanageable for exact tree induction in pure numpy), so the history is
summarised losslessly for the quantities that matter to the gap: window
sub-sums of the current weekday's history, the across-weekday mean, and
per-weekday invalid-half totals.  DESIGN.md documents this flattening as
part of the baseline protocol.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .builder import ExampleSet

#: Lag sub-windows (inclusive bounds in minutes-before-t) used to summarise
#: history vectors: the last 5 minutes matter most, then 6-10, then the rest.
_SUBWINDOWS = ((1, 5), (6, 10), (11, None))


def _subwindow_sums(vectors: np.ndarray, window: int) -> np.ndarray:
    """Sum each half of (n, 2L) vectors over the lag sub-windows -> (n, 6)."""
    parts = []
    for half in (vectors[:, :window], vectors[:, window:]):
        for low, high in _SUBWINDOWS:
            stop = window if high is None else high
            parts.append(half[:, low - 1 : stop].sum(axis=1))
    return np.stack(parts, axis=1)


def _history_features(
    now_name: str, hist: np.ndarray, week_ids: np.ndarray, window: int
) -> Tuple[np.ndarray, List[str]]:
    """Summaries of a (n, 7, 2L) history block."""
    n = len(hist)
    current = hist[np.arange(n), week_ids]           # (n, 2L) current weekday
    mean_all = hist.mean(axis=1)                      # (n, 2L) across weekdays
    current_sums = _subwindow_sums(current, window)   # (n, 6)
    mean_sums = _subwindow_sums(mean_all, window)     # (n, 6)
    invalid_by_dow = hist[:, :, window:].sum(axis=2)  # (n, 7)
    columns = np.concatenate([current_sums, mean_sums, invalid_by_dow], axis=1)
    names = []
    for half in ("valid", "invalid"):
        for low, high in _SUBWINDOWS:
            names.append(f"{now_name}_hist_dow_{half}_{low}_{high or 'L'}")
    for half in ("valid", "invalid"):
        for low, high in _SUBWINDOWS:
            names.append(f"{now_name}_hist_mean_{half}_{low}_{high or 'L'}")
    names += [f"{now_name}_hist_invalid_dow{w}" for w in range(7)]
    return columns, names


def tree_design_matrix(example_set: ExampleSet) -> Tuple[np.ndarray, List[str]]:
    """Numeric matrix for tree models (raw categorical ids are fine).

    Returns ``(X, feature_names)`` with ``X`` of shape (n, ~170).
    """
    es = example_set
    L = es.window
    blocks: List[np.ndarray] = []
    names: List[str] = []

    blocks.append(
        np.stack([es.area_ids, es.time_ids, es.week_ids], axis=1).astype(np.float64)
    )
    names += ["area_id", "time_id", "week_id"]

    for signal, now in (("sd", es.sd_now), ("lc", es.lc_now), ("wt", es.wt_now)):
        blocks.append(now.astype(np.float64))
        names += [f"{signal}_now_{i}" for i in range(now.shape[1])]

    for signal, hist in (
        ("sd", es.sd_hist),
        ("lc", es.lc_hist),
        ("wt", es.wt_hist),
    ):
        columns, hist_names = _history_features(signal, hist, es.week_ids, L)
        blocks.append(columns)
        names += hist_names

    # Environment summary: current weather type, window means, level totals.
    blocks.append(es.weather_types[:, :1].astype(np.float64))
    names.append("weather_type")
    blocks.append(
        np.stack([es.temperature.mean(axis=1), es.pm25.mean(axis=1)], axis=1)
    )
    names += ["temperature_mean", "pm25_mean"]
    blocks.append(es.traffic.mean(axis=1).astype(np.float64))  # (n, 4)
    names += [f"traffic_level{level}" for level in range(1, 5)]

    matrix = np.concatenate(blocks, axis=1)
    if matrix.shape[1] != len(names):
        raise AssertionError("feature-name bookkeeping out of sync")
    return matrix.astype(np.float64), names


def linear_design_matrix(
    train: ExampleSet, test: ExampleSet
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """One-hot + standardized matrices for linear models (LASSO).

    Categorical identity features become one-hot columns (as the paper does
    for LASSO, which "can not handle the categorical variables"); numeric
    features are standardized with training statistics.
    """
    x_train, names = tree_design_matrix(train)
    x_test, _ = tree_design_matrix(test)

    # Split off the raw categorical columns (first three + weather type).
    categorical = {"area_id": 0, "time_id": 1, "week_id": 2}
    weather_col = names.index("weather_type")
    numeric_cols = [
        i for i in range(x_train.shape[1])
        if i not in categorical.values() and i != weather_col
    ]

    def one_hot(column: np.ndarray, values: np.ndarray) -> np.ndarray:
        return (column[:, None] == values[None, :]).astype(np.float64)

    blocks_train, blocks_test, out_names = [], [], []
    for name, col in (("area", 0), ("time", 1), ("week", 2), ("wtype", weather_col)):
        values = np.unique(x_train[:, col])
        blocks_train.append(one_hot(x_train[:, col], values))
        blocks_test.append(one_hot(x_test[:, col], values))
        out_names += [f"{name}={int(v)}" for v in values]

    numeric_train = x_train[:, numeric_cols]
    mean = numeric_train.mean(axis=0)
    std = numeric_train.std(axis=0)
    std[std < 1e-9] = 1.0
    blocks_train.append((numeric_train - mean) / std)
    blocks_test.append((x_test[:, numeric_cols] - mean) / std)
    out_names += [names[i] for i in numeric_cols]

    return (
        np.concatenate(blocks_train, axis=1),
        np.concatenate(blocks_test, axis=1),
        out_names,
    )
