"""Environment condition vectors — the weather and traffic block inputs.

Section IV-C of the paper: the weather condition vector ``V_wc`` has L
parts, one per lookback minute, each the concatenation of the *embedded*
weather type, the temperature and the PM2.5; the traffic condition vector
``V_tc`` has L parts of four congestion-level counts.

The type embedding lives inside the network, so the featurizer emits the
raw ingredients: integer type codes ``(T, L)`` plus float arrays for
temperature, PM2.5 and the level counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset


@dataclass(frozen=True)
class EnvironmentWindows:
    """Raw environment inputs for a batch of items.

    Attributes
    ----------
    weather_types:
        ``(n, L)`` int64 — weather-type code at each lookback minute
        (index ℓ-1 is minute ``t-ℓ``).
    temperature, pm25:
        ``(n, L)`` float64.
    traffic:
        ``(n, L, 4)`` float64 congestion-level counts.
    """

    weather_types: np.ndarray
    temperature: np.ndarray
    pm25: np.ndarray
    traffic: np.ndarray

    def __post_init__(self) -> None:
        n, L = self.weather_types.shape
        if self.temperature.shape != (n, L) or self.pm25.shape != (n, L):
            raise ValueError("temperature/pm25 must match weather_types' shape")
        if self.traffic.shape != (n, L, 4):
            raise ValueError(f"traffic must be (n, L, 4), got {self.traffic.shape}")


def extract_environment(
    dataset: "CityDataset",
    area_ids: np.ndarray,
    days: np.ndarray,
    timeslots: np.ndarray,
    window: int,
) -> EnvironmentWindows:
    """Environment windows for each (area, day, timeslot) item.

    The ℓ-th slot of each window (ℓ = 1…L) is the condition at ``t-ℓ`` —
    the same indexing as the real-time order vectors.
    """
    area_ids = np.asarray(area_ids, dtype=np.int64)
    days = np.asarray(days, dtype=np.int64)
    timeslots = np.asarray(timeslots, dtype=np.int64)
    if not (area_ids.shape == days.shape == timeslots.shape) or area_ids.ndim != 1:
        raise ValueError("area_ids, days and timeslots must be equal-length 1-D arrays")
    if timeslots.size and timeslots.min() < window:
        raise ValueError("timeslots must be >= window")

    lags = np.arange(1, window + 1)
    minutes = timeslots[:, None] - lags[None, :]          # (n, L)
    day_idx = np.broadcast_to(days[:, None], minutes.shape)

    weather_types = dataset.weather.types[day_idx, minutes].astype(np.int64)
    temperature = dataset.weather.temperature[day_idx, minutes].astype(np.float64)
    pm25 = dataset.weather.pm25[day_idx, minutes].astype(np.float64)

    area_idx = np.broadcast_to(area_ids[:, None], minutes.shape)
    traffic = dataset.traffic.level_counts[area_idx, day_idx, minutes].astype(np.float64)

    return EnvironmentWindows(
        weather_types=weather_types,
        temperature=temperature,
        pm25=pm25,
        traffic=traffic,
    )


@dataclass(frozen=True)
class Standardizer:
    """Per-channel affine normalisation fit on training data.

    Temperature and PM2.5 live on very different scales from order counts;
    standardising them (train-set mean/std) keeps the first dense layers
    well conditioned.  Count-valued features are left raw, as in the paper.
    """

    mean: float
    std: float

    @classmethod
    def fit(cls, values: np.ndarray) -> "Standardizer":
        std = float(values.std())
        return cls(mean=float(values.mean()), std=std if std > 1e-9 else 1.0)

    def transform(self, values: np.ndarray) -> np.ndarray:
        return (values - self.mean) / self.std

    def inverse(self, values: np.ndarray) -> np.ndarray:
        return values * self.std + self.mean
