"""ExampleSet construction — the paper's train/test item protocol.

Section VI-A: for each area on each training day, one item is generated
every ``train_stride_minutes`` from ``train_start_minute`` to the end of the
day; test items are generated every two hours between 7:30 and 23:30 on the
test days.  Each item carries:

- identity features (AreaID, TimeID, WeekID);
- the three real-time vectors ``V_sd``, ``V_lc``, ``V_wt`` at ``t``;
- the per-weekday historical vectors at ``t`` *and* at ``t + C`` (the
  ingredients of the empirical estimates ``E^{d,t}`` and ``E^{d,t+10}``);
- the weather and traffic windows;
- the gap label over ``[t, t+C)``.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

from ..city.calendar import SimulationCalendar
from ..config import FeatureConfig
from ..exceptions import DataError
from ..obs import get_logger, get_registry
from .environment import Standardizer, extract_environment
from .history import HistoryAccumulator
from .vectors import AreaDayProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset

SIGNALS = ("sd", "lc", "wt")

_log = get_logger(__name__)


def apply_environment_scalers(example_set: "ExampleSet") -> None:
    """Standardize temperature/PM2.5 in place with the set's own scalers.

    Shared by the bulk builder (after fitting scalers on train) and the
    online query featurizer (:class:`repro.core.GapPredictor`), which reuses
    the training set's scalers — both paths must transform identically for
    online predictions to match batch predictions bitwise.
    """
    for name in ("temperature", "pm25"):
        mean, std = example_set.scalers[name]
        values = getattr(example_set, name)
        setattr(
            example_set, name, ((values - mean) / std).astype(np.float32)
        )


@dataclass
class ExampleSet:
    """A featurized set of prediction items.

    Array shapes (``n`` items, window ``L``):

    ==================  =================  =========================================
    field               shape              content
    ==================  =================  =========================================
    area_ids            (n,)               AreaID
    time_ids            (n,)               TimeID — minute of day ``t``
    week_ids            (n,)               WeekID — 0 = Monday … 6 = Sunday
    day_ids             (n,)               absolute simulated day index
    sd_now/lc_now/...   (n, 2L)            real-time vectors at ``t``
    sd_hist/...         (n, 7, 2L)         per-weekday history at ``t``
    sd_hist_next/...    (n, 7, 2L)         per-weekday history at ``t + C``
    weather_types       (n, L)             weather type codes over the window
    temperature/pm25    (n, L)             standardized weather scalars
    traffic             (n, L, 4)          congestion level counts
    gaps                (n,)               label: invalid orders in [t, t+C)
    ==================  =================  =========================================
    """

    area_ids: np.ndarray
    time_ids: np.ndarray
    week_ids: np.ndarray
    day_ids: np.ndarray
    sd_now: np.ndarray
    sd_hist: np.ndarray
    sd_hist_next: np.ndarray
    lc_now: np.ndarray
    lc_hist: np.ndarray
    lc_hist_next: np.ndarray
    wt_now: np.ndarray
    wt_hist: np.ndarray
    wt_hist_next: np.ndarray
    weather_types: np.ndarray
    temperature: np.ndarray
    pm25: np.ndarray
    traffic: np.ndarray
    gaps: np.ndarray
    window: int
    n_areas: int
    scalers: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.area_ids)
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, np.ndarray) and len(value) != n:
                raise DataError(
                    f"field {f.name} has {len(value)} rows, expected {n}"
                )

    @property
    def n_items(self) -> int:
        return len(self.area_ids)

    def __len__(self) -> int:
        return self.n_items

    def subset(self, indices: np.ndarray) -> "ExampleSet":
        """A new ExampleSet with only the selected items."""
        kwargs = {}
        for f in fields(self):
            value = getattr(self, f.name)
            kwargs[f.name] = value[indices] if isinstance(value, np.ndarray) else value
        return ExampleSet(**kwargs)

    def save(self, path: str | os.PathLike) -> None:
        """Serialize to a compressed npz archive."""
        arrays = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if isinstance(getattr(self, f.name), np.ndarray)
        }
        scaler_names = sorted(self.scalers)
        np.savez_compressed(
            os.fspath(path),
            window=np.array([self.window]),
            n_areas=np.array([self.n_areas]),
            scaler_names=np.array(scaler_names),
            scaler_values=np.array(
                [self.scalers[name] for name in scaler_names]
            ).reshape(-1, 2),
            **arrays,
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ExampleSet":
        """Load an ExampleSet written by :meth:`save`."""
        with np.load(os.fspath(path), allow_pickle=False) as archive:
            scalers = {
                str(name): (float(mean), float(std))
                for name, (mean, std) in zip(
                    archive["scaler_names"], archive["scaler_values"]
                )
            }
            kwargs = {
                f.name: archive[f.name]
                for f in fields(cls)
                if f.name in archive.files
                and f.name not in ("window", "n_areas", "scalers")
            }
            return cls(
                window=int(archive["window"][0]),
                n_areas=int(archive["n_areas"][0]),
                scalers=scalers,
                **kwargs,
            )


class FeatureBuilder:
    """Builds train and test :class:`ExampleSet` objects from a city.

    One pass computes the real-time vectors of all three signals for every
    (area, day) at every timeslot any item needs — including the ``t + C``
    slots the historical estimates require — then accumulates per-weekday
    histories and assembles items.
    """

    def __init__(self, dataset: "CityDataset", config: FeatureConfig | None = None):
        self.dataset = dataset
        self.config = config or FeatureConfig()
        if dataset.n_days < self.config.n_days:
            raise DataError(
                f"dataset has {dataset.n_days} days, split needs {self.config.n_days}"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def build(self) -> Tuple[ExampleSet, ExampleSet]:
        """Build (train, test) with environment scalers fit on train."""
        registry = get_registry()
        _log.event(
            "featurize.start",
            level=logging.DEBUG,
            areas=self.dataset.n_areas,
            train_days=self.config.train_days,
            test_days=self.config.test_days,
            window=self.config.window_minutes,
        )
        with registry.timer("repro.featurize.train_seconds") as train_timer:
            train = self._build_items(self._train_items())
        with registry.timer("repro.featurize.test_seconds") as test_timer:
            test = self._build_items(self._test_items())
        for name in ("temperature", "pm25"):
            scaler = Standardizer.fit(getattr(train, name))
            for example_set in (train, test):
                example_set.scalers[name] = (scaler.mean, scaler.std)
        for example_set in (train, test):
            apply_environment_scalers(example_set)
        registry.counter("repro.featurize.items", train.n_items + test.n_items)
        _log.event(
            "featurize.done",
            train_items=train.n_items,
            test_items=test.n_items,
            seconds=train_timer.elapsed + test_timer.elapsed,
        )
        return train, test

    def build_test(self, scalers: Dict[str, Tuple[float, float]]) -> ExampleSet:
        """Build only the test split, standardized with *given* scalers.

        The scenario matrix runner (:mod:`repro.scenarios`) backtests models
        trained on the steady city against transformed cities; like serving,
        it must featurize with the *training* run's environment scalers, not
        scalers refit on the shifted distribution — a model never sees refit
        scalers in production.
        """
        registry = get_registry()
        with registry.timer("repro.featurize.test_seconds"):
            test = self._build_items(self._test_items())
        for name in ("temperature", "pm25"):
            test.scalers[name] = (float(scalers[name][0]), float(scalers[name][1]))
        apply_environment_scalers(test)
        registry.counter("repro.featurize.items", test.n_items)
        return test

    def _train_items(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        days = np.arange(self.config.train_days)
        slots = np.array(list(self.config.train_timeslots()))
        return self._cross(days, slots)

    def _test_items(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        days = np.arange(
            self.config.train_days, self.config.train_days + self.config.test_days
        )
        slots = np.array(list(self.config.test_timeslots()))
        return self._cross(days, slots)

    def _cross(
        self, days: np.ndarray, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(area, day, slot) triples in lexicographic item order."""
        n_areas = self.dataset.n_areas
        area_ids = np.repeat(np.arange(n_areas), len(days) * len(slots))
        day_ids = np.tile(np.repeat(days, len(slots)), n_areas)
        time_ids = np.tile(slots, n_areas * len(days))
        return area_ids, day_ids, time_ids

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _all_slots(self) -> np.ndarray:
        """Union of item slots and their ``t + C`` shifts, sorted."""
        config = self.config
        slots = set(config.train_timeslots()) | set(config.test_timeslots())
        slots |= {s + config.gap_minutes for s in slots}
        return np.array(sorted(slots))

    def _area_signal_tables(
        self, area_id: int, all_slots: np.ndarray
    ) -> Dict[str, Tuple[np.ndarray, HistoryAccumulator]]:
        """Real-time vectors + history accumulator per signal for one area."""
        dataset, config = self.dataset, self.config
        calendar: SimulationCalendar = dataset.calendar
        n_days = config.n_days
        L = config.window_minutes
        tables: Dict[str, Tuple[np.ndarray, HistoryAccumulator]] = {}
        per_signal = {name: [] for name in SIGNALS}
        for day in range(n_days):
            profile = AreaDayProfile(dataset, area_id, day, L)
            per_signal["sd"].append(profile.supply_demand_vectors(all_slots))
            per_signal["lc"].append(profile.last_call_vectors(all_slots))
            per_signal["wt"].append(profile.waiting_time_vectors(all_slots))
        for name in SIGNALS:
            vectors = np.stack(per_signal[name])  # (n_days, n_slots, 2L)
            tables[name] = (vectors, HistoryAccumulator(calendar, vectors))
        return tables

    def _build_items(
        self, items: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> ExampleSet:
        dataset, config = self.dataset, self.config
        area_ids, day_ids, time_ids = items
        n = len(area_ids)
        L = config.window_minutes
        all_slots = self._all_slots()

        now = {name: np.empty((n, 2 * L), dtype=np.float32) for name in SIGNALS}
        hist = {name: np.empty((n, 7, 2 * L), dtype=np.float32) for name in SIGNALS}
        hist_next = {
            name: np.empty((n, 7, 2 * L), dtype=np.float32) for name in SIGNALS
        }

        for area in np.unique(area_ids):
            tables = self._area_signal_tables(int(area), all_slots)
            rows = np.flatnonzero(area_ids == area)
            # all_slots is sorted and contains every item slot and its
            # t + C shift by construction, so searchsorted is an exact
            # vectorized lookup (no per-row dict indexing).
            slot_now = np.searchsorted(all_slots, time_ids[rows])
            slot_next = np.searchsorted(
                all_slots, time_ids[rows] + config.gap_minutes
            )
            days = day_ids[rows]
            for name in SIGNALS:
                vectors, accumulator = tables[name]
                now[name][rows] = vectors[days, slot_now]
                hist[name][rows] = accumulator.history_before_batch(days, slot_now)
                hist_next[name][rows] = accumulator.history_before_batch(
                    days, slot_next
                )

        environment = extract_environment(dataset, area_ids, day_ids, time_ids, L)
        week_ids = (
            (day_ids.astype(np.int64) + dataset.calendar.start_weekday) % 7
        )
        gaps = dataset.gaps(area_ids, day_ids, time_ids, horizon=config.gap_minutes)

        return ExampleSet(
            area_ids=area_ids.astype(np.int64),
            time_ids=time_ids.astype(np.int64),
            week_ids=week_ids,
            day_ids=day_ids.astype(np.int64),
            sd_now=now["sd"],
            sd_hist=hist["sd"],
            sd_hist_next=hist_next["sd"],
            lc_now=now["lc"],
            lc_hist=hist["lc"],
            lc_hist_next=hist_next["lc"],
            wt_now=now["wt"],
            wt_hist=hist["wt"],
            wt_hist_next=hist_next["wt"],
            weather_types=environment.weather_types,
            temperature=environment.temperature.astype(np.float32),
            pm25=environment.pm25.astype(np.float32),
            traffic=environment.traffic.astype(np.float32),
            gaps=gaps.astype(np.float32),
            window=L,
            n_areas=dataset.n_areas,
        )
