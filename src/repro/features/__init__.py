"""Feature extraction: the paper's vectors, histories and item protocol."""

from .builder import SIGNALS, ExampleSet, FeatureBuilder
from .environment import EnvironmentWindows, Standardizer, extract_environment
from .history import HistoryAccumulator, empirical_combination
from .matrix import linear_design_matrix, tree_design_matrix
from .vectors import AreaDayProfile

__all__ = [
    "AreaDayProfile",
    "HistoryAccumulator",
    "empirical_combination",
    "EnvironmentWindows",
    "extract_environment",
    "Standardizer",
    "ExampleSet",
    "FeatureBuilder",
    "SIGNALS",
    "tree_design_matrix",
    "linear_design_matrix",
]
