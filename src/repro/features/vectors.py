"""Real-time feature vectors — Definitions 5, 6 and 7 of the paper.

For an area ``a`` at timeslot ``t`` on day ``d`` with window size ``L``:

- **supply-demand vector** ``V_sd`` (2L dims): the first L dims count the
  *valid* orders at each past minute ``t-ℓ`` (ℓ = 1…L), the last L dims the
  *invalid* orders;
- **last-call vector** ``V_lc``: counts passengers whose *last* call in
  ``[t-L, t)`` happened at ``t-ℓ``, split by whether that call was answered;
- **waiting-time vector** ``V_wt``: counts passengers by how long they
  waited between their first and last call inside the window, split by
  whether they were eventually served.  Waits are indexed 0…L-1 minutes
  (index 0 = served/gave up at the first call).

:class:`AreaDayProfile` precomputes per-minute structures for one
(area, day) so that extracting vectors for many timeslots is vectorised:

- the last-call vector needs, for each minute ``m`` and lag ``ℓ``, the
  number of orders at ``m`` whose passenger did not call again before
  ``m + ℓ``.  We bucket orders by their *next-call gap* and store suffix
  sums over the gap axis;
- the waiting-time vector needs counts of sessions by (first minute, wait,
  served); we store cumulative sums over the first-minute axis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import DataError

if TYPE_CHECKING:  # pragma: no cover
    from ..city.dataset import CityDataset

from ..city.calendar import MINUTES_PER_DAY


class AreaDayProfile:
    """Precomputed per-minute signals for one (area, day).

    Parameters
    ----------
    dataset:
        The simulated city.
    area_id, day:
        Which area-day to profile.
    window:
        The paper's L — maximum lookback of any vector (paper: 20 minutes).
    """

    def __init__(self, dataset: "CityDataset", area_id: int, day: int, window: int):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.area_id = area_id
        self.day = day
        self.window = window

        self.valid_counts = dataset.valid_counts[area_id, day].astype(np.float64)
        self.invalid_counts = dataset.invalid_counts[area_id, day].astype(np.float64)

        orders = dataset.area_day_orders(area_id, day)
        sessions = dataset.area_day_sessions(area_id, day)
        self._build_last_call_tables(orders)
        self._build_waiting_time_tables(sessions)

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------

    def _build_last_call_tables(self, orders: np.ndarray) -> None:
        """Suffix tables for the last-call vector.

        ``suffix[v][m, k]`` = number of orders (validity ``v``) at minute
        ``m`` whose passenger's next call is at least ``k`` minutes later
        (no next call counts as infinitely later).  ``k`` is clamped to the
        table's last column, which holds the "no further call before any
        horizon ≤ L" count.
        """
        L = self.window
        n = len(orders)
        ts = orders["ts"].astype(np.int64)
        valid = orders["valid"]

        # Next call minute of the same passenger: orders of one passenger
        # are contiguous once sorted by (pid, ts).
        if n:
            sorter = np.lexsort((ts, orders["pid"]))
            sorted_ts = ts[sorter]
            sorted_pid = orders["pid"][sorter]
            next_gap_sorted = np.full(n, L + 1, dtype=np.int64)  # "infinite"
            same_pid = sorted_pid[1:] == sorted_pid[:-1]
            gaps = sorted_ts[1:] - sorted_ts[:-1]
            next_gap_sorted[:-1][same_pid] = np.minimum(gaps[same_pid], L + 1)
            next_gap = np.empty(n, dtype=np.int64)
            next_gap[sorter] = next_gap_sorted
        else:
            next_gap = np.empty(0, dtype=np.int64)

        self._lc_suffix = []
        for validity in (True, False):
            mask = valid == validity
            table = np.zeros((MINUTES_PER_DAY, L + 2), dtype=np.int64)
            if mask.any():
                np.add.at(table, (ts[mask], next_gap[mask]), 1)
            # suffix over gap axis: column k = count(gap >= k)
            suffix = table[:, ::-1].cumsum(axis=1)[:, ::-1]
            self._lc_suffix.append(suffix.astype(np.float64))

    def _build_waiting_time_tables(self, sessions: np.ndarray) -> None:
        """Cumulative tables for the waiting-time vector.

        ``cumsum[served][w, m]`` = number of sessions with wait exactly
        ``w`` minutes and first call strictly before minute ``m``.
        """
        L = self.window
        first = sessions["first_ts"].astype(np.int64)
        wait = (sessions["last_ts"] - sessions["first_ts"]).astype(np.int64)
        served = sessions["served"]
        in_range = wait < L  # longer waits cannot fit inside any window

        self._wt_cumsum = []
        for served_flag in (True, False):
            mask = (served == served_flag) & in_range
            table = np.zeros((L, MINUTES_PER_DAY), dtype=np.int64)
            if mask.any():
                np.add.at(table, (wait[mask], first[mask]), 1)
            cumsum = np.concatenate(
                [np.zeros((L, 1), dtype=np.int64), table.cumsum(axis=1)], axis=1
            )
            self._wt_cumsum.append(cumsum.astype(np.float64))

    # ------------------------------------------------------------------
    # Vector extraction (batched over timeslots)
    # ------------------------------------------------------------------

    def _check_timeslots(self, timeslots: np.ndarray) -> np.ndarray:
        timeslots = np.asarray(timeslots, dtype=np.int64)
        if timeslots.ndim != 1:
            raise ValueError("timeslots must be a 1-D array")
        if timeslots.size and (
            timeslots.min() < self.window or timeslots.max() > MINUTES_PER_DAY
        ):
            raise DataError(
                f"timeslots must lie in [{self.window}, {MINUTES_PER_DAY}] so "
                "the lookback window fits in the day"
            )
        return timeslots

    def supply_demand_vectors(self, timeslots: np.ndarray) -> np.ndarray:
        """``V_sd`` (Definition 5) for each timeslot — shape ``(T, 2L)``.

        Dimension ℓ-1 counts valid orders at ``t-ℓ``; dimension L+ℓ-1
        counts invalid orders at ``t-ℓ``.
        """
        timeslots = self._check_timeslots(timeslots)
        lags = np.arange(1, self.window + 1)
        minutes = timeslots[:, None] - lags[None, :]
        return np.concatenate(
            [self.valid_counts[minutes], self.invalid_counts[minutes]], axis=1
        )

    def last_call_vectors(self, timeslots: np.ndarray) -> np.ndarray:
        """``V_lc`` (Definition 6) for each timeslot — shape ``(T, 2L)``.

        Dimension ℓ-1 counts passengers whose last call in the window was a
        *valid* order at ``t-ℓ``; dimension L+ℓ-1 the invalid ones.  "Last
        call" means no further call by the same passenger before ``t``,
        i.e. the order's next-call gap is at least ℓ.
        """
        timeslots = self._check_timeslots(timeslots)
        lags = np.arange(1, self.window + 1)
        minutes = timeslots[:, None] - lags[None, :]
        gather = (minutes, np.broadcast_to(lags[None, :], minutes.shape))
        return np.concatenate(
            [self._lc_suffix[0][gather], self._lc_suffix[1][gather]], axis=1
        )

    def waiting_time_vectors(self, timeslots: np.ndarray) -> np.ndarray:
        """``V_wt`` (Definition 7) for each timeslot — shape ``(T, 2L)``.

        Dimension w counts passengers whose whole session (first to last
        call) fit inside ``[t-L, t)`` with a wait of exactly w minutes and
        who were eventually served; dimension L+w the unserved ones.
        """
        timeslots = self._check_timeslots(timeslots)
        L = self.window
        waits = np.arange(L)
        # Sessions with first call in [t-L, t-w) have their last call
        # (first + w) inside the window.
        upper = np.maximum(timeslots[:, None] - waits[None, :], 0)
        lower = np.maximum(timeslots - L, 0)
        lower = np.broadcast_to(lower[:, None], upper.shape)
        upper = np.maximum(upper, lower)
        cols = np.broadcast_to(waits[None, :], upper.shape)
        parts = []
        for table in self._wt_cumsum:
            parts.append(table[cols, upper] - table[cols, lower])
        return np.concatenate(parts, axis=1)

    # Single-timeslot conveniences -------------------------------------

    def supply_demand_vector(self, timeslot: int) -> np.ndarray:
        """``V_sd`` at one timeslot (length 2L)."""
        return self.supply_demand_vectors(np.array([timeslot]))[0]

    def last_call_vector(self, timeslot: int) -> np.ndarray:
        """``V_lc`` at one timeslot (length 2L)."""
        return self.last_call_vectors(np.array([timeslot]))[0]

    def waiting_time_vector(self, timeslot: int) -> np.ndarray:
        """``V_wt`` at one timeslot (length 2L)."""
        return self.waiting_time_vectors(np.array([timeslot]))[0]
