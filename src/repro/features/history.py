"""Per-weekday historical averages — Section V-A, first stage.

For each signal (supply-demand, last-call, waiting-time) the advanced model
consumes the seven *historical vectors* ``H^(Mon),d,t … H^(Sun),d,t``: the
average of the real-time vectors ``V^{m,t}`` over all prior days ``m < d``
that fall on each day of week.  The network then combines them with learned
softmax weights into the empirical estimate ``E^{d,t}``.

:class:`HistoryAccumulator` computes these averages incrementally over days
for a fixed grid of timeslots, so building features for every day of a
simulation costs one pass.
"""

from __future__ import annotations

import numpy as np

from ..city.calendar import DAYS_PER_WEEK, SimulationCalendar


class HistoryAccumulator:
    """Running per-weekday means of real-time vectors.

    Parameters
    ----------
    calendar:
        Maps day indices to weekdays.
    vectors:
        ``(n_days, n_slots, dim)`` array — the real-time vector of one
        signal for every day at every timeslot of interest.

    After construction, :meth:`history_before` returns the
    ``(7, n_slots, dim)`` array of per-weekday means over days strictly
    before a given day, with zeros for weekdays not yet seen (a day with no
    history contributes an all-zero historical vector, which the network
    learns to down-weight).

    Sums accumulate in float64 for numerical stability, but the per-day
    mean table — the ``(n_days+1, 7, n_slots, dim)`` array dominating
    featurization peak memory — is stored as float32.  Every consumer
    (the ExampleSet hist blocks) is float32 anyway, so this halves the
    table's footprint without changing any downstream value: dividing in
    float64 and rounding once to float32 is exactly the cast the old
    float64 table went through on assignment.
    """

    def __init__(self, calendar: SimulationCalendar, vectors: np.ndarray):
        if vectors.ndim != 3:
            raise ValueError(f"vectors must be (n_days, n_slots, dim), got {vectors.shape}")
        if vectors.shape[0] > calendar.n_days:
            raise ValueError("more vector days than calendar days")
        self._calendar = calendar
        self._vectors = vectors
        n_days, n_slots, dim = vectors.shape
        # hist[d] = per-weekday mean over days < d; built incrementally.
        self._history = np.zeros(
            (n_days + 1, DAYS_PER_WEEK, n_slots, dim), dtype=np.float32
        )
        sums = np.zeros((DAYS_PER_WEEK, n_slots, dim), dtype=np.float64)
        counts = np.zeros(DAYS_PER_WEEK, dtype=np.int64)
        for day in range(n_days):
            safe = np.maximum(counts, 1)[:, None, None]
            self._history[day] = sums / safe
            weekday = calendar.day_of_week(day)
            sums[weekday] += vectors[day]
            counts[weekday] += 1
        self._history[n_days] = sums / np.maximum(counts, 1)[:, None, None]

    @property
    def n_days(self) -> int:
        return self._vectors.shape[0]

    def history_before(self, day: int) -> np.ndarray:
        """``(7, n_slots, dim)`` per-weekday means over days ``< day``."""
        if not 0 <= day <= self.n_days:
            raise ValueError(f"day {day} outside [0, {self.n_days}]")
        return self._history[day]

    def history_before_batch(
        self, days: np.ndarray, slot_indices: np.ndarray
    ) -> np.ndarray:
        """``(n, 7, dim)`` histories for paired (day, slot) queries.

        ``history_before_batch(days, slots)[i] == history_before(days[i])[:, slots[i], :]``
        """
        days = np.asarray(days, dtype=np.int64)
        slot_indices = np.asarray(slot_indices, dtype=np.int64)
        if days.shape != slot_indices.shape or days.ndim != 1:
            raise ValueError("days and slot_indices must be equal-length 1-D arrays")
        if days.size and (days.min() < 0 or days.max() > self.n_days):
            raise ValueError("day index out of range")
        return self._history[days, :, slot_indices, :]

    def vector(self, day: int, slot_index: int) -> np.ndarray:
        """The underlying real-time vector for one (day, slot)."""
        return self._vectors[day, slot_index]


def empirical_combination(history: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Combine per-weekday history with a weight vector (Equation 1).

    ``history`` is ``(7, dim)`` (or broadcastable), ``weights`` a
    7-dimensional probability vector; the result is
    ``E = Σ_w p_w · H^(w)``.  The network learns ``p`` end-to-end; this
    helper exists for analysis and for baselines that use a fixed ``p``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (DAYS_PER_WEEK,):
        raise ValueError(f"weights must have shape (7,), got {weights.shape}")
    if not np.isclose(weights.sum(), 1.0):
        raise ValueError("weights must sum to 1")
    return np.tensordot(weights, history, axes=(0, 0))
