"""Composable scenario packs: deterministic stress transforms of a city.

The simulator (:mod:`repro.city`) produces one steady regime; DeepSD's
robustness story lives in what happens *off* that regime — storms, stadium
surges, driver shortages.  A *pack* is a pure function
``CityDataset -> CityDataset`` parameterised by a config and a seed:

- **pure**: the input dataset is never mutated; transformed copies feed a
  fresh :class:`~repro.city.dataset.CityDataset`, whose ``__post_init__``
  re-derives the cumulative-gap index, so labels stay consistent;
- **deterministic**: any randomness comes from
  ``np.random.default_rng([seed, blake2(pack name)])`` — a stream derived
  from the *pack identity*, not from its position in the stack, so packs
  touching disjoint channels commute bitwise;
- **channel-scoped**: each pack declares the channels it reads and writes
  (``demand`` = per-minute valid/invalid order counts, ``weather`` =
  type/temperature/pm2.5 series, ``traffic`` = congestion level counts)
  and touches nothing else.

Known limitation (by design, for now): packs transform the count/series
channels that drive the supply-demand vectors, the environment windows and
the gap labels; the raw ``orders``/``sessions`` event streams (which feed
the last-call and waiting-time vectors) pass through unchanged.  The
matrix runner therefore measures robustness of the demand/environment
pathway — the one the paper's environment blocks model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..city.calendar import MINUTES_PER_DAY
from ..city.dataset import CityDataset
from ..city.grid import Archetype
from ..city.traffic import TrafficSeries
from ..city.weather import WEATHER_TYPES, WeatherSeries
from ..exceptions import ConfigError

__all__ = [
    "CHANNELS",
    "ScenarioPack",
    "HolidayPack",
    "ConcertPack",
    "StormPack",
    "SupplyShockPack",
    "AirportPack",
    "ArchetypeMixPack",
    "PACK_TYPES",
    "build_pack",
    "parse_pack_stack",
    "apply_packs",
    "pack_rng",
]

#: The transformable data channels a pack may declare.
CHANNELS = frozenset({"demand", "weather", "traffic"})

_STORM_TYPE = WEATHER_TYPES.index("storm")


def pack_rng(seed: int, pack_name: str) -> np.random.Generator:
    """The pack's private random stream.

    Keyed on ``(seed, pack name)`` only — never on stack position — so
    reordering a stack cannot change what any single pack draws.
    """
    digest = hashlib.blake2b(
        pack_name.encode("utf-8"), digest_size=8
    ).digest()
    return np.random.default_rng(
        [int(seed), int.from_bytes(digest, "big")]
    )


def _scale_counts(counts: np.ndarray, factor: np.ndarray) -> np.ndarray:
    """Deterministically scale integer count arrays (round-half-even)."""
    scaled = np.rint(counts.astype(np.float64) * factor)
    return np.maximum(scaled, 0.0).astype(np.int32)


def _minute_profile(center: float, width: float) -> np.ndarray:
    """A (1440,) Gaussian bump peaking at 1 around ``center`` minutes."""
    minutes = np.arange(MINUTES_PER_DAY, dtype=np.float64)
    return np.exp(-0.5 * ((minutes - center) / width) ** 2)


@dataclass(frozen=True)
class ScenarioPack:
    """Base class: a named, channel-scoped, pure city transform."""

    #: Overridden by subclasses.
    name: str = field(default="", init=False)
    channels: FrozenSet[str] = field(default=frozenset(), init=False)

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-ready parameter dump for reports and manifests."""
        params = {
            key: (list(value) if isinstance(value, tuple) else value)
            for key, value in vars(self).items()
            if key not in ("name", "channels")
        }
        return {"pack": self.name, "channels": sorted(self.channels), **params}

    # -- shared helpers ------------------------------------------------

    @staticmethod
    def _days(dataset: CityDataset, days: Optional[Sequence[int]]) -> np.ndarray:
        if days is None:
            return np.arange(dataset.n_days)
        selected = np.asarray(sorted(set(int(d) for d in days)), dtype=np.int64)
        if selected.size and (
            selected[0] < 0 or selected[-1] >= dataset.n_days
        ):
            raise ConfigError(
                f"pack day selection {selected.tolist()} outside "
                f"[0, {dataset.n_days})"
            )
        return selected

    def _default_days(
        self, dataset: CityDataset, seed: int, *, fraction: int
    ) -> np.ndarray:
        """Configured days, or a seeded draw of ``n_days // fraction`` days.

        The draw always includes the final simulated day, which every
        feature split reserves for testing — so a default-configured pack
        is guaranteed to perturb the evaluation window, not just the
        history the test items look back on.
        """
        if self.days is not None:
            return self._days(dataset, self.days)
        rng = pack_rng(seed, self.name)
        picks = rng.choice(
            dataset.n_days, size=max(1, dataset.n_days // fraction), replace=False
        )
        return np.unique(np.concatenate([picks, [dataset.n_days - 1]]))

    @staticmethod
    def _archetype_areas(
        dataset: CityDataset, archetypes: Sequence[Archetype]
    ) -> np.ndarray:
        wanted = set(archetypes)
        ids = [a.area_id for a in dataset.grid.areas if a.archetype in wanted]
        # Fall back to every area so tiny grids without the archetype
        # still exercise the pack instead of silently no-opping.
        if not ids:
            ids = list(range(dataset.n_areas))
        return np.asarray(ids, dtype=np.int64)

    @staticmethod
    def _with_demand(
        dataset: CityDataset, valid: np.ndarray, invalid: np.ndarray
    ) -> CityDataset:
        return CityDataset(
            grid=dataset.grid,
            calendar=dataset.calendar,
            orders=dataset.orders,
            sessions=dataset.sessions,
            weather=dataset.weather,
            traffic=dataset.traffic,
            valid_counts=valid,
            invalid_counts=invalid,
        )


@dataclass(frozen=True)
class HolidayPack(ScenarioPack):
    """Holiday calendar: commute peaks flatten, leisure demand swells.

    On each holiday the morning/evening rush is damped and a broad
    midday-to-evening leisure bump is added, scaled by ``demand_scale``.
    """

    name = "holiday"
    channels = frozenset({"demand"})

    days: Optional[Tuple[int, ...]] = None
    demand_scale: float = 1.35
    rush_damping: float = 0.55

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        days = self._days(dataset, self.days)
        if self.days is None:
            # Default: every simulated Sunday plus one drawn mid-week
            # holiday, so the pack perturbs both weekend and weekday rows;
            # the final (always-test) day is included so the evaluation
            # window itself shifts.
            week_ids = (days + dataset.calendar.start_weekday) % 7
            sundays = days[week_ids == 6]
            rng = pack_rng(seed, self.name)
            extra = days[int(rng.integers(0, len(days)))]
            days = np.unique(
                np.concatenate([sundays, [extra, dataset.n_days - 1]])
            )
        rush = _minute_profile(8 * 60, 75) + _minute_profile(18 * 60, 90)
        leisure = _minute_profile(14 * 60, 240)
        factor = (
            1.0
            - (1.0 - self.rush_damping) * rush
            + (self.demand_scale - 1.0) * leisure
        )
        valid = dataset.valid_counts.copy()
        invalid = dataset.invalid_counts.copy()
        valid[:, days, :] = _scale_counts(valid[:, days, :], factor)
        invalid[:, days, :] = _scale_counts(invalid[:, days, :], factor)
        return self._with_demand(dataset, valid, invalid)


@dataclass(frozen=True)
class ConcertPack(ScenarioPack):
    """Stadium/concert pulse: a sharp evening surge in event areas.

    Demand in entertainment and transport-hub areas ramps up around
    ``start`` and spikes hardest right when the event lets out (the
    classic stadium-exodus gap surge).
    """

    name = "concert"
    channels = frozenset({"demand"})

    days: Optional[Tuple[int, ...]] = None
    start: int = 19 * 60
    duration: int = 180
    intensity: float = 2.5

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        days = self._default_days(dataset, seed, fraction=3)
        areas = self._archetype_areas(
            dataset, (Archetype.ENTERTAINMENT, Archetype.TRANSPORT_HUB)
        )
        arrivals = _minute_profile(self.start, 45)
        exodus = _minute_profile(self.start + self.duration, 30)
        factor = 1.0 + (self.intensity - 1.0) * (0.6 * arrivals + 1.4 * exodus)
        valid = dataset.valid_counts.copy()
        invalid = dataset.invalid_counts.copy()
        sel = np.ix_(areas, days, np.arange(MINUTES_PER_DAY))
        valid[sel] = _scale_counts(valid[sel], factor)
        invalid[sel] = _scale_counts(invalid[sel], factor)
        return self._with_demand(dataset, valid, invalid)


@dataclass(frozen=True)
class StormPack(ScenarioPack):
    """A storm front sweeping the grid west→east.

    Weather flips to the ``storm`` type (temperature drop, PM2.5 washout)
    over ``[start, start + duration)``; traffic congests column by column
    with a per-column lag, so the front visibly *moves* across the city.
    Touches only the weather and traffic channels — demand counts are left
    to the model to reconcile, which is exactly the stress the
    environment blocks are supposed to absorb.
    """

    name = "storm"
    channels = frozenset({"weather", "traffic"})

    days: Optional[Tuple[int, ...]] = None
    start: int = 15 * 60
    duration: int = 240
    sweep_minutes: int = 30
    congestion: float = 0.6

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        days = self._default_days(dataset, seed, fraction=4)
        stop = min(self.start + self.duration, MINUTES_PER_DAY)

        types = dataset.weather.types.copy()
        temperature = dataset.weather.temperature.copy()
        pm25 = dataset.weather.pm25.copy()
        types[days, self.start:stop] = _STORM_TYPE
        temperature[days, self.start:stop] -= np.float32(4.0)
        pm25[days, self.start:stop] *= np.float32(0.5)

        level_counts = dataset.traffic.level_counts.copy()
        cols = np.array([a.col for a in dataset.grid.areas], dtype=np.int64)
        for area_id, col in enumerate(cols):
            lag = int(col) * self.sweep_minutes
            a_start = min(self.start + lag, MINUTES_PER_DAY)
            a_stop = min(stop + lag, MINUTES_PER_DAY)
            if a_start >= a_stop:
                continue
            window = level_counts[area_id][:, a_start:a_stop, :][days]
            # Push a fraction of free-flowing segments (levels 3, 2) down
            # into the most congested level (0); row sums — the area's
            # segment count — are preserved exactly.
            moved3 = np.rint(window[..., 3] * self.congestion).astype(
                level_counts.dtype
            )
            moved2 = np.rint(window[..., 2] * (self.congestion * 0.5)).astype(
                level_counts.dtype
            )
            window[..., 3] -= moved3
            window[..., 2] -= moved2
            window[..., 0] += moved3 + moved2
            slab = level_counts[area_id][:, a_start:a_stop, :]
            slab[days] = window
        return CityDataset(
            grid=dataset.grid,
            calendar=dataset.calendar,
            orders=dataset.orders,
            sessions=dataset.sessions,
            weather=WeatherSeries(
                types=types, temperature=temperature, pm25=pm25
            ),
            traffic=TrafficSeries(level_counts=level_counts),
            valid_counts=dataset.valid_counts,
            invalid_counts=dataset.invalid_counts,
        )


@dataclass(frozen=True)
class SupplyShockPack(ScenarioPack):
    """Driver-supply shock: a fraction of answered orders go unanswered.

    Over the outage window, ``outage`` of each minute's valid orders are
    reclassified invalid — total demand is conserved while the gap
    explodes, exactly what a platform sees when drivers drop offline.
    """

    name = "supply_shock"
    channels = frozenset({"demand"})

    days: Optional[Tuple[int, ...]] = None
    start: int = 17 * 60
    duration: int = 180
    outage: float = 0.4

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        if not 0.0 <= self.outage <= 1.0:
            raise ConfigError(f"outage must be in [0, 1], got {self.outage}")
        days = self._default_days(dataset, seed, fraction=4)
        stop = min(self.start + self.duration, MINUTES_PER_DAY)
        valid = dataset.valid_counts.copy()
        invalid = dataset.invalid_counts.copy()
        window = valid[:, days, self.start:stop]
        moved = np.rint(window.astype(np.float64) * self.outage).astype(np.int32)
        valid[:, days, self.start:stop] = window - moved
        invalid[:, days, self.start:stop] += moved
        return self._with_demand(dataset, valid, invalid)


@dataclass(frozen=True)
class AirportPack(ScenarioPack):
    """Airport-style asymmetric flows at transport hubs.

    Hubs see an early-morning departure wave and a late-evening arrival
    wave (red-eye landings), while the midday trough deepens — the
    opposite shape of the commuter areas the model mostly trains on.
    """

    name = "airport"
    channels = frozenset({"demand"})

    days: Optional[Tuple[int, ...]] = None
    morning_scale: float = 2.0
    evening_scale: float = 1.6
    midday_damping: float = 0.7

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        days = self._days(dataset, self.days)
        areas = self._archetype_areas(dataset, (Archetype.TRANSPORT_HUB,))
        factor = (
            1.0
            + (self.morning_scale - 1.0) * _minute_profile(5 * 60 + 30, 70)
            + (self.evening_scale - 1.0) * _minute_profile(22 * 60, 80)
            - (1.0 - self.midday_damping) * _minute_profile(13 * 60, 120)
        )
        valid = dataset.valid_counts.copy()
        invalid = dataset.invalid_counts.copy()
        sel = np.ix_(areas, days, np.arange(MINUTES_PER_DAY))
        valid[sel] = _scale_counts(valid[sel], factor)
        invalid[sel] = _scale_counts(invalid[sel], factor)
        return self._with_demand(dataset, valid, invalid)


@dataclass(frozen=True)
class ArchetypeMixPack(ScenarioPack):
    """Multi-city archetype mix: reweight demand volume per archetype.

    Approximates transferring the model to a city with a different
    land-use composition (e.g. heavier suburban share) by scaling each
    archetype's demand volume — the per-area temporal shapes survive, the
    volume mix does not.
    """

    name = "archetype_mix"
    channels = frozenset({"demand"})

    residential: float = 0.8
    business: float = 1.3
    entertainment: float = 1.2
    transport_hub: float = 1.0
    suburban: float = 1.5
    mixed: float = 1.0

    def apply(self, dataset: CityDataset, seed: int) -> CityDataset:
        weights = {
            Archetype.RESIDENTIAL: self.residential,
            Archetype.BUSINESS: self.business,
            Archetype.ENTERTAINMENT: self.entertainment,
            Archetype.TRANSPORT_HUB: self.transport_hub,
            Archetype.SUBURBAN: self.suburban,
            Archetype.MIXED: self.mixed,
        }
        factors = np.array(
            [weights[a.archetype] for a in dataset.grid.areas], dtype=np.float64
        ).reshape(-1, 1, 1)
        valid = _scale_counts(dataset.valid_counts, factors)
        invalid = _scale_counts(dataset.invalid_counts, factors)
        return self._with_demand(dataset, valid, invalid)


PACK_TYPES: Dict[str, type] = {
    cls.name: cls
    for cls in (
        HolidayPack,
        ConcertPack,
        StormPack,
        SupplyShockPack,
        AirportPack,
        ArchetypeMixPack,
    )
}


def build_pack(name: str, params: Optional[Dict[str, object]] = None) -> ScenarioPack:
    """Instantiate a registered pack from a config dict.

    ``days`` accepts lists (JSON) and is normalised to a tuple so packs
    stay hashable/frozen.
    """
    if name not in PACK_TYPES:
        raise ConfigError(
            f"unknown scenario pack {name!r}; known: {sorted(PACK_TYPES)}"
        )
    params = dict(params or {})
    if isinstance(params.get("days"), list):
        params["days"] = tuple(int(d) for d in params["days"])
    try:
        return PACK_TYPES[name](**params)
    except TypeError as exc:
        raise ConfigError(f"bad parameters for pack {name!r}: {exc}") from None


def parse_pack_stack(spec: str) -> List[ScenarioPack]:
    """Parse a CLI pack-stack spec into pack instances.

    Grammar: ``name[:key=value[:key=value…]]`` joined by ``+`` — e.g.
    ``"storm:duration=120+supply_shock:outage=0.5"``.  Values parse as
    JSON scalars where possible (so ``days=[1,3]`` works) and fall back
    to strings.
    """
    import json

    packs: List[ScenarioPack] = []
    for chunk in spec.split("+"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        params: Dict[str, object] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ConfigError(
                    f"bad pack parameter {part!r} in {chunk!r}; expected key=value"
                )
            key, raw = part.split("=", 1)
            try:
                params[key] = json.loads(raw)
            except ValueError:
                params[key] = raw
        packs.append(build_pack(parts[0], params))
    if not packs:
        raise ConfigError(f"empty pack stack spec {spec!r}")
    return packs


def apply_packs(
    dataset: CityDataset, packs: Sequence[ScenarioPack], seed: int = 0
) -> CityDataset:
    """Apply a stack of packs left to right, purely and deterministically.

    Each pack draws from its own identity-keyed stream (:func:`pack_rng`),
    so a stack's output depends only on ``(dataset, set of packs, order
    among packs sharing a channel, seed)`` — packs over disjoint channels
    commute bitwise.
    """
    for pack in packs:
        unknown = pack.channels - CHANNELS
        if unknown:
            raise ConfigError(
                f"pack {pack.name!r} declares unknown channels {sorted(unknown)}"
            )
        dataset = pack.apply(dataset, seed)
    return dataset
