"""Scenario packs and the robustness matrix runner.

See ``docs/scenarios.md`` for the pack config format, the ``repro
scenarios`` CLI and the robustness report schema.
"""

from .matrix import (
    DEFAULT_SCENARIOS,
    REPORT_SCHEMA_VERSION,
    STEADY,
    render_report,
    resolve_scenarios,
    run_matrix,
    save_report,
    split_model_keys,
)
from .packs import (
    CHANNELS,
    PACK_TYPES,
    AirportPack,
    ArchetypeMixPack,
    ConcertPack,
    HolidayPack,
    ScenarioPack,
    StormPack,
    SupplyShockPack,
    apply_packs,
    build_pack,
    pack_rng,
    parse_pack_stack,
)

__all__ = [
    "CHANNELS",
    "PACK_TYPES",
    "DEFAULT_SCENARIOS",
    "REPORT_SCHEMA_VERSION",
    "STEADY",
    "ScenarioPack",
    "HolidayPack",
    "ConcertPack",
    "StormPack",
    "SupplyShockPack",
    "AirportPack",
    "ArchetypeMixPack",
    "apply_packs",
    "build_pack",
    "pack_rng",
    "parse_pack_stack",
    "render_report",
    "resolve_scenarios",
    "run_matrix",
    "save_report",
    "split_model_keys",
]
