"""Robustness matrix: every model × every scenario pack, worst case first.

Backtests the registered DeepSD variants and classical baselines — all
trained/fit on the *steady* city — against each scenario-transformed city,
and reports per-(model, scenario):

- overall MAE/RMSE on the scenario test split,
- a per-regime breakdown (hour-of-day slices),
- the worst-case slice MAE (the number a dispatcher actually fears), and
- degradation vs. the same model's steady-state MAE.

Determinism contract (the test suite asserts it): the heavy lifting —
training each NN variant — runs through the PR 3 process-pool engine
(:func:`repro.experiments.runner.run_tasks`), whose per-task seeds and
fingerprint-keyed cache make results bitwise-identical for any worker
count; scenario transforms (:func:`repro.scenarios.apply_packs`),
featurization and baseline refits all run deterministically in the parent,
so the emitted report is byte-identical for any ``--workers N``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval import breakdown
from ..eval.metrics import evaluate
from ..eval.report import format_table
from ..exceptions import ConfigError
from ..experiments.context import (
    BASELINE_SPECS,
    MODEL_SPECS,
    ExperimentContext,
    get_context,
)
from ..experiments.runner import (
    RunnerReport,
    baseline_task,
    model_task,
    run_tasks,
)
from ..features.builder import ExampleSet, FeatureBuilder
from ..obs import get_logger
from .packs import ScenarioPack, apply_packs, parse_pack_stack

_log = get_logger(__name__)

REPORT_SCHEMA_VERSION = 1

#: The named scenarios of ``--packs all``: one per pack with default
#: parameters, plus a compound stress stack (a storm front landing on an
#: evening supply shock — the worst realistic Friday).
DEFAULT_SCENARIOS: Dict[str, str] = {
    "holiday": "holiday",
    "concert": "concert",
    "storm": "storm",
    "supply_shock": "supply_shock",
    "airport": "airport",
    "archetype_mix": "archetype_mix",
    "storm_rush": "storm+supply_shock",
}

#: The steady (untransformed) scenario every degradation ratio is
#: measured against; always present in a matrix run.
STEADY = "steady"

__all__ = [
    "DEFAULT_SCENARIOS",
    "REPORT_SCHEMA_VERSION",
    "STEADY",
    "render_report",
    "resolve_scenarios",
    "run_matrix",
    "save_report",
    "split_model_keys",
]


def resolve_scenarios(spec: str) -> Dict[str, List[ScenarioPack]]:
    """Map a ``--packs`` spec to ``{scenario name: pack stack}``.

    ``"all"`` expands to :data:`DEFAULT_SCENARIOS`; otherwise the spec is
    a comma-separated list of default scenario names and/or inline stacks
    (``name[:key=value…][+name…]``, see
    :func:`repro.scenarios.parse_pack_stack`).  The steady scenario is
    implicit and always included.
    """
    scenarios: Dict[str, List[ScenarioPack]] = {STEADY: []}
    spec = spec.strip()
    names = sorted(DEFAULT_SCENARIOS) if spec == "all" else [
        chunk.strip() for chunk in spec.split(",") if chunk.strip()
    ]
    if not names:
        raise ConfigError(f"empty scenario spec {spec!r}")
    for name in names:
        if name == STEADY:
            continue
        stack_spec = DEFAULT_SCENARIOS.get(name, name)
        scenarios[name] = parse_pack_stack(stack_spec)
    return scenarios


def split_model_keys(spec: str) -> Tuple[List[str], List[str]]:
    """Split ``--models`` into (NN variant keys, baseline keys)."""
    keys = [chunk.strip() for chunk in spec.split(",") if chunk.strip()]
    if spec.strip() == "all":
        keys = ["basic", "advanced", *sorted(BASELINE_SPECS)]
    if not keys:
        raise ConfigError(f"empty model spec {spec!r}")
    nn_keys = [k for k in keys if k in MODEL_SPECS]
    baseline_keys = [k for k in keys if k in BASELINE_SPECS]
    unknown = [k for k in keys if k not in MODEL_SPECS and k not in BASELINE_SPECS]
    if unknown:
        raise ConfigError(
            f"unknown models {unknown}; known NN variants: "
            f"{sorted(MODEL_SPECS)}, baselines: {sorted(BASELINE_SPECS)}"
        )
    return nn_keys, baseline_keys


def _baseline_predictions(
    context: ExperimentContext, key: str, test_set: ExampleSet
) -> np.ndarray:
    """Fit a baseline on the steady train split, predict ``test_set``.

    Refit per scenario in-process: the classical baselines are cheap and
    seeded (:data:`BASELINE_SPECS`), so this is deterministic regardless
    of pool size — and unlike the NN path there is no trained artifact to
    reuse (``BaselineResult`` keeps only steady-test predictions).
    """
    from ..baselines import (
        EmpiricalAverage,
        GradientBoostingRegressor,
        LassoRegressor,
        RandomForestRegressor,
    )
    from ..features import linear_design_matrix, tree_design_matrix

    train = context.train_set
    targets = train.gaps.astype(np.float64)
    spec = BASELINE_SPECS[key]
    if key == "average":
        return EmpiricalAverage().fit(train).predict(test_set)
    if key == "lasso":
        x_train, x_test, _ = linear_design_matrix(train, test_set)
        return LassoRegressor(**spec).fit(x_train, targets).predict(x_test)
    if key in ("gbdt", "rf"):
        x_train, _ = tree_design_matrix(train)
        x_test, _ = tree_design_matrix(test_set)
        cls = GradientBoostingRegressor if key == "gbdt" else RandomForestRegressor
        return cls(**spec).fit(x_train, targets).predict(x_test)
    raise ConfigError(f"unknown baseline {key!r}")


def _slice_rows(
    predictions: np.ndarray, test_set: ExampleSet
) -> List[Dict[str, object]]:
    rows = breakdown.by_hour(predictions, test_set)
    return [
        {
            "kind": "hour",
            "key": row.key,
            "mae": row.mae,
            "rmse": row.rmse,
            "n_items": row.n_items,
        }
        for row in rows
    ]


def _result_entry(
    model: str,
    scenario: str,
    predictions: np.ndarray,
    test_set: ExampleSet,
    steady_mae: Optional[float],
) -> Dict[str, object]:
    report = evaluate(predictions, test_set.gaps.astype(np.float64))
    slices = _slice_rows(predictions, test_set)
    occupied = [s for s in slices if s["n_items"] > 0] or slices
    worst = max(occupied, key=lambda s: s["mae"])
    entry: Dict[str, object] = {
        "model": model,
        "scenario": scenario,
        "mae": report.mae,
        "rmse": report.rmse,
        "n_items": report.n_items,
        "worst_case_mae": worst["mae"],
        "worst_slice": {"kind": worst["kind"], "key": worst["key"], "mae": worst["mae"]},
        "degradation": (
            report.mae / steady_mae if steady_mae else 1.0
        ),
        "slices": slices,
    }
    return entry


def run_matrix(
    *,
    scale_name: str = "tiny",
    seed: Optional[int] = None,
    models: str = "basic,advanced,average",
    packs: str = "all",
    workers: Optional[int] = None,
    context: Optional[ExperimentContext] = None,
) -> Tuple[Dict[str, object], RunnerReport]:
    """Run the full robustness matrix; returns ``(report dict, runner report)``.

    The report dict is JSON-ready and stable: same inputs → byte-identical
    ``json.dumps`` output for any ``workers``.
    """
    scenarios = resolve_scenarios(packs)
    nn_keys, baseline_keys = split_model_keys(models)
    if context is None:
        context = get_context(scale_name, seed)
    scenario_seed = int(context.scale.simulation.seed)

    # Phase 1 — steady-city training through the process-pool engine.
    tasks = [model_task(key) for key in nn_keys]
    tasks += [baseline_task(key) for key in baseline_keys]
    runner_report = run_tasks(context, tasks, workers=workers)

    # Phase 2 — transform, featurize and score each scenario serially
    # (deterministic; the expensive phase above is already parallel).
    model_order = [*nn_keys, *baseline_keys]
    steady_mae: Dict[str, float] = {}
    results: List[Dict[str, object]] = []
    # Steady runs first: every other scenario's degradation divides by it.
    ordered = [STEADY, *sorted(name for name in scenarios if name != STEADY)]
    for name in ordered:
        stack = scenarios[name]
        if stack:
            dataset = apply_packs(context.dataset, stack, seed=scenario_seed)
            test_set = FeatureBuilder(dataset, context.scale.features).build_test(
                context.train_set.scalers
            )
        else:
            test_set = context.test_set
        _log.event(
            "scenarios.scenario",
            scenario=name,
            packs=len(stack),
            items=test_set.n_items,
        )
        for model in model_order:
            if model in MODEL_SPECS:
                predictions = context.trained(model).trainer.predict(test_set)
            else:
                predictions = _baseline_predictions(context, model, test_set)
            if not stack:
                steady_mae[model] = evaluate(
                    predictions, test_set.gaps.astype(np.float64)
                ).mae
            results.append(
                _result_entry(
                    model, name, predictions, test_set, steady_mae.get(model)
                )
            )
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "scale": context.scale.name,
        "seed": scenario_seed,
        "models": model_order,
        "scenarios": {
            name: [pack.describe() for pack in stack]
            for name, stack in sorted(scenarios.items())
        },
        "results": results,
    }
    return report, runner_report


def save_report(report: Dict[str, object], path: str | os.PathLike) -> None:
    """Write the report atomically (tmp + rename)."""
    path = os.fspath(path)
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def render_report(report: Dict[str, object]) -> str:
    """The human-readable summary table of a matrix report."""
    rows = []
    for entry in report["results"]:
        worst = entry["worst_slice"]
        rows.append(
            [
                entry["model"],
                entry["scenario"],
                entry["mae"],
                entry["rmse"],
                entry["worst_case_mae"],
                f"{worst['kind']} {worst['key']}",
                f"{entry['degradation']:.2f}x",
            ]
        )
    return format_table(
        ["model", "scenario", "MAE", "RMSE", "worst MAE", "worst slice", "vs steady"],
        rows,
        title=f"Robustness matrix ({report['scale']}, seed {report['seed']})",
        float_format="{:.3f}",
    )
