"""Canonical performance benchmark: the numbers behind ``BENCH_perf.json``.

``repro bench`` measures the throughput of the pipeline's hot paths
— featurization, training epochs, inference, online serving — plus the
wall-clock of a
multi-model experiment run serially versus through the parallel runner,
and writes one canonical JSON file (``BENCH_perf.json`` at the repo root
by default).  That file is the repo's perf trajectory: every optimisation
PR regenerates it, and ``scripts/smoke.sh`` fails if any recorded
throughput regresses more than :data:`REGRESSION_FACTOR`× against the
committed baseline.

The train-epoch section times the same model/optimizer arithmetic under
both batch-delivery strategies — the historical per-batch fancy indexing
(:func:`repro.core.make_batch` per step) and the current once-per-epoch
permutation gather (:class:`repro.core.batching.EpochBatches`) — so the
batching change's effect stays visible in the trajectory.  The
train-epoch, inference and serving sections additionally run a taped leg
(``*.taped.*`` metric families) through the execution tape
(:mod:`repro.nn.tape`), recording the speedup ratio and a bitwise
``identical`` cross-check against the untaped leg; the serving taped leg
also enables the vectorized featurizer and the eager batcher flush, i.e.
the full current serving defaults, while the untaped leg replicates the
historical stack.  The experiment
section re-runs the same task set in fresh caches both ways and records
whether the results matched bitwise, making every bench run also a
determinism check.

All numbers are honest wall-clock measurements on the current machine;
the parallel speedup in particular scales with available cores
(``cpu_count`` is recorded alongside it for interpretation).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np

from .config import get_scale
from .obs import Histogram, MetricsRegistry, get_logger, get_registry

_log = get_logger(__name__)

BENCH_SCHEMA_VERSION = 1
DEFAULT_BENCH_PATH = "BENCH_perf.json"
#: A recorded throughput may not drop below 1/REGRESSION_FACTOR of the
#: committed baseline (generous: benchmarks run on heterogeneous machines).
REGRESSION_FACTOR = 2.0


@contextmanager
def _cache_dir(path: Optional[str] = None) -> Iterator[str]:
    """Temporarily point ``REPRO_CACHE_DIR`` at a (fresh) directory."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    target = path or tempfile.mkdtemp(prefix="repro_bench_")
    os.environ["REPRO_CACHE_DIR"] = target
    try:
        yield target
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous


def bench_featurization(scale_name: str) -> Dict[str, float]:
    """Items/sec of a cold FeatureBuilder.build() (simulation excluded)."""
    from .city import simulate_city
    from .features import FeatureBuilder

    scale = get_scale(scale_name)
    dataset = simulate_city(scale.simulation)
    started = time.perf_counter()
    train, test = FeatureBuilder(dataset, scale.features).build()
    seconds = time.perf_counter() - started
    items = train.n_items + test.n_items
    return {
        "featurize.items": float(items),
        "featurize.seconds": seconds,
        "featurize.items_per_sec": items / seconds if seconds else 0.0,
    }


def _legacy_epoch(model, train_set, optimizer, loss_fn, rng, batch_size):
    """The pre-optimisation inner loop, replicated exactly: per-batch
    fancy indexing of every field, and the per-step ``model.parameters()``
    walk through the gradient-norm measurement."""
    from .core import batch_targets, make_batch
    from .nn import Tensor, clip_gradients, iterate_minibatches

    total = 0.0
    for indices in iterate_minibatches(
        train_set.n_items, batch_size, shuffle=True, rng=rng
    ):
        batch = make_batch(train_set, indices)
        targets = batch_targets(train_set, indices)
        optimizer.zero_grad()
        loss = loss_fn(model(batch), Tensor(targets))
        loss.backward()
        clip_gradients(model.parameters(), float("inf"))
        optimizer.step()
        total += loss.item()
    return total


def bench_train_epoch(scale_name: str, epochs: int = 2) -> Dict[str, float]:
    """Train-epoch throughput: legacy loop, epoch-gather, and taped.

    All three paths run identical arithmetic (same model seed, same
    shuffle stream); the ``identical`` metric asserts that by comparing
    the untaped and taped runs' final weights bitwise.  The taped leg's
    time includes the one-off trace cost — honest for short runs.
    """
    from .core import BasicDeepSD, InputScales, Trainer, TrainingConfig
    from .nn import Adam, losses

    scale = get_scale(scale_name)
    with _cache_dir():
        from .experiments.context import ExperimentContext

        context = ExperimentContext(scale=scale)
        train_set = context.train_set
        n_areas = context.dataset.n_areas

    def fresh_model():
        model = BasicDeepSD(
            n_areas,
            scale.features.window_minutes,
            scale.embeddings,
            dropout=0.1,
            seed=1,
        )
        model.input_scales = InputScales.from_example_set(train_set)
        model.train()
        return model

    config = TrainingConfig(epochs=epochs, best_k=1, seed=1)
    loss_fn = losses.get(config.loss)

    # Legacy path: per-batch make_batch gathers.
    model = fresh_model()
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    started = time.perf_counter()
    for _ in range(epochs):
        _legacy_epoch(model, train_set, optimizer, loss_fn, rng, config.batch_size)
    legacy_seconds = time.perf_counter() - started

    def trainer_run(use_tape: bool):
        """Trainer epochs, each timed into a quantile sketch so the
        trajectory records tail latency, not just the mean."""
        model = fresh_model()
        trainer = Trainer(model, config, use_tape=use_tape)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        sketch = Histogram()
        started = time.perf_counter()
        for _ in range(epochs):
            epoch_started = time.perf_counter()
            trainer._run_epoch(train_set, optimizer, rng)
            sketch.observe(time.perf_counter() - epoch_started)
        return model, time.perf_counter() - started, sketch

    # Current module-dispatch path: once-per-epoch permutation gather.
    model, gather_seconds, epoch_sketch = trainer_run(use_tape=False)
    # Taped path: same gathers, forward/backward/optimizer replayed
    # through the execution tape.
    taped_model, taped_seconds, taped_sketch = trainer_run(use_tape=True)
    state, taped_state = model.state_dict(), taped_model.state_dict()
    identical = all(
        np.array_equal(state[name], taped_state[name]) for name in state
    )

    items = float(train_set.n_items * epochs)
    return {
        "train_epoch.items": items,
        "train_epoch.epochs": float(epochs),
        "train_epoch.batch_gather.seconds": legacy_seconds,
        "train_epoch.batch_gather.items_per_sec": (
            items / legacy_seconds if legacy_seconds else 0.0
        ),
        "train_epoch.seconds": gather_seconds,
        "train_epoch.items_per_sec": items / gather_seconds if gather_seconds else 0.0,
        "train_epoch.speedup_vs_batch_gather": (
            legacy_seconds / gather_seconds if gather_seconds else 0.0
        ),
        "train_epoch.p95_ms": _quantile_ms(epoch_sketch, 0.95),
        "train_epoch.taped.seconds": taped_seconds,
        "train_epoch.taped.items_per_sec": (
            items / taped_seconds if taped_seconds else 0.0
        ),
        "train_epoch.taped.speedup": (
            gather_seconds / taped_seconds if taped_seconds else 0.0
        ),
        "train_epoch.taped.p95_ms": _quantile_ms(taped_sketch, 0.95),
        "train_epoch.taped.identical": float(identical),
    }


def _quantile_ms(histogram: Histogram, q: float) -> float:
    """A sketch quantile, in milliseconds (0.0 when nothing was observed)."""
    value = histogram.quantile(q)
    return value * 1000.0 if value is not None else 0.0


def bench_inference(scale_name: str) -> Dict[str, float]:
    """Single-pass prediction throughput over the train set.

    Module dispatch vs the forward execution tape, with a bitwise
    ``identical`` cross-check of the two output arrays.
    """
    from .core import BasicDeepSD, InputScales, Trainer

    scale = get_scale(scale_name)
    with _cache_dir():
        from .experiments.context import ExperimentContext

        context = ExperimentContext(scale=scale)
        example_set = context.train_set
        n_areas = context.dataset.n_areas
    model = BasicDeepSD(
        n_areas,
        scale.features.window_minutes,
        scale.embeddings,
        dropout=0.0,
        seed=1,
    )
    model.input_scales = InputScales.from_example_set(example_set)
    trainer = Trainer(model, use_tape=False)
    trainer._predict_current(example_set)  # warm up
    started = time.perf_counter()
    outputs = trainer._predict_current(example_set)
    seconds = time.perf_counter() - started

    taped_trainer = Trainer(model, use_tape=True)
    taped_trainer._predict_current(example_set)  # warm up (traces the tape)
    started = time.perf_counter()
    taped_outputs = taped_trainer._predict_current(example_set)
    taped_seconds = time.perf_counter() - started
    return {
        "inference.items": float(example_set.n_items),
        "inference.seconds": seconds,
        "inference.items_per_sec": (
            example_set.n_items / seconds if seconds else 0.0
        ),
        "inference.taped.seconds": taped_seconds,
        "inference.taped.items_per_sec": (
            example_set.n_items / taped_seconds if taped_seconds else 0.0
        ),
        "inference.taped.speedup": (
            seconds / taped_seconds if taped_seconds else 0.0
        ),
        "inference.taped.identical": float(np.array_equal(outputs, taped_outputs)),
    }


def bench_serving(scale_name: str) -> Dict[str, float]:
    """Serving throughput: cold micro-batched queries and warm cache hits.

    Stands up a full :class:`repro.serving.PredictionService` (untrained
    weights — throughput does not depend on the parameter values) and
    drives it from a few submitter threads, the same concurrency shape
    the HTTP front-end produces.  The cold pass answers distinct queries
    through featurize + forward; the warm pass re-asks them and must be
    answered from the LRU cache.

    Two legs: the base ``serving.*`` family replicates the historical
    stack (module dispatch, per-row featurization, lingering batcher);
    ``serving.*.taped.*`` runs the current defaults — forward tape,
    vectorized featurizer, eager flush.  ``serving.taped.identical``
    asserts both legs returned bitwise-identical predictions for every
    query.
    """
    import threading

    from .core import BasicDeepSD, InputScales, Trainer
    from .serving import PredictionService, ServingConfig

    scale = get_scale(scale_name)
    with _cache_dir():
        from .experiments.context import ExperimentContext

        context = ExperimentContext(scale=scale)
        dataset = context.dataset
        train_set = context.train_set

    L = scale.features.window_minutes
    slots = range(L, 1440 - scale.features.gap_minutes, 7)
    queries = [
        (area, day, slot)
        for area in range(dataset.n_areas)
        for day in range(1, dataset.n_days)
        for slot in slots
    ][:600]

    def build_service(taped: bool):
        model = BasicDeepSD(
            dataset.n_areas,
            scale.features.window_minutes,
            scale.embeddings,
            dropout=0.0,
            seed=1,
        )
        model.input_scales = InputScales.from_example_set(train_set)
        # Private registry: per-request latency quantiles for THIS leg
        # only, resettable between the cold and warm passes.
        registry = MetricsRegistry()
        service = PredictionService(
            Trainer(model, use_tape=taped),
            dataset,
            scale.features,
            train_set.scalers,
            serving_config=ServingConfig(
                max_batch=32, max_wait_ms=2.0, eager_flush=taped
            ),
            registry=registry,
        )
        if not taped:
            service._engine.predictor.vectorized_featurize = False
        return service, registry

    def run_leg(taped: bool, cold_name: str, warm_name: str):
        service, registry = build_service(taped)
        results: Dict[tuple, float] = {}

        def drive(chunk):
            for query in chunk:
                results[query] = service.predict(*query)

        def timed_pass() -> float:
            n_threads = 4
            chunks = [queries[i::n_threads] for i in range(n_threads)]
            threads = [
                threading.Thread(target=drive, args=(chunk,)) for chunk in chunks
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return time.perf_counter() - started

        def request_quantiles(prefix: str) -> Dict[str, float]:
            sketch = registry.histograms.get(
                "repro.serving.request_seconds", Histogram()
            )
            return {
                f"{prefix}.p50_ms": _quantile_ms(sketch, 0.50),
                f"{prefix}.p95_ms": _quantile_ms(sketch, 0.95),
                f"{prefix}.p99_ms": _quantile_ms(sketch, 0.99),
            }

        service.predict(*queries[0])  # warm up imports and the first profile
        registry.reset()
        cold_seconds = timed_pass()
        metrics = request_quantiles(cold_name)
        registry.reset()
        warm_seconds = timed_pass()
        metrics.update(request_quantiles(warm_name))
        service.close()
        items = float(len(queries))
        metrics.update(
            {
                f"{cold_name}.seconds": cold_seconds,
                f"{cold_name}.items_per_sec": (
                    items / cold_seconds if cold_seconds else 0.0
                ),
                f"{warm_name}.seconds": warm_seconds,
                f"{warm_name}.items_per_sec": (
                    items / warm_seconds if warm_seconds else 0.0
                ),
            }
        )
        return metrics, results

    base, base_results = run_leg(False, "serving.cold", "serving.warm")
    taped, taped_results = run_leg(
        True, "serving.cold.taped", "serving.warm.taped"
    )
    metrics = {"serving.items": float(len(queries))}
    metrics.update(base)
    metrics.update(taped)
    metrics["serving.cold.taped.speedup"] = (
        base["serving.cold.seconds"] / taped["serving.cold.taped.seconds"]
        if taped["serving.cold.taped.seconds"]
        else 0.0
    )
    metrics["serving.warm.taped.speedup"] = (
        base["serving.warm.seconds"] / taped["serving.warm.taped.seconds"]
        if taped["serving.warm.taped.seconds"]
        else 0.0
    )
    metrics["serving.taped.identical"] = float(base_results == taped_results)
    return metrics


def bench_experiment(
    scale_name: str, workers: int = 2, experiment: str = "table2"
) -> Dict[str, float]:
    """Serial vs parallel wall-clock of one multi-model experiment.

    Each mode runs in its own fresh cache directory, so both pay the full
    simulate + featurize + train cost; ``identical`` records whether the
    two runs' result rows matched exactly (the runner's determinism
    guarantee, doubling as a self-check of every bench run).
    """
    from .experiments import runner
    from .experiments.context import ExperimentContext

    def one_run(n_workers: int):
        with _cache_dir():
            context = ExperimentContext(scale=get_scale(scale_name))
            started = time.perf_counter()
            result, _ = runner.run_experiment(
                experiment, context, workers=n_workers
            )
            return result, time.perf_counter() - started

    serial_result, serial_seconds = one_run(1)
    parallel_result, parallel_seconds = one_run(workers)
    return {
        "experiment.serial_seconds": serial_seconds,
        "experiment.parallel_seconds": parallel_seconds,
        "experiment.workers": float(workers),
        "experiment.speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "experiment.identical": float(serial_result == parallel_result),
    }


def run_bench(
    scale_name: str = "tiny",
    *,
    workers: int = 2,
    epochs: int = 2,
    experiment: str = "table2",
) -> dict:
    """Run every section and assemble the ``BENCH_perf.json`` payload."""
    registry = get_registry()
    metrics: Dict[str, float] = {}
    for section, fn in (
        ("featurize", lambda: bench_featurization(scale_name)),
        ("train_epoch", lambda: bench_train_epoch(scale_name, epochs)),
        ("inference", lambda: bench_inference(scale_name)),
        ("serving", lambda: bench_serving(scale_name)),
        ("experiment", lambda: bench_experiment(scale_name, workers, experiment)),
    ):
        _log.event("bench.section", section=section)
        with registry.timer(f"repro.bench.{section}.seconds"):
            metrics.update(fn())
    for name, value in metrics.items():
        registry.gauge(f"repro.bench.{name}", value)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": "repro bench",
        "scale": scale_name,
        "experiment": experiment,
        "cpu_count": os.cpu_count() or 1,
        "metrics": metrics,
    }


def write_bench(payload: dict, path: str = DEFAULT_BENCH_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


#: Latency metrics gated by :func:`find_regressions` — these fail in the
#: opposite direction from throughput: current must not EXCEED baseline
#: by more than the factor.
LATENCY_GATES = (
    "serving.cold.p99_ms",
    "serving.warm.p99_ms",
    # End-to-end single-item fleet latency through the router: the batch
    # transport plane must never buy its throughput with p99 (gated
    # alongside serving.fleet.items_per_sec, which the items_per_sec
    # sweep below picks up once the baseline records it).
    "serving.fleet.p99_ms",
)


def find_regressions(
    current: dict, baseline: dict, factor: float = REGRESSION_FACTOR
) -> List[str]:
    """Metrics that regressed more than ``factor``× against baseline.

    ``*.items_per_sec`` metrics gate on throughput drops; the
    :data:`LATENCY_GATES` tail-latency metrics gate on increases.
    Absolute seconds vary with scale/epoch knobs and the experiment
    speedup varies with core count, so neither is gated.  Returns
    human-readable findings (empty = no regression).
    """
    findings = []
    base_metrics = baseline.get("metrics", {})
    current_metrics = current.get("metrics", {})
    for name, value in current_metrics.items():
        if not name.endswith("items_per_sec"):
            continue
        reference = base_metrics.get(name)
        if not reference or reference <= 0:
            continue
        if value < reference / factor:
            findings.append(
                f"{name}: {value:.1f} items/s is more than {factor:g}x below "
                f"baseline {reference:.1f} items/s"
            )
    for name in LATENCY_GATES:
        value = current_metrics.get(name)
        reference = base_metrics.get(name)
        if not value or not reference or reference <= 0:
            continue
        if value > reference * factor:
            findings.append(
                f"{name}: {value:.2f} ms is more than {factor:g}x above "
                f"baseline {reference:.2f} ms"
            )
    return findings
