"""Fig. 11 — prediction curves: GBDT vs Advanced DeepSD under rapid variation.

Shape assertion: on the rapid-variation subset of test items, Advanced
DeepSD's RMSE is lower than GBDT's (the paper's circled regions).
"""

from repro.eval import format_table
from repro.experiments import fig11

from conftest import run_once


def test_fig11_prediction_curves(benchmark, context, record_table):
    result = run_once(benchmark, lambda: fig11.run(context))

    sample = result.curve_deepsd[:12]
    gbdt_by_key = {(d, t): p for d, t, _, p in result.curve_gbdt}
    record_table(
        "fig11",
        format_table(
            ["day", "slot", "truth", "DeepSD", "GBDT"],
            [
                [d, t, y, p, gbdt_by_key[(d, t)]]
                for d, t, y, p in sample
            ],
            title=(
                f"Fig. 11: prediction curve for area {result.area_id} "
                f"(rapid-subset RMSE: DeepSD {result.rmse_deepsd_rapid:.2f} "
                f"vs GBDT {result.rmse_gbdt_rapid:.2f})"
            ),
        ),
    )

    # DeepSD handles rapid variations better than GBDT (paper's circles).
    assert result.rmse_deepsd_rapid < result.rmse_gbdt_rapid
    # And overall too (consistent with Table II).
    assert result.rmse_deepsd_all < result.rmse_gbdt_all
    # Rapid-variation items are genuinely harder than average for GBDT.
    assert result.rmse_gbdt_rapid > result.rmse_gbdt_all
