"""Fig. 16 — convergence of re-training vs fine-tuning.

Shape assertion: when environment blocks are added to a trained model,
fine-tuning (keeping the shared weights) starts from a much lower loss and
stays ahead of re-training over the early epochs.
"""

from repro.eval import format_table
from repro.experiments import fig16

from conftest import run_once


def test_fig16_finetuning_convergence(benchmark, context, record_table):
    result = run_once(benchmark, lambda: fig16.run(context))

    epochs = range(1, len(result.finetune_loss) + 1)
    record_table(
        "fig16",
        format_table(
            ["epoch", "finetune loss", "retrain loss", "finetune RMSE", "retrain RMSE"],
            [
                [
                    e,
                    result.finetune_loss[e - 1],
                    result.retrain_loss[e - 1],
                    result.finetune_rmse[e - 1],
                    result.retrain_rmse[e - 1],
                ]
                for e in epochs
            ],
            title="Fig. 16: fine-tuning vs re-training",
        ),
    )

    # Fine-tuning starts far ahead (epoch 1 loss much lower)...
    assert result.finetune_loss[0] < result.retrain_loss[0]
    # ...and holds an average advantage over the early epochs.
    assert fig16.early_epoch_advantage(result, k=3) > 0.0
    # Fine-tuning reaches the retrain curve's best RMSE at least as fast.
    target = min(result.retrain_rmse)
    finetune_epochs = result.epochs_to_reach(target, "finetune")
    retrain_epochs = result.epochs_to_reach(target, "retrain")
    assert finetune_epochs != -1
    assert finetune_epochs <= retrain_epochs
