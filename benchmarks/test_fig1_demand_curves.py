"""Fig. 1 — demand curves under four situations (the motivating example)."""

from repro.eval import format_table
from repro.experiments import fig1

from conftest import run_once


def test_fig1_demand_curves(benchmark, context, record_table):
    result = run_once(benchmark, lambda: fig1.run(context))

    lines = []
    for curve in result.curves:
        lines.append(
            format_table(
                ["hour"] + [str(h) for h in range(0, 24, 3)],
                [
                    [f"A{curve.area_id} {curve.archetype} {curve.weekday_name}"]
                    + [int(curve.hourly_demand[h]) for h in range(0, 24, 3)]
                ],
            )
        )
    record_table("fig1", "Fig. 1: demand curves\n" + "\n".join(lines))

    # Entertainment area: Sunday demand well above Wednesday (paper Fig 1a).
    assert fig1.entertainment_weekend_ratio(result) > 1.5
    # Business area: weekday rush hours dominate midday (paper Fig 1b)...
    assert fig1.business_commute_peak_ratio(result) > 1.2
    # ...and its Sunday total drops below the Wednesday total.
    business = [c for c in result.curves if c.archetype == "business"]
    wednesday = next(c for c in business if c.weekday_name == "Wednesday")
    sunday = next(c for c in business if c.weekday_name == "Sunday")
    assert sunday.hourly_demand.sum() < wednesday.hourly_demand.sum()
