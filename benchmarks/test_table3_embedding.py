"""Table III — embedding vs one-hot representations.

Shape assertions: for both models, the embedding representation gives a
lower (or equal) error than one-hot AND trains faster per epoch.
"""

from repro.eval import format_table
from repro.experiments import table3

from conftest import run_once


def test_table3_embedding_vs_onehot(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: table3.run(context))
    record_table(
        "table3",
        format_table(
            ["Model", "Representation", "MAE", "RMSE", "s/epoch"],
            [
                [row.model, row.representation, row.mae, row.rmse, row.seconds_per_epoch]
                for row in rows
            ],
            title="Table III: effects of embedding",
        ),
    )

    for model in ("basic", "advanced"):
        one_hot = next(
            r for r in rows if r.model == model and r.representation == "One-hot"
        )
        embedding = next(
            r for r in rows if r.model == model and r.representation == "Embedding"
        )
        # The paper shows embeddings strictly more accurate at Didi scale;
        # at 1/30 of the data the accuracy gap is within noise, so we
        # assert near-parity (<=5%, see EXPERIMENTS.md)...
        assert embedding.rmse <= one_hot.rmse * 1.05
        # ...while the speed benefit reproduces cleanly (the one-hot
        # identity input is ~1500-dim vs 17).
        assert embedding.seconds_per_epoch < one_hot.seconds_per_epoch
