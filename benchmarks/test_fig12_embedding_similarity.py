"""Fig. 12 — demand curves of areas close/far in the embedding space.

Shape assertions: the closest embedding pair has highly correlated demand
curves, the farthest pair correlates less, and the scale-free pair (close
in embedding, different in volume) still correlates well.
"""

from repro.eval import format_table
from repro.experiments import fig12

from conftest import run_once


def test_fig12_embedding_similarity(benchmark, context, record_table):
    result = run_once(benchmark, lambda: fig12.run(context))

    record_table(
        "fig12",
        format_table(
            ["Pair", "Embedding dist", "Demand corr", "Scale ratio"],
            [
                [
                    f"A{pair.area_a}-A{pair.area_b} ({label})",
                    pair.embedding_distance,
                    pair.correlation,
                    pair.scale_ratio,
                ]
                for label, pair in (
                    ("close", result.close_pair),
                    ("far", result.far_pair),
                    ("scale-free", result.scale_free_pair),
                )
            ],
            title="Fig. 12: embedding distance vs demand similarity",
        ),
    )

    # Close-in-embedding areas share demand patterns better than far ones.
    assert result.close_pair.correlation > result.far_pair.correlation
    assert result.close_pair.embedding_distance < result.far_pair.embedding_distance
    # The scale-free pair: meaningful volume difference, but still similar
    # trends (paper Fig. 12c/d: Area 4 vs Area 46).
    assert result.scale_free_pair.scale_ratio > 1.1
    assert result.scale_free_pair.correlation > result.far_pair.correlation
