"""Table IV — pairwise embedding distances of selected areas.

Shape assertions: areas adjacent in embedding space have more similar
demand curves (higher correlation) than areas far apart.
"""

import numpy as np

from repro.eval import format_table
from repro.experiments import table4

from conftest import run_once


def test_table4_embedding_distances(benchmark, context, record_table):
    result = run_once(benchmark, lambda: table4.run(context))

    header = ["Area"] + [f"A{area}" for area in result.areas]
    rows = [
        [f"A{area}"] + [float(d) for d in result.distances[i]]
        for i, area in enumerate(result.areas)
    ]
    pair_lines = [
        format_table(
            ["Pair", "Embedding dist", "Demand corr"],
            [
                [f"A{p.area_a}-A{p.area_b}", p.embedding_distance, p.demand_correlation]
                for p in result.close_pairs + result.far_pairs
            ],
            title=(
                "Closest / farthest embedding pairs "
                f"(quartile mean corr: close {result.close_quartile_corr:.2f} "
                f"vs far {result.far_quartile_corr:.2f})"
            ),
        )
    ]
    record_table(
        "table4",
        format_table(header, rows, title="Table IV: pairwise embedding distances")
        + "\n\n"
        + "\n".join(pair_lines),
    )

    # The distance matrix is a valid metric-ish table.
    assert np.allclose(result.distances, result.distances.T, atol=1e-6)
    assert np.allclose(np.diag(result.distances), 0.0, atol=1e-6)
    # Close pairs are closer than far pairs by construction...
    for close, far in zip(result.close_pairs, result.far_pairs):
        assert close.embedding_distance < far.embedding_distance
    # ...and their demand curves are more correlated on average
    # (the paper's Fig. 12 observation).
    assert table4.mean_correlation_gap(result) > 0.0
