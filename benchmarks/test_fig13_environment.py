"""Fig. 13 — effects of the environment part (cases A/B/C).

Shape assertions: adding the weather block (B) and then the traffic block
(C) does not hurt, and the full model (C) improves on order-only (A) for
both the basic and advanced networks.
"""

from repro.eval import format_table
from repro.experiments import fig13

from conftest import run_once


def test_fig13_environment_part(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: fig13.run(context))
    record_table(
        "fig13",
        format_table(
            ["Model", "Case", "MAE", "RMSE"],
            [[row.model, row.case, row.mae, row.rmse] for row in rows],
            title="Fig. 13: effects of the environment part",
        ),
    )

    for model in ("basic", "advanced"):
        errors = fig13.case_errors(rows, model, "rmse")
        # Full model (C) beats order-only (A).
        assert errors["C"] < errors["A"]
        # The weather block alone already helps (allowing noise tolerance).
        assert errors["B"] <= errors["A"] * 1.02
