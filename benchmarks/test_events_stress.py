"""Event-stress extension bench (beyond the paper).

Simulates a city with frequent demand surges (concerts, matches) and checks
that the real-time model keeps its edge exactly where the paper's Fig. 11
claims it matters: under rapid variations, Advanced DeepSD degrades less
than GBDT.
"""

import numpy as np
import pytest

from repro.config import ExperimentScale, FeatureConfig, SimulationConfig
from repro.eval import format_table
from repro.experiments import fig11
from repro.experiments.context import ExperimentContext

from conftest import run_once, scale_name


def events_scale() -> ExperimentScale:
    """A surge-heavy mid-size city (events roughly every other day)."""
    return ExperimentScale(
        name="events",
        simulation=SimulationConfig(
            n_areas=12, n_days=21, seed=20170301, events_per_week=4.0
        ),
        features=FeatureConfig(
            train_days=14,
            test_days=7,
            train_start_minute=30,
            train_stride_minutes=30,
            test_stride_minutes=120,
        ),
    )


@pytest.fixture(scope="module")
def events_context():
    if scale_name() == "tiny":
        pytest.skip("event-stress bench runs at bench scale only")
    return ExperimentContext(scale=events_scale())


def test_events_stress(benchmark, events_context, record_table):
    result = run_once(benchmark, lambda: fig11.run(events_context))

    record_table(
        "events_stress",
        format_table(
            ["Subset", "Advanced DeepSD", "GBDT"],
            [
                ["all test items", result.rmse_deepsd_all, result.rmse_gbdt_all],
                ["rapid variations", result.rmse_deepsd_rapid, result.rmse_gbdt_rapid],
            ],
            title=(
                "Event-stress city: RMSE of Advanced DeepSD vs GBDT "
                f"(most volatile area: A{result.area_id})"
            ),
        ),
    )

    # Rapid variations remain harder than the average item...
    assert result.rmse_gbdt_rapid > result.rmse_gbdt_all
    # ...and the real-time network holds its advantage there.
    assert result.rmse_deepsd_rapid < result.rmse_gbdt_rapid
    # Overall, DeepSD stays at least competitive on the surge-heavy city.
    assert result.rmse_deepsd_all <= result.rmse_gbdt_all * 1.05
    assert np.isfinite(result.rmse_deepsd_all)
