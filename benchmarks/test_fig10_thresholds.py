"""Fig. 10 — accuracy under different gap thresholds.

Shape assertions: Advanced DeepSD gives the best RMSE and MAE at (almost)
every threshold, and errors grow with the threshold for every model
(larger gaps are harder).
"""

import numpy as np

from repro.eval import format_table
from repro.experiments import fig10

from conftest import run_once


def test_fig10_thresholds(benchmark, context, record_table):
    series = run_once(benchmark, lambda: fig10.run(context))

    thresholds = series["Advanced DeepSD"].thresholds
    rows = []
    for name, data in series.items():
        rows.append([name, "RMSE"] + [v for v in data.rmse])
        rows.append([name, "MAE"] + [v for v in data.mae])
    record_table(
        "fig10",
        format_table(
            ["Model", "Metric"] + [f"<={int(t)}" for t in thresholds],
            rows,
            title="Fig. 10: accuracy under different thresholds",
        ),
    )

    # The paper's claim is a lead at every threshold; at bench scale the
    # advantage concentrates on the larger thresholds, so we assert a lead
    # at the largest thresholds (the hard, high-gap items)...
    n = len(thresholds)
    assert fig10.advanced_wins_at_threshold(series, n - 1, "rmse")
    assert fig10.advanced_wins_at_threshold(series, n - 2, "rmse")
    # ...and that Advanced DeepSD is never far behind anywhere (<15%).
    for i in range(n):
        advanced = series["Advanced DeepSD"].rmse[i]
        best = min(series[name].rmse[i] for name in series)
        if not np.isnan(advanced):
            assert advanced <= best * 1.15
    # Errors increase with the threshold for every model.
    for data in series.values():
        rmse_values = [v for v in data.rmse if not np.isnan(v)]
        assert rmse_values == sorted(rmse_values)
    # Subset sizes grow with the threshold.
    counts = series["GBDT"].n_items
    assert counts == sorted(counts)
