"""Table II — performance comparison (the paper's headline result).

Shape assertions (absolute numbers differ — our substrate is a synthetic
city, not Didi's Hangzhou data):

- Advanced DeepSD has the lowest RMSE of all models;
- both DeepSD variants beat GBDT, RF and the empirical average;
- the advanced model improves on the basic model;
- the empirical average is far worse than everything learned.
"""

from repro.eval import format_table
from repro.experiments import table2

from conftest import run_once


def test_table2_performance(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: table2.run(context))
    improvement = table2.improvement_over_best_existing(rows)
    record_table(
        "table2",
        format_table(
            ["Model", "MAE", "RMSE"],
            [[row.model, row.mae, row.rmse] for row in rows],
            title=(
                "Table II: performance comparison "
                f"(advanced vs best existing RMSE: -{improvement:.1%})"
            ),
        ),
    )

    by_name = {row.model: row for row in rows}
    advanced = by_name["Advanced DeepSD"]
    basic = by_name["Basic DeepSD"]

    # Advanced DeepSD achieves the best RMSE overall.
    assert advanced.rmse == min(row.rmse for row in rows)
    # Advanced improves on Basic (paper: 13.99 vs 15.57).
    assert advanced.rmse < basic.rmse
    # Both DeepSD variants beat the tree ensembles and the average on RMSE.
    for name in ("GBDT", "RF", "Average"):
        assert advanced.rmse < by_name[name].rmse
        assert basic.rmse < by_name[name].rmse
    # On MAE the paper also shows a DeepSD lead; at bench scale the
    # MSE-trained networks land within noise of the best baseline, so we
    # assert a clear lead over RF/Average and near-parity (<=3%) with the
    # best classical MAE (see EXPERIMENTS.md).
    best_classical_mae = min(
        by_name[name].mae for name in ("LASSO", "GBDT", "RF")
    )
    assert advanced.mae < by_name["RF"].mae
    assert advanced.mae < by_name["Average"].mae
    assert advanced.mae <= best_classical_mae * 1.03
    # The empirical average is far behind every learned model
    # (paper: RMSE 52.94 vs <18; our simulator is more regular than the
    # Didi data, so the margin is smaller but still decisive).
    for row in rows:
        if row.model != "Average":
            assert by_name["Average"].rmse > 1.3 * row.rmse
    # The advanced model shows a clear relative improvement over the best
    # existing method (paper: 11.9%).
    assert improvement > 0.0
