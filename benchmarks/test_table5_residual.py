"""Table V — effects of residual learning.

Shape assertions: for both models, removing the block-level residual
connections (Fig. 14's concatenation network) does not improve RMSE, and
for at least one model it clearly hurts (the paper shows it hurting both).
"""

from repro.eval import format_table
from repro.experiments import table5

from conftest import run_once


def test_table5_residual_learning(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: table5.run(context))
    record_table(
        "table5",
        format_table(
            ["Model", "Residual", "MAE", "RMSE"],
            [
                [row.model, "with" if row.residual else "without", row.mae, row.rmse]
                for row in rows
            ],
            title="Table V: effects of residual learning",
        ),
    )

    degradations = []
    for model in ("basic", "advanced"):
        with_res = next(r for r in rows if r.model == model and r.residual)
        without = next(r for r in rows if r.model == model and not r.residual)
        degradations.append(without.rmse - with_res.rmse)
        # Residual learning never hurts beyond noise.
        assert with_res.rmse <= without.rmse * 1.03
    # And it strictly helps at least one model (paper: helps both).
    assert max(degradations) > 0.0
