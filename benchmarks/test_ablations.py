"""Ablation benches for the design constants DESIGN.md calls out.

Not part of the paper's tables/figures — these quantify the sensitivity of
the system to the constants the paper fixes (C = 10, L = 20, MSE loss) and
the run-to-run stability of the advanced model.
"""

import numpy as np

from repro.eval import format_table
from repro.experiments import ablations

from conftest import run_once


def _record(record_table, name, title, rows):
    record_table(
        name,
        format_table(
            ["Setting", "MAE", "RMSE", "mean gap"],
            [
                [
                    f"{row.parameter}={row.value:g}" if row.value else row.parameter,
                    row.mae,
                    row.rmse,
                    row.mean_gap,
                ]
                for row in rows
            ],
            title=title,
        ),
    )


def test_ablation_horizon(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: ablations.horizon_sweep(context))
    _record(record_table, "ablation_horizon", "Ablation: prediction horizon C", rows)

    by_value = {row.value: row for row in rows}
    # Longer horizons accumulate more invalid orders: the target scale and
    # the absolute error both grow with C.
    assert by_value[5.0].mean_gap < by_value[10.0].mean_gap < by_value[20.0].mean_gap
    assert by_value[5.0].rmse < by_value[20.0].rmse


def test_ablation_window(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: ablations.window_sweep(context))
    _record(record_table, "ablation_window", "Ablation: lookback window L", rows)

    # The label does not depend on L: mean gap constant across settings.
    gaps = [row.mean_gap for row in rows]
    assert max(gaps) - min(gaps) < 1e-6
    # All window sizes give a working model (errors in a narrow band);
    # the paper's L=20 is not a knife-edge choice.
    rmses = [row.rmse for row in rows]
    assert max(rmses) / min(rmses) < 1.15


def test_ablation_loss(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: ablations.loss_ablation(context))
    _record(record_table, "ablation_loss", "Ablation: training loss", rows)

    by_loss = {row.parameter: row for row in rows}
    # MSE training targets RMSE directly: it must be the best (or tied)
    # RMSE among the three losses.
    assert by_loss["loss=mse"].rmse <= min(r.rmse for r in rows) * 1.02
    # MAE training targets MAE: it gives the best (or tied) MAE.
    assert by_loss["loss=mae"].mae <= min(r.mae for r in rows) * 1.05


def test_ablation_weekday_weighting(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: ablations.weekday_weighting_ablation(context))
    _record(
        record_table,
        "ablation_weekday_weighting",
        "Ablation: learned vs uniform weekday weights",
        rows,
    )

    by_label = {row.parameter: row for row in rows}
    learned = by_label["weekday_weights=learned"]
    uniform = by_label["weekday_weights=uniform"]
    # Learned weights never lose meaningfully to naive uniform pooling
    # (Section V-A's argument; at bench scale the weekday contrast is
    # milder than Didi's, so we assert parity-or-better).
    assert learned.rmse <= uniform.rmse * 1.03


def test_ablation_seed_stability(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: ablations.seed_stability(context))
    _record(record_table, "ablation_seeds", "Ablation: training-seed stability", rows)

    rmses = np.array([row.rmse for row in rows])
    # Run-to-run spread stays well under the gap to the weakest baseline.
    assert ablations.rmse_spread(rows) < 0.5
    # Every seed still beats the empirical-average baseline decisively.
    average_rmse = np.sqrt(
        (
            (
                context.baseline("average").test_predictions
                - context.test_set.gaps.astype(float)
            )
            ** 2
        ).mean()
    )
    assert (rmses < average_rmse).all()
