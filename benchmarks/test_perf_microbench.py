"""Performance microbenchmarks of the hot paths.

Unlike the table/figure benches (one-shot experiment reproductions), these
use pytest-benchmark's repeated timing to track the throughput of the
library's hot paths: model forward/backward, feature extraction and the
order simulator.

Timings are also recorded into a :class:`repro.obs.MetricsRegistry`
under the ``repro.bench.*`` namespace and exported to
``bench_artifacts/microbench_metrics.json``, so perf trajectories share
one metric namespace with the pipeline's runtime metrics.
"""

import numpy as np
import pytest

from repro.city import CityGrid, MINUTES_PER_DAY, OrderGenerator
from repro.config import EmbeddingConfig
from repro.core import AdvancedDeepSD, BasicDeepSD, make_batch
from repro.core.batching import EpochBatches
from repro.features import AreaDayProfile
from repro.nn import Adam, Tensor, mse_loss
from repro.obs import MetricsRegistry

BATCH = 64
L = 20
N_AREAS = 20


@pytest.fixture(scope="module")
def perf_metrics(artifacts_dir):
    """Registry collecting every microbench timing; exported on teardown."""
    registry = MetricsRegistry()
    yield registry
    (artifacts_dir / "microbench_metrics.json").write_text(
        registry.to_json() + "\n"
    )


def record_timing(registry: MetricsRegistry, name: str, benchmark) -> None:
    """Push one pytest-benchmark result into the ``repro.bench`` namespace."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    registry.observe(f"repro.bench.{name}.mean_seconds", float(stats.mean))
    registry.gauge(f"repro.bench.{name}.min_seconds", float(stats.min))
    registry.counter(f"repro.bench.{name}.rounds", float(stats.rounds))


@pytest.fixture(scope="module")
def batch(context):
    train = context.train_set
    rng = np.random.default_rng(0)
    rows = rng.choice(train.n_items, size=BATCH, replace=False)
    return make_batch(train, rows), train.gaps[rows]


@pytest.fixture(scope="module")
def basic_model(context):
    return BasicDeepSD(
        context.dataset.n_areas, L, EmbeddingConfig(), dropout=0.0, seed=0
    )


@pytest.fixture(scope="module")
def advanced_model(context):
    return AdvancedDeepSD(
        context.dataset.n_areas, L, EmbeddingConfig(), dropout=0.0, seed=0
    )


def test_perf_basic_forward(benchmark, basic_model, batch, perf_metrics):
    inputs, _ = batch
    basic_model.eval()
    result = benchmark(lambda: basic_model(inputs))
    assert result.shape == (BATCH,)
    record_timing(perf_metrics, "basic_forward", benchmark)


def test_perf_advanced_forward(benchmark, advanced_model, batch, perf_metrics):
    inputs, _ = batch
    advanced_model.eval()
    result = benchmark(lambda: advanced_model(inputs))
    assert result.shape == (BATCH,)
    record_timing(perf_metrics, "advanced_forward", benchmark)


def test_perf_advanced_training_step(benchmark, advanced_model, batch, perf_metrics):
    inputs, targets = batch
    advanced_model.train()
    optimizer = Adam(advanced_model.parameters(), lr=1e-3)

    def step():
        optimizer.zero_grad()
        loss = mse_loss(advanced_model(inputs), Tensor(targets))
        loss.backward()
        optimizer.step()
        return loss.item()

    loss_value = benchmark(step)
    assert np.isfinite(loss_value)
    record_timing(perf_metrics, "advanced_training_step", benchmark)


def test_perf_profile_construction(benchmark, context, perf_metrics):
    dataset = context.dataset

    def build():
        return AreaDayProfile(dataset, 0, 0, L)

    profile = benchmark(build)
    assert profile.window == L
    record_timing(perf_metrics, "profile_construction", benchmark)


def test_perf_vector_extraction(benchmark, context, perf_metrics):
    profile = AreaDayProfile(context.dataset, 0, 0, L)
    timeslots = np.arange(30, 1430, 30)

    def extract():
        return (
            profile.supply_demand_vectors(timeslots),
            profile.last_call_vectors(timeslots),
            profile.waiting_time_vectors(timeslots),
        )

    sd, lc, wt = benchmark(extract)
    assert sd.shape == (len(timeslots), 2 * L)
    record_timing(perf_metrics, "vector_extraction", benchmark)


def test_perf_batch_delivery_per_batch(benchmark, context, perf_metrics):
    """The historical delivery path: per-batch fancy indexing of all fields."""
    train = context.train_set
    permutation = np.random.default_rng(0).permutation(train.n_items)

    def deliver():
        total = 0
        for start in range(0, train.n_items, BATCH):
            rows = permutation[start : start + BATCH]
            total += make_batch(train, rows)["sd_now"].shape[0]
        return total

    assert benchmark(deliver) == train.n_items
    record_timing(perf_metrics, "batch_delivery_per_batch", benchmark)


def test_perf_batch_delivery_epoch_gather(benchmark, context, perf_metrics):
    """The trainer's delivery path: one permutation gather + slice views.

    Reuses one buffer dict across rounds, as the trainer does across
    epochs, so the timing reflects steady-state cost.
    """
    train = context.train_set
    permutation = np.random.default_rng(0).permutation(train.n_items)
    buffers = {}

    def deliver():
        total = 0
        epoch = EpochBatches(train, permutation, buffers=buffers)
        for batch, _ in epoch.batches(BATCH):
            total += batch["sd_now"].shape[0]
        return total

    assert benchmark(deliver) == train.n_items
    record_timing(perf_metrics, "batch_delivery_epoch_gather", benchmark)


def test_perf_basic_fields_epoch_gather(benchmark, context, perf_metrics):
    """Epoch gather restricted to the basic model's declared input fields."""
    train = context.train_set
    fields = BasicDeepSD(context.dataset.n_areas, L).input_fields
    permutation = np.random.default_rng(0).permutation(train.n_items)
    buffers = {}

    def deliver():
        epoch = EpochBatches(train, permutation, fields, buffers)
        return sum(batch["sd_now"].shape[0] for batch, _ in epoch.batches(BATCH))

    assert benchmark(deliver) == train.n_items
    record_timing(perf_metrics, "basic_fields_epoch_gather", benchmark)


def test_perf_order_generation(benchmark, perf_metrics):
    rng = np.random.default_rng(0)
    grid = CityGrid.generate(3, rng)
    arrivals = rng.poisson(1.0, size=MINUTES_PER_DAY)
    capacity = np.full(MINUTES_PER_DAY, 2)
    generator = OrderGenerator()

    def generate():
        return generator.generate_area_day(
            grid[0], 0, arrivals, capacity, np.full(3, 1 / 3),
            np.random.default_rng(1), pid_start=0,
        )

    result = benchmark(generate)
    assert result.n_orders > 0
    record_timing(perf_metrics, "order_generation", benchmark)
