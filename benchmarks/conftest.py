"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, prints the
rows and writes them to ``bench_artifacts/`` for inspection.  Heavy
artifacts (simulation, features, trained models) are cached in
``REPRO_CACHE_DIR`` so re-runs are fast.

Environment knobs:

- ``REPRO_SCALE`` — ``bench`` (default), ``tiny`` (smoke) or ``paper``
  (full protocol; hours of CPU);
- ``REPRO_CACHE_DIR`` — cache location (default ``.repro_cache``);
- ``REPRO_ARTIFACTS`` — where the rendered tables go
  (default ``bench_artifacts``).
"""

import os
from pathlib import Path

import pytest

from repro.experiments import get_context


def scale_name() -> str:
    return os.environ.get("REPRO_SCALE", "bench")


@pytest.fixture(scope="session")
def context():
    return get_context(scale_name())


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    path = Path(os.environ.get("REPRO_ARTIFACTS", "bench_artifacts"))
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def record_table(artifacts_dir):
    """Print a rendered table and persist it under bench_artifacts/."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (artifacts_dir / f"{name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments train models on first run (minutes); repeated timing
    rounds would be pointless, so ``pedantic`` with one round is used.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
