"""Table I — embedding layer settings."""

from repro.eval import format_table
from repro.experiments import table1

from conftest import run_once


def test_table1_embedding_config(benchmark, context, record_table):
    rows = run_once(benchmark, lambda: table1.run(context))
    record_table(
        "table1",
        format_table(
            ["Embedding Layer", "Setting", "Occurred Parts"],
            [
                [row.layer, f"R^{row.input_vocab} -> R^{row.output_dim}", row.occurred_parts]
                for row in rows
            ],
            title="Table I: embedding settings",
        ),
    )

    by_layer = {row.layer: row for row in rows}
    # Table I of the paper: output widths 8 / 6 / 3 / 3.
    assert by_layer["AreaID"].output_dim == 8
    assert by_layer["TimeID"].output_dim == 6
    assert by_layer["TimeID"].input_vocab == 1440
    assert by_layer["WeekID"].output_dim == 3
    assert by_layer["WeekID"].input_vocab == 7
    assert by_layer["wc.type"].output_dim == 3
    assert by_layer["wc.type"].input_vocab == 10

    # The instantiated model must match the configured table.
    actual = dict(table1.verify_against_model(context))
    for layer, row in by_layer.items():
        assert actual[layer] == row.output_dim
