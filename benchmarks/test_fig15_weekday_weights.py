"""Fig. 15 — learned weekday combining weights.

Shape assertions: on Sundays the learned weights put more mass on weekend
history than they do on Tuesdays, and the weights are valid distributions
that differ across areas.
"""

import numpy as np

from repro.eval import format_table
from repro.experiments import fig15

from conftest import run_once

WEEKDAYS = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]


def test_fig15_weekday_weights(benchmark, context, record_table):
    result = run_once(benchmark, lambda: fig15.run(context))

    rows = []
    for profile in result.profiles:
        for current, label in ((1, "Tue"), (6, "Sun")):
            rows.append(
                [f"A{profile.area_id}", label]
                + [float(w) for w in profile.weights[current]]
            )
    record_table(
        "fig15",
        format_table(
            ["Area", "Current"] + WEEKDAYS,
            rows,
            title="Fig. 15: weekday combining weights",
            float_format="{:.3f}",
        ),
    )

    # All weight vectors are distributions.
    for profile in result.profiles:
        np.testing.assert_allclose(profile.weights.sum(axis=1), np.ones(7), atol=1e-6)
        assert (profile.weights > 0).all()

    # Sundays lean on weekend history more than Tuesdays do (paper Fig. 15:
    # "If the current day is Sunday, the weight is only concentrated on the
    # weekends").
    sunday = fig15.mean_weekend_mass_on_sunday(result)
    tuesday = fig15.mean_weekend_mass_on_tuesday(result)
    assert sunday > tuesday

    # Weights differ across areas for the same weekday (paper: "even for
    # the same day of week, the weights in different areas can be
    # different").
    tuesday_rows = np.stack([p.weights[1] for p in result.profiles])
    assert np.abs(tuesday_rows - tuesday_rows[0]).max() > 1e-3
