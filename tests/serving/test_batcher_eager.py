"""Eager-flush batching: dispatch immediately, batch by backpressure.

With ``eager_flush=True`` the worker never sleeps on ``max_wait_ms`` — it
takes whatever is already queued and runs the handler; the *handler's own
duration* is the batching window.  These tests pin the two halves of that
contract: a lone submit is served without the linger delay, and items
that queue up behind a slow handler are coalesced into one batch.
"""

import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serving import MicroBatcher

pytestmark = pytest.mark.serving


def test_eager_flush_skips_the_linger_wait():
    """A single queued item is answered without burning max_wait_ms."""
    batcher = MicroBatcher(
        lambda items: [item + 1 for item in items],
        max_batch=8,
        max_wait_ms=200.0,  # would dominate the round trip under linger
        eager_flush=True,
        registry=MetricsRegistry(),
    )
    try:
        start = time.perf_counter()
        assert batcher.submit(41).result(timeout=5.0) == 42
        elapsed = time.perf_counter() - start
        assert elapsed < 0.1, f"eager flush still lingered: {elapsed:.3f}s"
    finally:
        batcher.close()


def test_eager_flush_coalesces_backlog_into_batches():
    """Items queued while the handler runs are dispatched together."""
    release = threading.Event()
    batches = []

    def handler(items):
        batches.append(list(items))
        if len(batches) == 1:
            release.wait(timeout=5.0)  # hold the first batch open
        return [item * 2 for item in items]

    batcher = MicroBatcher(
        handler, max_batch=8, max_wait_ms=0.0, eager_flush=True,
        registry=MetricsRegistry(),
    )
    try:
        first = batcher.submit(0)
        # Wait until the worker is inside the handler with batch #1.
        deadline = time.perf_counter() + 5.0
        while not batches and time.perf_counter() < deadline:
            time.sleep(0.001)
        assert batches, "worker never picked up the first item"
        backlog = [batcher.submit(value) for value in (1, 2, 3)]
        release.set()
        assert first.result(timeout=5.0) == 0
        assert [f.result(timeout=5.0) for f in backlog] == [2, 4, 6]
        # The backlog accumulated behind the held handler must have been
        # flushed as one batch, not three singletons.
        assert batches[1] == [1, 2, 3]
    finally:
        batcher.close()


def test_eager_flush_respects_max_batch():
    release = threading.Event()
    batches = []

    def handler(items):
        batches.append(list(items))
        if len(batches) == 1:
            release.wait(timeout=5.0)
        return list(items)

    batcher = MicroBatcher(
        handler, max_batch=2, max_wait_ms=0.0, eager_flush=True,
        registry=MetricsRegistry(),
    )
    try:
        first = batcher.submit(0)
        deadline = time.perf_counter() + 5.0
        while not batches and time.perf_counter() < deadline:
            time.sleep(0.001)
        futures = [batcher.submit(value) for value in (1, 2, 3)]
        release.set()
        first.result(timeout=5.0)
        for future in futures:
            future.result(timeout=5.0)
        assert all(len(batch) <= 2 for batch in batches), batches
    finally:
        batcher.close()
