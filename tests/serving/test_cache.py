"""TTLCache and MicroBatcher unit tests (fake clocks, private registries)."""

import threading

import pytest

from repro.exceptions import ConfigError
from repro.obs import MetricsRegistry
from repro.serving import MicroBatcher, TTLCache

pytestmark = pytest.mark.serving


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTTLCache:
    def test_lru_eviction_order(self):
        cache = TTLCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch: "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = TTLCache(max_size=8, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.999)
        assert cache.get("a") == 1
        clock.advance(0.002)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["size"] == 0

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = TTLCache(max_size=8, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)
        clock.advance(8.0)
        assert cache.get("a") == 2

    def test_invalidate_predicate_is_exact(self):
        cache = TTLCache(max_size=16)
        for area in range(4):
            for slot in range(4):
                cache.put(("v0", area, slot), area * 10 + slot)
        removed = cache.invalidate(lambda key: key[1] == 2)
        assert removed == 4
        assert ("v0", 2, 0) not in cache
        assert ("v0", 1, 0) in cache
        assert cache.stats()["invalidations"] == 4

    def test_stats_are_exact(self):
        cache = TTLCache(max_size=4)
        assert cache.get("missing") is None
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_clear_counts_invalidations(self):
        cache = TTLCache(max_size=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 2

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            TTLCache(max_size=0)
        with pytest.raises(ConfigError):
            TTLCache(max_size=4, ttl_seconds=0)

    def test_registry_counters_track_churn(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        cache = TTLCache(max_size=2, ttl_seconds=10.0, clock=clock,
                         registry=registry)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert registry.counters["repro.serving.cache.evictions"] == 1
        clock.advance(11.0)
        assert cache.get("b") is None  # expired
        assert registry.counters["repro.serving.cache.expirations"] == 1
        cache.put("d", 4)
        removed = cache.invalidate(lambda key: key == "d")
        assert removed == 1
        assert registry.counters["repro.serving.cache.invalidated_entries"] == 1
        cache.put("e", 5)
        cache.clear()
        assert registry.counters["repro.serving.cache.invalidated_entries"] >= 2

    def test_no_registry_means_no_metrics(self):
        cache = TTLCache(max_size=1)
        cache.put("a", 1)
        cache.put("b", 2)  # evicts without a registry — must not raise
        assert cache.stats()["evictions"] == 1

    def test_custom_metric_prefix(self):
        registry = MetricsRegistry()
        cache = TTLCache(max_size=1, registry=registry, metric_prefix="my.cache")
        cache.put("a", 1)
        cache.put("b", 2)
        assert registry.counters["my.cache.evictions"] == 1


class TestMicroBatcher:
    def test_coalesces_concurrent_submissions(self):
        registry = MetricsRegistry()
        seen_batches = []
        started = threading.Event()

        def handler(items):
            started.wait(timeout=5)
            seen_batches.append(list(items))
            return [item * 2 for item in items]

        with MicroBatcher(handler, max_batch=8, max_wait_ms=50.0,
                          registry=registry) as batcher:
            futures = [batcher.submit(i) for i in range(6)]
            started.set()
            results = [future.result(timeout=5) for future in futures]
        assert results == [0, 2, 4, 6, 8, 10]
        # The first dispatch may race ahead with a partial batch, but the
        # items must arrive in order and some coalescing must happen.
        assert [i for batch in seen_batches for i in batch] == list(range(6))
        assert max(len(batch) for batch in seen_batches) > 1
        assert registry.histograms["repro.serving.batch_size"].count == len(seen_batches)

    def test_respects_max_batch(self):
        release = threading.Event()
        sizes = []

        def handler(items):
            release.wait(timeout=5)
            sizes.append(len(items))
            return items

        batcher = MicroBatcher(handler, max_batch=3, max_wait_ms=100.0,
                               registry=MetricsRegistry())
        futures = [batcher.submit(i) for i in range(7)]
        release.set()
        for future in futures:
            future.result(timeout=5)
        batcher.close()
        assert max(sizes) <= 3

    def test_handler_error_fans_to_all_futures(self):
        def handler(items):
            raise RuntimeError("boom")

        batcher = MicroBatcher(handler, max_batch=4, max_wait_ms=20.0,
                               registry=MetricsRegistry())
        futures = [batcher.submit(i) for i in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)
        batcher.close()

    def test_result_count_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda items: items[:-1] if len(items) > 1 else [],
                               max_batch=4, max_wait_ms=20.0,
                               registry=MetricsRegistry())
        future = batcher.submit(1)
        with pytest.raises(RuntimeError, match="results"):
            future.result(timeout=5)
        batcher.close()

    def test_close_drains_then_rejects(self):
        batcher = MicroBatcher(lambda items: items, max_batch=4,
                               max_wait_ms=1.0, registry=MetricsRegistry())
        future = batcher.submit("x")
        batcher.close()
        assert future.result(timeout=5) == "x"
        with pytest.raises(RuntimeError):
            batcher.submit("y")
        batcher.close()  # idempotent

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            MicroBatcher(lambda items: items, max_batch=0)
        with pytest.raises(ConfigError):
            MicroBatcher(lambda items: items, max_wait_ms=-1.0)
