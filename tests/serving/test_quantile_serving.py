"""Quantile serving invariants (ISSUE 10 satellite).

- Every response from a quantile-head checkpoint carries monotone
  P10 ≤ P50 ≤ P90 intervals, on all three call paths.
- Cache hits return the exact floats the cold compute produced.
- Interval fields are byte-identical across the threaded server, the
  selector event loop, and a 4-shard fleet behind the router (JSON
  round-trips doubles exactly, so ``==`` on parsed floats is bitwise
  equality; the single-process servers are additionally compared on raw
  body bytes).
"""

import copy
import http.client
import json
import threading

import pytest

from repro.core import BasicDeepSD, Trainer, TrainingConfig
from repro.core.quantiles import attach_quantile_head, fit_quantile_head
from repro.obs import MetricsRegistry
from repro.serving import (
    FleetConfig,
    FleetSupervisor,
    PredictionService,
    ServingConfig,
    build_router,
    build_server,
)

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def q_checkpoint(dataset, scale, train_set, tmp_path_factory):
    """A trained checkpoint with a P10/P50/P90 head attached."""
    directory = tmp_path_factory.mktemp("ckpt_quantile")
    model = BasicDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings, seed=3
    )
    trainer = Trainer(model, TrainingConfig(epochs=2, best_k=2, seed=3))
    trainer.fit(train_set, checkpoint_dir=str(directory), checkpoint_every=1)
    head = fit_quantile_head(trainer, train_set, epochs=60)
    attach_quantile_head(trainer.last_checkpoint, head)
    return trainer.last_checkpoint


def _make_service(q_checkpoint, dataset, scale):
    return PredictionService.from_checkpoint(
        str(q_checkpoint),
        copy.deepcopy(dataset),
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=0.0),
        registry=MetricsRegistry(),
    )


@pytest.fixture(scope="module")
def q_service(q_checkpoint, dataset, scale):
    service = _make_service(q_checkpoint, dataset, scale)
    yield service
    service.close()


def _queries(scale, n, offset=0):
    L = scale.features.window_minutes
    return [(i % 3, 1 + i % 3, L + 17 * i + offset) for i in range(n)]


# ----------------------------------------------------------------------
# Service-level invariants
# ----------------------------------------------------------------------


def test_every_path_returns_monotone_intervals(q_service, scale):
    triples = _queries(scale, 6)
    single = [q_service.predict(*t) for t in triples]
    many = q_service.predict_many(_queries(scale, 6, offset=1))
    batch = q_service.predict_batch(_queries(scale, 6, offset=2))
    for result in (*single, *many, *batch):
        assert result.intervals is not None
        p10, p50, p90 = (result.intervals[k] for k in ("p10", "p50", "p90"))
        assert p10 <= p50 <= p90
        assert list(result.intervals) == ["p10", "p50", "p90"]
    assert q_service.stats()["quantiles"] is True


def test_cache_hits_repeat_cold_intervals_exactly(q_service, scale):
    (triple,) = _queries(scale, 1, offset=500)
    cold = q_service.predict(*triple)
    hit = q_service.predict(*triple)
    assert cold.cached is False and hit.cached is True
    assert hit.gap == cold.gap
    assert hit.intervals == cold.intervals
    # Within-batch duplicates mirror the cache hit too.
    first, dup = q_service.predict_batch([triple, triple])
    assert dup.cached is True
    assert dup.intervals == first.intervals == cold.intervals


def test_point_only_checkpoints_have_no_intervals(checkpoint, dataset, scale):
    service = _make_service(checkpoint, dataset, scale)
    try:
        result = service.predict(0, 1, 400)
        assert result.intervals is None
        assert service.stats()["quantiles"] is False
    finally:
        service.close()


# ----------------------------------------------------------------------
# Front-end byte identity
# ----------------------------------------------------------------------


def _raw_post(address, path, body) -> bytes:
    host, _, port = address.rpartition(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        conn.request(
            "POST", path, body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        data = response.read()
        assert response.status == 200, data
        return data
    finally:
        conn.close()


def _script(scale):
    """The request script every front-end replays from a cold start."""
    triples = _queries(scale, 4, offset=3)
    items = [
        {"area": a, "day": d, "timeslot": t} for a, d, t in triples
    ]
    return [
        ("/predict", items[0]),
        ("/predict", items[1]),
        ("/predict", items[0]),  # exact repeat → cache hit everywhere
        ("/predict_batch", {"items": [items[2], items[3], items[2]]}),
    ]


@pytest.fixture(scope="module")
def fleet_address(q_checkpoint, dataset, tmp_path_factory):
    city = tmp_path_factory.mktemp("q_city") / "city.npz"
    dataset.save(city)
    fleet = FleetSupervisor(
        FleetConfig(
            city=str(city),
            checkpoint=str(q_checkpoint),
            scale="tiny",
            workers=4,
            shard_by="area-slot",
            run_dir=str(tmp_path_factory.mktemp("q_fleet_run")),
        ),
        registry=MetricsRegistry(),
    )
    fleet.start()
    server = build_router(fleet)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield "127.0.0.1:%d" % server.server_address[1]
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    fleet.shutdown()


def _serve(service, io_loop):
    server = build_server(service, io_loop=io_loop)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, "127.0.0.1:%d" % server.server_address[1]


def test_intervals_byte_identical_across_frontends(
    q_checkpoint, dataset, scale, fleet_address
):
    script = _script(scale)
    replies = {}
    for io_loop in ("threaded", "selector"):
        service = _make_service(q_checkpoint, dataset, scale)
        server, thread, address = _serve(service, io_loop)
        try:
            replies[io_loop] = [
                _raw_post(address, path, body) for path, body in script
            ]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()
    # Same app, same cold start → raw bodies identical byte for byte.
    assert replies["threaded"] == replies["selector"]

    fleet_replies = [
        json.loads(_raw_post(fleet_address, path, body))
        for path, body in script
    ]
    local = [json.loads(data) for data in replies["threaded"]]
    for path_body, expected, got in zip(script, local, fleet_replies):
        # Parsed equality on JSON doubles is bitwise equality per field —
        # gap, p10, p50, p90, version and cached all must match.
        assert got == expected, path_body

    # And the intervals in every reply are monotone on the wire.
    for payload in local:
        rows = payload.get("results", [payload])
        for row in rows:
            assert row["p10"] <= row["p50"] <= row["p90"]
