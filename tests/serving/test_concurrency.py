"""Concurrency satellite: hammering threads + live checkpoint hot-swaps.

Eight request threads drive the service while a background thread swaps
between two checkpoints.  Every response must be attributable to exactly
one checkpoint version — its gap bitwise-equal to that version's
single-query reference — with no torn reads, and the cache stats must
add up exactly afterwards.
"""

import threading

import pytest

from repro.core import GapPredictor, GapQuery, Trainer
from repro.serving import PredictionService, ServingConfig

pytestmark = pytest.mark.serving

N_THREADS = 8
QUERIES_PER_THREAD = 40
N_SWAPS = 6


def _reference_gaps(checkpoint_path, dataset, scale, queries):
    trainer = Trainer.from_checkpoint(checkpoint_path)
    scalers = {
        name: tuple(pair)
        for name, pair in trainer.serving_meta["feature_scalers"].items()
    }
    predictor = GapPredictor(trainer, dataset, scale.features, scalers)
    gaps = {}
    for query in queries:
        example_set = predictor._featurize([GapQuery(*query)])
        gaps[query] = float(predictor._trainer.predict(example_set)[0])
    return gaps


def test_hot_swap_under_load(checkpoint, other_checkpoint, dataset, scale):
    pool = [
        (area, day, slot)
        for area in range(dataset.n_areas)
        for day in (2, 5)
        for slot in (30, 95, 240, 611)
    ]
    reference_by_path = {
        checkpoint: _reference_gaps(checkpoint, dataset, scale, pool),
        other_checkpoint: _reference_gaps(other_checkpoint, dataset, scale, pool),
    }

    service = PredictionService.from_checkpoint(
        checkpoint,
        dataset,
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=1.0, cache_size=256),
    )
    # Every version tag the service can ever hand out, mapped to the
    # checkpoint it came from (v0 is the constructor's, v1..vN the swaps).
    version_path = {service.version: checkpoint}
    version_lock = threading.Lock()

    results = []
    results_lock = threading.Lock()
    errors = []
    stop_swapping = threading.Event()

    def hammer(thread_id):
        try:
            local = []
            for i in range(QUERIES_PER_THREAD):
                query = pool[(thread_id * 7 + i) % len(pool)]
                local.append((query, service.predict(*query)))
            with results_lock:
                results.extend(local)
        except Exception as error:  # pragma: no cover — surfaced below
            errors.append(error)

    def swapper():
        try:
            for swap in range(N_SWAPS):
                if stop_swapping.is_set():
                    return
                path = other_checkpoint if swap % 2 == 0 else checkpoint
                version = service.load_checkpoint(path)
                with version_lock:
                    version_path[version] = path
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
    ]
    swap_thread = threading.Thread(target=swapper)
    for thread in threads:
        thread.start()
    swap_thread.start()
    for thread in threads:
        thread.join()
    stop_swapping.set()
    swap_thread.join()
    assert not errors, errors

    assert len(results) == N_THREADS * QUERIES_PER_THREAD
    for query, result in results:
        assert result.version in version_path, result.version
        expected = reference_by_path[version_path[result.version]][query]
        assert result.gap == expected, (
            f"{query} served {result.gap!r} under {result.version} but that "
            f"checkpoint's single-query reference is {expected!r}"
        )

    # Cache accounting must be exact: one lookup per request, every miss
    # either filled or superseded, no double counting under contention.
    stats = service.stats()["cache"]
    assert stats["hits"] + stats["misses"] == len(results)
    assert stats["size"] <= 256
    service.close()
