"""Unit tests for the loadtest batching plan: ``group_batches``."""

import pytest

from repro.serving import group_batches
from repro.serving.loadtest import LoadTestResult

pytestmark = pytest.mark.serving


def _predict(i):
    return ("/predict", {"area": 0, "day": 1, "timeslot": 400 + i})


def _observe(i):
    return ("/observe", {"kind": "orders", "day": 1, "minute": i,
                         "area": 0, "values": {"valid": 1, "invalid": 0}})


def test_singles_pass_through_untouched():
    ops = [_predict(0), _observe(1), _predict(2)]
    assert group_batches(ops, 1) == [(p, b, 1) for p, b in ops]
    assert group_batches(ops, 0) == [(p, b, 1) for p, b in ops]


def test_consecutive_predicts_fold_up_to_batch():
    ops = [_predict(i) for i in range(7)]
    wire = group_batches(ops, 3)
    assert [n for _, _, n in wire] == [3, 3, 1]
    assert all(path == "/predict_batch" for path, _, n in wire if n > 1)
    # Every original item survives, in order.
    flat = []
    for path, body, n in wire:
        flat.extend(body["items"] if path == "/predict_batch" else [body])
    assert flat == [b for _, b in ops]


def test_observes_flush_the_run():
    ops = [_predict(0), _predict(1), _observe(2), _predict(3), _predict(4)]
    wire = group_batches(ops, 8)
    paths = [path for path, _, _ in wire]
    assert paths == ["/predict_batch", "/observe", "/predict_batch"]
    # The observe sits between the two batches it split, order preserved.
    assert wire[0][1]["items"] == [ops[0][1], ops[1][1]]
    assert wire[2][1]["items"] == [ops[3][1], ops[4][1]]
    assert sum(n for _, _, n in wire) == len(ops)


def test_reloads_flush_the_run_too():
    # Any non-predict op is a fold boundary: a /reload mid-stream must
    # split the batch exactly like an /observe, or the swap would land
    # before requests that were generated ahead of it.
    reload_op = ("/reload", {"checkpoint": "/tmp/ckpts"})
    ops = [_predict(0), _predict(1), reload_op, _predict(2)]
    wire = group_batches(ops, 8)
    assert [path for path, _, _ in wire] == [
        "/predict_batch", "/reload", "/predict",
    ]
    assert wire[0][1]["items"] == [ops[0][1], ops[1][1]]
    assert wire[1][1] == reload_op[1]


def test_flush_at_exact_batch_boundary_emits_no_empty_batch():
    # A run that fills up exactly at `batch` flushes immediately; the
    # following observe must not emit a second, empty batch.
    ops = [_predict(0), _predict(1), _observe(2)]
    wire = group_batches(ops, 2)
    assert [(path, n) for path, _, n in wire] == [
        ("/predict_batch", 2), ("/observe", 1),
    ]


def test_result_items_and_rates():
    result = LoadTestResult(
        requests=10, errors=0, seconds=2.0, concurrency=4,
        p50_ms=1.0, p95_ms=1.0, p99_ms=1.0, items=320, batch=32,
    )
    assert result.items_per_sec == 160.0
    metrics = result.metrics("serving.fleet.batch")
    assert metrics["serving.fleet.batch.items"] == 320.0
    assert metrics["serving.fleet.batch.items_per_sec"] == 160.0
    # Default: one item per request.
    plain = LoadTestResult(requests=5, errors=0, seconds=1.0, concurrency=1,
                           p50_ms=1.0, p95_ms=1.0, p99_ms=1.0)
    assert plain.items == 5
