"""The sharded fleet: cross-process parity, supervision, aggregation.

The serving contract ("batched responses are bitwise-identical to
single-query ``Trainer.predict``; observations invalidate exactly the
staled entries") was proven in-process by the property tests.  These
tests re-assert it as a *cross-process* invariant: a 4-shard fleet
answering a randomized predict/observe interleaving must be bitwise
identical to one local :class:`PredictionService` holding the same city
and checkpoint, and the fleet-wide summed invalidation counts must equal
the single-process counts (each cached entry lives on exactly one
shard, so the partitioned caches sum to the whole).

Worker startup is real process spawning — the fleet fixtures are
module-scoped to pay it once.
"""

import copy
import json
import os
import shutil
import threading
import time

import pytest

from repro.city import CityDataset
from repro.exceptions import ConfigError
from repro.obs import MetricsRegistry
from repro.serving import (
    CheckpointWatcher,
    FleetConfig,
    FleetSupervisor,
    PredictionService,
    ServingConfig,
    aggregate_prometheus,
    build_router,
    generate_ops,
    shard_for,
)
from repro.serving.router import request_json, request_text

pytestmark = pytest.mark.serving


# ----------------------------------------------------------------------
# Pure routing / aggregation units (no processes)
# ----------------------------------------------------------------------


def test_shard_for_is_deterministic_and_spreads():
    first = [shard_for(a, t, 4) for a in range(6) for t in range(20, 200)]
    second = [shard_for(a, t, 4) for a in range(6) for t in range(20, 200)]
    assert first == second  # process-stable, unlike builtin hash()
    assert set(first) == {0, 1, 2, 3}  # every shard gets traffic
    # No shard starves or hogs: a BLAKE2b hash over ~1k keys should be
    # roughly balanced (generous 2x bound either way).
    for shard in range(4):
        share = first.count(shard) / len(first)
        assert 0.125 < share < 0.5


def test_shard_for_area_strategy_ignores_timeslot():
    for area in range(10):
        shards = {shard_for(area, t, 3, by="area") for t in range(20, 1400, 37)}
        assert len(shards) == 1


def test_shard_for_validation():
    with pytest.raises(ConfigError):
        shard_for(0, 0, 0)
    with pytest.raises(ConfigError):
        shard_for(0, 0, 2, by="nope")
    assert shard_for(3, 77, 1) == 0


def test_aggregate_prometheus_merges_by_kind():
    texts = [
        "# TYPE repro_x counter\nrepro_x 3\n"
        "# TYPE lat summary\n"
        'lat{quantile="0.5"} 0.2\nlat_sum 1.0\nlat_count 4\n'
        "# TYPE depth gauge\ndepth 2\n",
        "# TYPE repro_x counter\nrepro_x 4\n"
        "# TYPE lat summary\n"
        'lat{quantile="0.5"} 0.5\nlat_sum 2.0\nlat_count 6\n'
        "# TYPE depth gauge\ndepth 5\n",
    ]
    merged = aggregate_prometheus(texts)
    lines = merged.strip().splitlines()
    assert "# TYPE repro_x counter" in lines
    assert "repro_x 7.0" in lines  # counters sum
    assert 'lat{quantile="0.5"} 0.5' in lines  # quantiles take the max
    assert "lat_sum 3.0" in lines  # summary _sum sums
    assert "lat_count 10" in lines  # _count sums, stays integral
    assert "depth 7.0" in lines  # gauges sum
    # One TYPE header per metric, not one per source text.
    assert sum(1 for line in lines if line.startswith("# TYPE lat ")) == 1


# ----------------------------------------------------------------------
# Process fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def city_path(dataset, tmp_path_factory):
    """The shared tiny city, saved so worker subprocesses can load it."""
    path = tmp_path_factory.mktemp("fleet_city") / "city.npz"
    dataset.save(path)
    return str(path)


def _reference_service(city_path, checkpoint, scale):
    """A local single-process service on the same bytes the fleet loads."""
    return PredictionService.from_checkpoint(
        checkpoint,
        CityDataset.load(city_path),
        scale.features,
        serving_config=ServingConfig(max_batch=32, max_wait_ms=2.0),
        registry=MetricsRegistry(),
    )


@pytest.fixture(scope="module")
def fleet4(city_path, checkpoint, tmp_path_factory):
    """A 4-shard fleet plus router, shared by the parity tests."""
    fleet = FleetSupervisor(
        FleetConfig(
            city=city_path,
            checkpoint=str(checkpoint),
            scale="tiny",
            workers=4,
            shard_by="area-slot",
            run_dir=str(tmp_path_factory.mktemp("fleet4_run")),
        ),
        registry=MetricsRegistry(),
    )
    fleet.start()
    server = build_router(fleet)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    address = "127.0.0.1:%d" % server.server_address[1]
    yield fleet, address
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    fleet.shutdown()


def _observe_locally(service, body):
    area = body.get("area")
    return service.observe(
        str(body["kind"]),
        int(body["day"]),
        int(body["minute"]),
        area_id=int(area) if area is not None else None,
        **dict(body.get("values", {})),
    )


# ----------------------------------------------------------------------
# Cross-process parity (the tentpole invariant)
# ----------------------------------------------------------------------


def test_four_shard_fleet_is_bitwise_identical_to_one_process(
    fleet4, city_path, checkpoint, scale
):
    """Randomized predict/observe interleavings, replayed twice — once
    through the 4-shard fleet, once against a local service — must agree
    bitwise on every gap and exactly on every invalidation count, with
    state carried forward across rounds."""
    fleet, address = fleet4
    reference = _reference_service(city_path, str(checkpoint), scale)
    try:
        for round_seed in (101, 202):
            ops = generate_ops(
                scale, 60, observe_fraction=0.3, seed=round_seed
            )
            for path, body in ops:
                status, payload = request_json(address, "POST", path, body)
                assert status == 200, payload
                if path == "/predict":
                    local = reference.predict(
                        body["area"], body["day"], body["timeslot"]
                    )
                    # JSON floats round-trip doubles exactly: equality
                    # here is bitwise equality of the prediction.
                    assert payload["gap"] == local.gap, (body, payload)
                    assert payload["version"] == local.version
                else:
                    local = _observe_locally(reference, body)
                    assert payload["workers_reached"] == 4
                    # Each cached entry lives on exactly one shard, so
                    # the summed exact-set invalidations match the
                    # single-process count.  (profiles_dropped may
                    # legitimately exceed it: several replicas can hold
                    # the same (area, day) warm profile.)
                    assert payload["invalidated"] == local["invalidated"], body
    finally:
        reference.close()


def test_fleet_validation_errors_match_single_process(fleet4):
    _, address = fleet4
    status, payload = request_json(
        address, "POST", "/predict", {"area": 999, "day": 2, "timeslot": 60}
    )
    assert status == 400 and "error" in payload
    status, payload = request_json(
        address, "POST", "/observe", {"kind": "nope", "day": 0, "minute": 0}
    )
    assert status == 400 and "error" in payload
    # A rejected observe must not linger in the journal (it mutated
    # nothing anywhere, so replaying it would be wrong).
    status, stats = request_json(address, "GET", "/stats")
    journal = stats["fleet"]["journal_entries"]
    status, payload = request_json(
        address, "POST", "/observe", {"kind": "nope", "day": 0, "minute": 0}
    )
    assert status == 400
    status, stats = request_json(address, "GET", "/stats")
    assert stats["fleet"]["journal_entries"] == journal


def test_fleet_aggregates_stats_and_metrics(fleet4):
    _, address = fleet4
    status, stats = request_json(address, "GET", "/stats")
    assert status == 200
    assert stats["fleet"]["workers"] == 4
    assert len(stats["workers"]) == 4
    assert all(w["ready"] for w in stats["workers"])

    status, health = request_json(address, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"

    status, text, content_type = request_text(address, "/metrics")
    assert status == 200 and content_type.startswith("text/plain")
    # Worker counters merged into fleet totals alongside router counters.
    assert "# TYPE repro_serving_requests counter" in text
    assert "# TYPE repro_fleet_router_requests counter" in text
    requests_line = next(
        line for line in text.splitlines()
        if line.startswith("repro_serving_requests ")
    )
    assert float(requests_line.split()[1]) > 0


# ----------------------------------------------------------------------
# Supervision: SIGKILL a worker under load
# ----------------------------------------------------------------------


def test_killed_worker_respawns_and_no_request_fails(
    city_path, checkpoint, scale, tmp_path_factory
):
    """SIGKILL one of two workers mid-load: every in-flight and
    subsequent request completes via router retry, the supervisor
    respawns the worker, and journal replay restores observations made
    before *and while* it was dead."""
    fleet = FleetSupervisor(
        FleetConfig(
            city=city_path,
            checkpoint=str(checkpoint),
            scale="tiny",
            workers=2,
            shard_by="area-slot",
            run_dir=str(tmp_path_factory.mktemp("fleet2_run")),
            poll_interval=0.1,
        ),
        registry=MetricsRegistry(),
    )
    fleet.start()
    server = build_router(fleet)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    address = "127.0.0.1:%d" % server.server_address[1]
    reference = _reference_service(city_path, str(checkpoint), scale)
    failures = []
    mismatches = []

    pre_kill_observe = {
        "kind": "orders", "day": 4, "minute": 200, "area": 1,
        "values": {"valid": 17, "invalid": 3},
    }
    mid_kill_observe = {
        "kind": "traffic", "day": 4, "minute": 300, "area": 2,
        "values": {"level_counts": [9, 4, 2, 1]},
    }

    def client(seed):
        ops = generate_ops(scale, 25, observe_fraction=0.0, seed=seed)
        for _, body in ops:
            try:
                status, payload = request_json(
                    address, "POST", "/predict", body, timeout=60.0
                )
            except Exception as error:  # noqa: BLE001 — recorded, asserted
                failures.append((body, repr(error)))
                continue
            if status != 200:
                failures.append((body, payload))
            else:
                local = reference.predict(
                    body["area"], body["day"], body["timeslot"]
                )
                if payload["gap"] != local.gap:
                    mismatches.append((body, payload["gap"], local.gap))

    try:
        status, _ = request_json(address, "POST", "/observe", pre_kill_observe)
        assert status == 200
        _observe_locally(reference, pre_kill_observe)

        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in (11, 22, 33)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        victim = fleet.workers[0]
        victim.proc.kill()  # SIGKILL: no cleanup, no goodbye

        # An observation while the worker is dead: reaches the live
        # worker now and the dead one via journal replay after respawn.
        status, _ = request_json(address, "POST", "/observe", mid_kill_observe)
        assert status == 200
        _observe_locally(reference, mid_kill_observe)

        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "client hung through the kill"
        assert not failures, failures
        assert not mismatches, mismatches

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not (
            fleet.respawns >= 1 and victim.ready.is_set()
        ):
            time.sleep(0.1)
        assert fleet.respawns >= 1
        assert victim.ready.is_set()
        assert victim.generation == 2

        # The respawned replica converged: queries routed to shard 0
        # reflect both observations, bitwise.
        probed = 0
        for timeslot in range(210, 1430):
            if fleet.shard_for_query(1, timeslot) != 0:
                continue
            body = {"area": 1, "day": 4, "timeslot": timeslot}
            status, payload = request_json(address, "POST", "/predict", body)
            local = reference.predict(1, 4, timeslot)
            assert status == 200
            assert payload["gap"] == local.gap
            probed += 1
            if probed >= 3:
                break
        assert probed >= 3
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=10)
        fleet.shutdown()
        reference.close()


# ----------------------------------------------------------------------
# Checkpoint distribution
# ----------------------------------------------------------------------


def _install_bundle(source_json, directory, epoch):
    """Copy the bundle behind ``source_json`` into ``directory`` under a
    new ``ckpt-<epoch>`` stem (spill files renamed too), then flip the
    ``latest.json`` pointer — the same shape an atomic trainer save
    leaves behind."""
    directory = str(directory)
    os.makedirs(directory, exist_ok=True)
    source_dir = os.path.dirname(source_json)
    with open(source_json, encoding="utf-8") as handle:
        payload = json.load(handle)
    stem = f"ckpt-{epoch:05d}"
    shutil.copy(
        os.path.join(source_dir, payload["arrays_file"]),
        os.path.join(directory, f"{stem}.npz"),
    )
    payload = copy.deepcopy(payload)
    payload["epoch"] = epoch
    payload["arrays_file"] = f"{stem}.npz"
    for index, entry in enumerate(payload.get("best", [])):
        if "file" in entry:
            renamed = f"best-{epoch:05d}{index}.npz"
            shutil.copy(
                os.path.join(source_dir, entry["file"]),
                os.path.join(directory, renamed),
            )
            entry["file"] = renamed
    with open(os.path.join(directory, f"{stem}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle)
    with open(os.path.join(directory, "latest.json"), "w",
              encoding="utf-8") as handle:
        json.dump({"latest": stem}, handle)
    return os.path.join(directory, f"{stem}.json")


def test_checkpoint_watcher_hot_swaps_new_bundles(
    checkpoint, other_checkpoint, mutable_dataset, scale, tmp_path
):
    watch_dir = tmp_path / "watched"
    first = _install_bundle(str(checkpoint), watch_dir, epoch=10)
    service = PredictionService.from_checkpoint(
        first,
        mutable_dataset,
        scale.features,
        registry=MetricsRegistry(),
    )
    try:
        watcher = CheckpointWatcher(service, str(watch_dir),
                                    interval_seconds=0.05)
        old_version = service.version
        assert watcher.poll_once() is None  # nothing new yet
        baseline = service.predict(0, 2, 60).gap

        _install_bundle(str(other_checkpoint), watch_dir, epoch=11)
        swapped = watcher.poll_once()
        assert swapped is not None
        assert service.version == swapped != old_version

        # The swapped engine answers with the new weights, bitwise equal
        # to a service built directly on the other checkpoint.
        direct = PredictionService.from_checkpoint(
            str(other_checkpoint),
            mutable_dataset,  # same city
            scale.features,
            registry=MetricsRegistry(),
        )
        try:
            assert service.predict(0, 2, 60).gap == direct.predict(0, 2, 60).gap
            assert service.predict(0, 2, 60).gap != baseline
        finally:
            direct.close()

        assert watcher.poll_once() is None  # stable again
    finally:
        service.close()


def test_checkpoint_watcher_rejects_bad_interval(checkpoint, mutable_dataset, scale):
    service = PredictionService.from_checkpoint(
        str(checkpoint), mutable_dataset, scale.features,
        registry=MetricsRegistry(),
    )
    try:
        with pytest.raises(ConfigError):
            CheckpointWatcher(service, ".", interval_seconds=0)
    finally:
        service.close()
