"""HTTP endpoint round-trip against an in-process server on a free port."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.serving import PredictionService, ServingConfig, build_server

pytestmark = pytest.mark.serving


@pytest.fixture()
def served(checkpoint, mutable_dataset, scale):
    service = PredictionService.from_checkpoint(
        checkpoint,
        mutable_dataset,
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=1.0),
        registry=MetricsRegistry(),
        trace=Tracer(enabled=True),
    )
    server = build_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, service
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def test_predict_round_trip(served):
    base, service = served
    status, body = _post(base, "/predict", {"area": 0, "day": 2, "timeslot": 60})
    assert status == 200
    assert set(body) == {"gap", "version", "cached"}
    assert body["version"] == service.version
    assert body["cached"] is False

    status, again = _post(base, "/predict", {"area": 0, "day": 2, "timeslot": 60})
    assert status == 200
    assert again["cached"] is True
    assert again["gap"] == body["gap"]


def test_healthz_and_stats(served):
    base, service = served
    status, health = _get(base, "/healthz")
    assert status == 200
    assert health == {"status": "ok", "version": service.version}

    _post(base, "/predict", {"area": 1, "day": 3, "timeslot": 120})
    status, stats = _get(base, "/stats")
    assert status == 200
    assert stats["version"] == service.version
    assert stats["cache"]["misses"] >= 1


def test_observe_round_trip(served):
    base, _ = served
    _post(base, "/predict", {"area": 2, "day": 3, "timeslot": 110})
    status, outcome = _post(
        base,
        "/observe",
        {"kind": "traffic", "day": 3, "minute": 100, "area": 2,
         "values": {"level_counts": [5, 2, 1, 0]}},
    )
    assert status == 200
    assert outcome["invalidated"] == 1


def test_bad_requests_are_400s(served):
    base, _ = served
    for path, payload in [
        ("/predict", {"area": 999, "day": 2, "timeslot": 60}),
        ("/predict", {"area": 0}),
        ("/observe", {"kind": "nope", "day": 0, "minute": 0}),
        ("/predict", None),  # no JSON object
    ]:
        request = urllib.request.Request(
            base + path,
            json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())


def test_truncated_content_length_is_400_not_hang(served):
    """A client advertising more body than it sends must get a clean 400.

    The old single ``rfile.read(length)`` could also return *fewer* bytes
    and silently parse a prefix; the read loop either gets every
    advertised byte or fails loudly when the connection ends short."""
    base, _ = served
    port = int(base.rsplit(":", 1)[1])
    body = b'{"area": 0, '  # 12 bytes of a valid-looking prefix
    request = (
        b"POST /predict HTTP/1.1\r\n"
        b"Host: 127.0.0.1\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 100\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    ) + body
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(request)
        sock.shutdown(socket.SHUT_WR)  # connection ends 88 bytes short
        sock.settimeout(10)
        raw = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert b"400" in head.split(b"\r\n", 1)[0]
    error = json.loads(payload)["error"]
    assert "truncated" in error
    assert "12 of 100" in error


def test_unknown_path_is_404(served):
    base, _ = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(base + "/nope", timeout=10)
    assert excinfo.value.code == 404


def test_metrics_endpoint_serves_prometheus_text(served):
    base, _ = served
    _post(base, "/predict", {"area": 0, "day": 2, "timeslot": 90})
    with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode()
    assert "# TYPE repro_serving_requests counter" in text
    assert "# TYPE repro_serving_request_seconds summary" in text
    assert 'repro_serving_request_seconds{quantile="0.99"}' in text
    assert "repro_serving_request_seconds_count 1" in text


def test_trace_endpoint_returns_span_tree(served):
    base, service = served
    _post(base, "/predict", {"area": 1, "day": 2, "timeslot": 90})
    status, body = _get(base, "/trace")
    assert status == 200
    assert body["enabled"] is True
    names = {span["name"] for span in body["spans"]}
    assert {"http.handle", "serving.predict", "batcher.batch"} <= names
    handle = next(s for s in body["spans"] if s["name"] == "http.handle")
    predict = next(s for s in body["spans"] if s["name"] == "serving.predict")
    assert predict["parent_id"] == handle["span_id"]

    status, limited = _get(base, "/trace?limit=2")
    assert status == 200 and len(limited["spans"]) == 2

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(base + "/trace?limit=-1", timeout=10)
    assert excinfo.value.code == 400


def test_shutdown_replies_cleanly_and_drains_handlers(
    checkpoint, mutable_dataset, scale
):
    """The /shutdown acknowledgement must be on the wire before the server
    exits: the reply is sent, serve_forever returns, and server_close joins
    the outstanding handler thread instead of racing it."""
    service = PredictionService.from_checkpoint(
        checkpoint,
        mutable_dataset,
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=1.0),
    )
    server = build_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=lambda: (server.serve_forever(), server.server_close()),
        daemon=True,
    )
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        status, body = _post(base, "/shutdown", {})
        assert status == 200
        assert body == {"status": "shutting down"}
        with server._handler_lock:
            handlers = list(server._handler_threads)
        thread.join(timeout=10)
        assert not thread.is_alive()
        # server_close drained every tracked handler thread (the snapshot
        # may already be empty if close won the race — also a clean drain).
        for handler in handlers:
            assert not handler.is_alive()
        assert not server._handler_threads
    finally:
        service.close()
