"""HTTP endpoint round-trip against an in-process server on a free port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import PredictionService, ServingConfig, build_server

pytestmark = pytest.mark.serving


@pytest.fixture()
def served(checkpoint, mutable_dataset, scale):
    service = PredictionService.from_checkpoint(
        checkpoint,
        mutable_dataset,
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=1.0),
    )
    server = build_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, service
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def test_predict_round_trip(served):
    base, service = served
    status, body = _post(base, "/predict", {"area": 0, "day": 2, "timeslot": 60})
    assert status == 200
    assert set(body) == {"gap", "version", "cached"}
    assert body["version"] == service.version
    assert body["cached"] is False

    status, again = _post(base, "/predict", {"area": 0, "day": 2, "timeslot": 60})
    assert status == 200
    assert again["cached"] is True
    assert again["gap"] == body["gap"]


def test_healthz_and_stats(served):
    base, service = served
    status, health = _get(base, "/healthz")
    assert status == 200
    assert health == {"status": "ok", "version": service.version}

    _post(base, "/predict", {"area": 1, "day": 3, "timeslot": 120})
    status, stats = _get(base, "/stats")
    assert status == 200
    assert stats["version"] == service.version
    assert stats["cache"]["misses"] >= 1


def test_observe_round_trip(served):
    base, _ = served
    _post(base, "/predict", {"area": 2, "day": 3, "timeslot": 110})
    status, outcome = _post(
        base,
        "/observe",
        {"kind": "traffic", "day": 3, "minute": 100, "area": 2,
         "values": {"level_counts": [5, 2, 1, 0]}},
    )
    assert status == 200
    assert outcome["invalidated"] == 1


def test_bad_requests_are_400s(served):
    base, _ = served
    for path, payload in [
        ("/predict", {"area": 999, "day": 2, "timeslot": 60}),
        ("/predict", {"area": 0}),
        ("/observe", {"kind": "nope", "day": 0, "minute": 0}),
        ("/predict", None),  # no JSON object
    ]:
        request = urllib.request.Request(
            base + path,
            json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())


def test_unknown_path_is_404(served):
    base, _ = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(base + "/nope", timeout=10)
    assert excinfo.value.code == 404
