"""Property test: batched serving is bitwise-identical to single queries.

For random query mixes, thread interleavings and batching/TTL settings,
every gap the :class:`PredictionService` returns must equal — bit for bit
— what a one-query-at-a-time ``Trainer.predict`` produces from the same
checkpoint.  This is the serving layer's core contract: micro-batching,
deduplication, caching and threading are invisible in the numbers.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GapPredictor, GapQuery, Trainer
from repro.serving import PredictionService, ServingConfig

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def reference(checkpoint, dataset, scale):
    """Memoized one-at-a-time gaps from an independent trainer instance."""
    trainer = Trainer.from_checkpoint(checkpoint)
    scalers = {
        name: tuple(pair)
        for name, pair in trainer.serving_meta["feature_scalers"].items()
    }
    predictor = GapPredictor(trainer, dataset, scale.features, scalers)
    memo = {}

    def lookup(query):
        if query not in memo:
            example_set = predictor._featurize([GapQuery(*query)])
            memo[query] = float(predictor._trainer.predict(example_set)[0])
        return memo[query]

    return lookup


def _valid_queries(dataset, scale):
    L = scale.features.window_minutes
    hi = 1440 - scale.features.gap_minutes
    return st.tuples(
        st.integers(0, dataset.n_areas - 1),
        st.integers(0, dataset.n_days - 1),
        st.integers(L, hi),
    )


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_batched_responses_match_single_queries(
    data, checkpoint, dataset, scale, reference
):
    queries = data.draw(
        st.lists(_valid_queries(dataset, scale), min_size=1, max_size=24),
        label="queries",
    )
    max_batch = data.draw(st.integers(1, 8), label="max_batch")
    max_wait_ms = data.draw(
        st.sampled_from([0.0, 1.0, 5.0]), label="max_wait_ms"
    )
    ttl = data.draw(st.sampled_from([None, 60.0]), label="ttl")
    n_threads = data.draw(st.integers(1, 4), label="n_threads")

    service = PredictionService.from_checkpoint(
        checkpoint,
        dataset,
        scale.features,
        serving_config=ServingConfig(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            cache_ttl_seconds=ttl,
            cache_size=64,
        ),
    )
    try:
        results = {}
        errors = []

        def drive(thread_id):
            try:
                for index, query in enumerate(queries):
                    if index % n_threads == thread_id:
                        results[index] = service.predict(*query)
            except Exception as error:  # pragma: no cover — surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        for index, query in enumerate(queries):
            expected = reference(query)
            got = results[index].gap
            assert got == expected, (
                f"query {query} served {got!r} but single-query "
                f"reference is {expected!r} (batch={max_batch}, "
                f"wait={max_wait_ms}, threads={n_threads})"
            )
    finally:
        service.close()
