"""Span-tree tests for the serving path, across the batcher thread.

Every traced ``predict`` must resolve into one complete tree — the
request span owning its cache lookup and queue wait, the micro-batch
span owning featurize/forward/cache-fill — with the parent links intact
across the MicroBatcher's worker-thread boundary.  And tracing must be
purely observational: enabling it cannot move a single bit of any served
gap (the PR-4 parity contract).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, Tracer
from repro.serving import MicroBatcher, PredictionService, ServingConfig

pytestmark = pytest.mark.serving


def _service(checkpoint, dataset, scale, trace, **config):
    return PredictionService.from_checkpoint(
        checkpoint,
        dataset,
        scale.features,
        serving_config=ServingConfig(
            max_batch=config.pop("max_batch", 4),
            max_wait_ms=config.pop("max_wait_ms", 1.0),
            **config,
        ),
        trace=trace,
    )


class TestSpanTree:
    def test_uncached_predict_resolves_to_complete_tree(
        self, checkpoint, dataset, scale
    ):
        tracer = Tracer(enabled=True)
        service = _service(checkpoint, dataset, scale, tracer)
        try:
            service.predict(0, 2, 60)
        finally:
            service.close()
        spans = {span.name: span for span in tracer.spans()}
        expected = {
            "serving.predict", "cache.lookup", "batcher.queue_wait",
            "batcher.batch", "batch.featurize", "batch.forward", "cache.fill",
        }
        assert expected <= set(spans)

        root = spans["serving.predict"]
        assert root.parent_id is None
        assert root.attrs["cached"] is False
        # Everything belongs to the one request's trace...
        for name in expected:
            assert spans[name].trace_id == root.trace_id, name
        # ...with the documented parentage: request-side children under
        # the request span, batch-side children under the batch span.
        assert spans["cache.lookup"].parent_id == root.span_id
        assert spans["batcher.queue_wait"].parent_id == root.span_id
        assert spans["batcher.batch"].parent_id == root.span_id
        batch = spans["batcher.batch"]
        assert batch.attrs["batch_size"] == 1
        for name in ("batch.featurize", "batch.forward", "cache.fill"):
            assert spans[name].parent_id == batch.span_id, name
        # The batch side really did run on a different thread.
        assert batch.thread != root.thread

    def test_cached_predict_stays_on_the_request_thread(
        self, checkpoint, dataset, scale
    ):
        tracer = Tracer(enabled=True)
        service = _service(checkpoint, dataset, scale, tracer)
        try:
            service.predict(0, 2, 60)
            tracer.clear()
            result = service.predict(0, 2, 60)
        finally:
            service.close()
        assert result.cached is True
        names = [span.name for span in tracer.spans()]
        assert names == ["cache.lookup", "serving.predict"]
        root = next(s for s in tracer.spans() if s.name == "serving.predict")
        assert root.attrs["cached"] is True

    def test_each_request_gets_its_own_queue_wait(
        self, checkpoint, dataset, scale
    ):
        tracer = Tracer(enabled=True)
        service = _service(checkpoint, dataset, scale, tracer, max_wait_ms=5.0)
        try:
            service.predict_many([(0, 2, 60), (1, 2, 60), (2, 2, 60)])
        finally:
            service.close()
        spans = tracer.spans()
        waits = [s for s in spans if s.name == "batcher.queue_wait"]
        assert len(waits) == 3
        root = next(s for s in spans if s.name == "serving.predict_many")
        assert all(w.trace_id == root.trace_id for w in waits)
        batches = [s for s in spans if s.name == "batcher.batch"]
        assert sum(s.attrs["batch_size"] for s in batches) == 3

    def test_disabled_tracer_records_nothing(self, checkpoint, dataset, scale):
        service = _service(checkpoint, dataset, scale, trace=False)
        try:
            service.predict(0, 2, 60)
            service.predict(0, 2, 60)
        finally:
            service.close()
        assert service.tracer.enabled is False
        assert len(service.tracer) == 0


class TestBatcherMetrics:
    def test_queue_depth_gauge_is_sampled(self):
        registry = MetricsRegistry()
        with MicroBatcher(lambda items: items, max_batch=4, max_wait_ms=1.0,
                          registry=registry) as batcher:
            batcher.submit("x").result(timeout=5)
        assert "repro.serving.batcher.queue_depth" in registry.gauges

    def test_untraced_submit_costs_no_span_state(self):
        tracer = Tracer(enabled=False)
        with MicroBatcher(lambda items: items, max_batch=4, max_wait_ms=1.0,
                          registry=MetricsRegistry(), tracer=tracer) as batcher:
            assert batcher.submit("x").result(timeout=5) == "x"
        assert len(tracer) == 0


class TestServiceMetrics:
    def test_cache_hit_miss_counters(self, checkpoint, dataset, scale):
        service = _service(checkpoint, dataset, scale, trace=False)
        try:
            registry = service.registry
            before_miss = registry.counters.get("repro.serving.cache.misses", 0)
            before_hit = registry.counters.get("repro.serving.cache.hits", 0)
            service.predict(0, 2, 70)
            service.predict(0, 2, 70)
        finally:
            service.close()
        assert registry.counters["repro.serving.cache.misses"] == before_miss + 1
        assert registry.counters["repro.serving.cache.hits"] == before_hit + 1


class TestBitwiseParity:
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_tracing_never_moves_a_bit(
        self, data, checkpoint, dataset, scale
    ):
        """Identical queries through a traced and an untraced service must
        produce bitwise-equal gaps — tracing observes, never perturbs."""
        L = scale.features.window_minutes
        hi = 1440 - scale.features.gap_minutes
        queries = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, dataset.n_areas - 1),
                    st.integers(0, dataset.n_days - 1),
                    st.integers(L, hi),
                ),
                min_size=1,
                max_size=8,
            ),
            label="queries",
        )
        tracer = Tracer(enabled=True)
        traced = _service(checkpoint, dataset, scale, tracer)
        plain = _service(checkpoint, dataset, scale, trace=False)
        try:
            traced_gaps = [traced.predict(*q).gap for q in queries]
            plain_gaps = [plain.predict(*q).gap for q in queries]
        finally:
            traced.close()
            plain.close()
        assert traced_gaps == plain_gaps
        assert len(tracer) > 0  # the traced run really recorded spans
