"""Router-level batching: coalescing, scatter-gather, kill-resilience.

Cross-process twins of the in-process ``predict_batch`` properties: a
4-shard fleet answering ``/predict_batch`` through the router must be
bitwise-identical to a local single-process service answering the same
items sequentially; concurrent single ``/predict`` requests coalesced
into upstream batch calls must be indistinguishable from proxied
singles; and a SIGKILLed worker mid-batch-load costs zero failed items.
"""

import threading
import time

import pytest

from repro.city import CityDataset
from repro.obs import MetricsRegistry
from repro.serving import (
    FleetConfig,
    FleetSupervisor,
    PredictionService,
    ServingConfig,
    build_router,
    close_pools,
)
from repro.serving.router import request_json

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def city_path(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("router_batch_city") / "city.npz"
    dataset.save(path)
    return str(path)


def _reference_service(city_path, checkpoint, scale):
    return PredictionService.from_checkpoint(
        checkpoint,
        CityDataset.load(city_path),
        scale.features,
        serving_config=ServingConfig(max_batch=32, max_wait_ms=2.0),
        registry=MetricsRegistry(),
    )


@pytest.fixture(scope="module")
def fleet4(city_path, checkpoint, tmp_path_factory):
    fleet = FleetSupervisor(
        FleetConfig(
            city=city_path,
            checkpoint=str(checkpoint),
            scale="tiny",
            workers=4,
            shard_by="area-slot",
            run_dir=str(tmp_path_factory.mktemp("fleet4b_run")),
        ),
        registry=MetricsRegistry(),
    )
    fleet.start()
    server = build_router(fleet)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    address = "127.0.0.1:%d" % server.server_address[1]
    yield fleet, address, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    fleet.shutdown()


def _some_items(scale, n, offset=0):
    L = scale.features.window_minutes
    hi = 1440 - scale.features.gap_minutes
    return [
        {
            "area": i % 4,
            "day": 1 + i % 4,
            "timeslot": L + (offset + 17 * i) % (hi - L),
        }
        for i in range(n)
    ]


def test_router_predict_batch_is_bitwise_identical_to_one_process(
    fleet4, city_path, checkpoint, scale
):
    fleet, address, _ = fleet4
    reference = _reference_service(city_path, str(checkpoint), scale)
    try:
        items = _some_items(scale, 24)
        status, payload = request_json(
            address, "POST", "/predict_batch", {"items": items}
        )
        assert status == 200
        assert payload["count"] == len(items)
        # Items hit all four shards (the scatter is real).
        shards = {
            fleet.shard_for_query(item["area"], item["timeslot"])
            for item in items
        }
        assert len(shards) == 4
        for item, result in zip(items, payload["results"]):
            local = reference.predict(
                item["area"], item["day"], item["timeslot"]
            )
            assert result["gap"] == local.gap, item
            assert result["version"] == local.version
    finally:
        reference.close()


def test_router_batch_rejections_are_whole_batch(fleet4):
    _, address, _ = fleet4
    items = [{"area": 0, "day": 1, "timeslot": 700},
             {"area": 99999, "day": 1, "timeslot": 700}]
    status, payload = request_json(
        address, "POST", "/predict_batch", {"items": items}
    )
    assert status == 400 and "error" in payload
    status, payload = request_json(
        address, "POST", "/predict_batch", {"items": []}
    )
    assert status == 400


def test_concurrent_singles_coalesce_into_upstream_batches(
    fleet4, city_path, checkpoint, scale
):
    """Bursts of concurrent ``/predict`` requests must ride shared
    upstream ``/predict_batch`` calls (the coalesced counter moves) and
    still answer every request bitwise-correctly."""
    fleet, address, server = fleet4
    reference = _reference_service(city_path, str(checkpoint), scale)
    coalescer = server.router_coalescer
    before = fleet.registry.counters.get(
        "repro.fleet.router.coalesced_items", 0
    )
    try:
        # Submit a burst directly through the coalescer (as the router's
        # handler threads do): submission is microseconds, one upstream
        # HTTP call is milliseconds, so batches must form.
        items = _some_items(scale, 40, offset=200)
        futures = [
            coalescer.submit(dict(item)) for item in items
        ]
        for item, future in zip(items, futures):
            status, payload = future.result(timeout=60)
            assert status == 200, payload
            local = reference.predict(
                item["area"], item["day"], item["timeslot"]
            )
            assert payload["gap"] == local.gap, item
        after = fleet.registry.counters.get(
            "repro.fleet.router.coalesced_items", 0
        )
        assert after > before, "no upstream batch ever formed"
    finally:
        reference.close()


def test_killed_worker_mid_batch_costs_zero_items(
    city_path, checkpoint, scale, tmp_path_factory
):
    """SIGKILL one of two workers while batch requests are in flight:
    the coalescer retries whole upstream batches against the respawned
    shard, so every item of every batch completes, bitwise-correct."""
    fleet = FleetSupervisor(
        FleetConfig(
            city=city_path,
            checkpoint=str(checkpoint),
            scale="tiny",
            workers=2,
            shard_by="area-slot",
            run_dir=str(tmp_path_factory.mktemp("fleet2b_run")),
            poll_interval=0.1,
        ),
        registry=MetricsRegistry(),
    )
    fleet.start()
    server = build_router(fleet)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    address = "127.0.0.1:%d" % server.server_address[1]
    reference = _reference_service(city_path, str(checkpoint), scale)
    failures = []
    mismatches = []

    def client(seed):
        for round_index in range(6):
            items = _some_items(scale, 16, offset=seed + 37 * round_index)
            try:
                status, payload = request_json(
                    address, "POST", "/predict_batch", {"items": items},
                    timeout=120.0,
                )
            except Exception as error:  # noqa: BLE001 — recorded, asserted
                failures.append((seed, round_index, repr(error)))
                continue
            if status != 200 or len(payload.get("results", [])) != len(items):
                failures.append((seed, round_index, payload))
                continue
            for item, result in zip(items, payload["results"]):
                local = reference.predict(
                    item["area"], item["day"], item["timeslot"]
                )
                if result["gap"] != local.gap:
                    mismatches.append((item, result["gap"], local.gap))

    try:
        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in (5, 105, 205)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.25)
        victim = fleet.workers[0]
        victim.proc.kill()  # SIGKILL mid-batch: no cleanup, no goodbye
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "client hung through the kill"
        assert not failures, failures
        assert not mismatches, mismatches
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not victim.ready.is_set():
            time.sleep(0.1)
        assert fleet.respawns >= 1
        assert victim.ready.is_set()
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=10)
        fleet.shutdown()
        reference.close()


def test_close_pools_releases_every_threads_connections(fleet4):
    """The keep-alive leak fix: connections opened by OTHER threads are
    closable at shutdown, and closed pools transparently reconnect."""
    _, address, _ = fleet4

    def hit():
        status, _ = request_json(address, "GET", "/healthz")
        assert status == 200

    worker = threading.Thread(target=hit)
    worker.start()
    worker.join(timeout=30)
    hit()  # this thread's pool too
    closed = close_pools()
    assert closed >= 2  # at least this thread's + the worker thread's
    assert close_pools() == 0  # idempotent: everything already released
    hit()  # stale-pool reconnect path still works after the sweep
