"""The ``/predict_batch`` endpoint over both server front-ends.

Parametrized over ``io_loop`` so the threaded stdlib server and the
selector event loop are proven to serve the same application with
byte-identical response bodies — including the batch endpoint's
bitwise-equality contract against per-item ``/predict`` calls.
"""

import copy
import json
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.serving import PredictionService, ServingConfig, build_server
from repro.serving.router import request_json

pytestmark = pytest.mark.serving


@pytest.fixture(params=["threaded", "selector"])
def endpoint(request, checkpoint, dataset, scale):
    service = PredictionService.from_checkpoint(
        str(checkpoint),
        copy.deepcopy(dataset),
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=0.0,
                                     eager_flush=True),
        registry=MetricsRegistry(),
    )
    server = build_server(service, io_loop=request.param)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    address = "127.0.0.1:%d" % server.server_address[1]
    yield address, service
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.close()


def _items(scale, n, offset=0):
    L = scale.features.window_minutes
    return [
        {"area": i % 2, "day": 1 + i % 3, "timeslot": L + 10 * i + offset}
        for i in range(n)
    ]


def test_predict_batch_matches_per_item_predicts(endpoint, scale):
    address, _ = endpoint
    items = _items(scale, 6)
    status, batch = request_json(
        address, "POST", "/predict_batch", {"items": items}
    )
    assert status == 200
    assert batch["count"] == 6 and len(batch["results"]) == 6
    for item, result in zip(items, batch["results"]):
        assert result["cached"] is False  # all cold
        status, single = request_json(address, "POST", "/predict", item)
        assert status == 200
        # JSON round-trips doubles exactly: == here is bitwise equality.
        assert single["gap"] == result["gap"]
        assert single["version"] == result["version"]
        assert single["cached"] is True  # the batch filled the cache


def test_predict_batch_duplicate_items_report_cached(endpoint, scale):
    address, _ = endpoint
    item = _items(scale, 1, offset=640)[0]
    status, batch = request_json(
        address, "POST", "/predict_batch", {"items": [item, item]}
    )
    assert status == 200
    first, second = batch["results"]
    assert first["cached"] is False and second["cached"] is True
    assert first["gap"] == second["gap"]


@pytest.mark.parametrize("body,fragment", [
    ({}, "items"),
    ({"items": []}, "empty"),
    ({"items": "nope"}, "items"),
    ({"items": [{"area": 0}]}, "day"),
    ({"items": [[1, 2, 3]]}, "object"),
    ({"items": [{"area": 99999, "day": 0, "timeslot": 700}]}, "area"),
])
def test_predict_batch_rejects_bad_payloads(endpoint, body, fragment):
    address, _ = endpoint
    status, payload = request_json(address, "POST", "/predict_batch", body)
    assert status == 400
    assert fragment in payload["error"]


def test_predict_batch_size_limit(endpoint, scale):
    address, _ = endpoint
    from repro.serving.app import MAX_BATCH_ITEMS

    items = [{"area": 0, "day": 1, "timeslot": 700}] * (MAX_BATCH_ITEMS + 1)
    status, payload = request_json(
        address, "POST", "/predict_batch", {"items": items}
    )
    assert status == 400 and "limit" in payload["error"]


def test_front_ends_serve_byte_identical_bodies(checkpoint, dataset, scale):
    """The same service behind both io_loops answers every route with
    the exact same bytes (headers differ — the stdlib server stamps
    Date/Server — but the payload is the application's alone)."""
    items = _items(scale, 4)
    bodies = {}
    for io_loop in ("threaded", "selector"):
        service = PredictionService.from_checkpoint(
            str(checkpoint),
            copy.deepcopy(dataset),
            scale.features,
            serving_config=ServingConfig(max_batch=8, max_wait_ms=0.0,
                                         eager_flush=True),
            registry=MetricsRegistry(),
        )
        server = build_server(service, io_loop=io_loop)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        address = "127.0.0.1:%d" % server.server_address[1]
        try:
            collected = []
            status, payload = request_json(
                address, "POST", "/predict_batch", {"items": items}
            )
            assert status == 200
            collected.append(payload)
            status, payload = request_json(
                address, "POST", "/predict", items[0]
            )
            assert status == 200
            collected.append(payload)
            status, payload = request_json(address, "GET", "/healthz")
            assert status == 200
            collected.append(payload)
            status, payload = request_json(
                address, "POST", "/predict_batch", {"items": "bad"}
            )
            assert status == 400
            collected.append(payload)
            bodies[io_loop] = json.dumps(collected, sort_keys=True)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()
    assert bodies["threaded"] == bodies["selector"]
