"""Serving with the execution tape keeps the bitwise determinism contract.

The service's historical guarantee: a gap served alone equals the same gap
served inside any micro-batch, bit for bit (``batch_invariant()``).  The
taped path replaces module dispatch entirely, so these tests pin that a
tape-enabled service returns exactly the bits a tape-disabled one does —
across batch sizes, threads, and the small-block tapes short batches use.
"""

import threading

import numpy as np

from repro.serving import PredictionService, ServingConfig


def _make_service(checkpoint, dataset, scale, *, use_tape, max_batch=8):
    return PredictionService.from_checkpoint(
        checkpoint,
        dataset,
        scale.features,
        serving_config=ServingConfig(
            max_batch=max_batch,
            max_wait_ms=1.0,
            cache_size=1,  # effectively uncached: every query recomputes
            use_tape=use_tape,
        ),
    )


def _queries(dataset, scale, n=40):
    L = scale.features.window_minutes
    hi = 1440 - scale.features.gap_minutes
    out = []
    for i in range(n):
        out.append(
            (
                i % dataset.n_areas,
                (3 * i) % dataset.n_days,
                L + (37 * i) % (hi - L),
            )
        )
    return out


def test_taped_service_matches_module_service(checkpoint, dataset, scale):
    queries = _queries(dataset, scale)
    taped = _make_service(checkpoint, dataset, scale, use_tape=True)
    plain = _make_service(checkpoint, dataset, scale, use_tape=False)
    try:
        assert taped._engine.trainer.use_tape is True
        assert plain._engine.trainer.use_tape is False
        for query in queries:
            got = taped.predict(*query).gap
            want = plain.predict(*query).gap
            assert got == want, query
    finally:
        taped.close()
        plain.close()


def test_taped_service_batch_invariant(checkpoint, dataset, scale):
    """Single-query bits equal concurrently-batched bits with the tape on."""
    queries = _queries(dataset, scale)
    service = _make_service(checkpoint, dataset, scale, use_tape=True)
    try:
        singles = {q: service.predict(*q).gap for q in queries}

        results = {}
        errors = []

        def drive(thread_id, n_threads=4):
            try:
                for index, query in enumerate(queries):
                    if index % n_threads == thread_id:
                        results[query] = service.predict(*query).gap
            except Exception as error:  # pragma: no cover — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        for query in queries:
            assert results[query] == singles[query], query
    finally:
        service.close()


def test_vectorized_featurize_matches_per_row(checkpoint, dataset, scale):
    """The grouped featurizer and the historical per-row loop agree bitwise,
    in both field modes (builder-parity "all" and serving's "model")."""
    queries = _queries(dataset, scale, n=12)
    service = _make_service(checkpoint, dataset, scale, use_tape=False)
    try:
        predictor = service._engine.predictor
        from repro.core import GapQuery

        gap_queries = [GapQuery(*q) for q in queries]
        for fields in ("model", "all"):
            predictor.feature_fields = fields
            predictor.vectorized_featurize = True
            fast = predictor._featurize(gap_queries)
            predictor.vectorized_featurize = False
            predictor.feature_fields = "all"
            slow = predictor._featurize(gap_queries)
            fast_pred = service._engine.trainer.predict(fast)
            slow_pred = service._engine.trainer.predict(slow)
            assert np.array_equal(fast_pred, slow_pred), fields
    finally:
        service.close()
