"""The selector event-loop HTTP server: framing, pipelining, hardening.

These tests drive :class:`SelectorHTTPServer` with a tiny scripted app
over raw sockets — no service, no fixtures — so they pin down the wire
behavior itself: persistent keep-alive connections, pipelined requests
answered strictly in order, the short-read body hardening (a partial
``Content-Length`` body is NEVER dispatched), oversized/malformed
framing rejected with a loud 400, and the shutdown reply flushed before
the loop dies.
"""

import json
import socket
import threading
import time

import pytest

from repro.exceptions import ConfigError
from repro.serving import SelectorHTTPServer
from repro.serving.app import Response, json_response

pytestmark = pytest.mark.serving


class ScriptedApp:
    """Echo app recording every dispatched request."""

    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def handle(self, method, target, body):
        with self.lock:
            self.calls.append((method, target, bytes(body)))
        if target == "/shutdown":
            return json_response(200, {"status": "bye"}, shutdown=True)
        if target == "/boom":
            raise RuntimeError("scripted explosion")
        if target == "/slow":
            time.sleep(0.2)
        return json_response(
            200, {"method": method, "target": target, "len": len(body)}
        )


@pytest.fixture()
def server():
    app = ScriptedApp()
    srv = SelectorHTTPServer(app, host="127.0.0.1", port=0, max_workers=4)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv, app
    srv.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
    srv.server_close()


def _connect(srv) -> socket.socket:
    sock = socket.create_connection(srv.server_address, timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _request_bytes(target, body=b"", method="POST", extra="") -> bytes:
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        "Host: test\r\n"
        f"Content-Length: {len(body)}\r\n{extra}\r\n"
    )
    return head.encode() + body


def _read_response(fh):
    status_line = fh.readline()
    if not status_line:
        return None, None, {}
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = fh.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.partition(b":")
        headers[name.strip().lower().decode()] = value.strip().decode()
    length = int(headers.get("content-length", 0))
    body = fh.read(length) if length else b""
    return status, body, headers


def test_keep_alive_serves_many_requests_on_one_connection(server):
    srv, app = server
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        for i in range(5):
            payload = json.dumps({"i": i}).encode()
            sock.sendall(_request_bytes(f"/echo/{i}", payload))
            status, body, _ = _read_response(fh)
            assert status == 200
            parsed = json.loads(body)
            assert parsed["target"] == f"/echo/{i}"
            assert parsed["len"] == len(payload)
    finally:
        sock.close()
    assert len(app.calls) == 5


def test_pipelined_requests_answered_in_order(server):
    srv, app = server
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        # /slow first: replies must still come back in request order
        # even though later requests finish computing earlier.
        blob = _request_bytes("/slow") + b"".join(
            _request_bytes(f"/fast/{i}") for i in range(4)
        )
        sock.sendall(blob)
        targets = []
        for _ in range(5):
            status, body, _ = _read_response(fh)
            assert status == 200
            targets.append(json.loads(body)["target"])
        assert targets == ["/slow"] + [f"/fast/{i}" for i in range(4)]
    finally:
        sock.close()


def test_truncated_body_is_never_dispatched(server):
    srv, app = server
    sock = _connect(srv)
    try:
        head = b"POST /p HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n"
        sock.sendall(head + b"only twelve!")  # 12 of 100 bytes
        sock.shutdown(socket.SHUT_WR)  # client gives up mid-body
        # Server must close without ever handing the prefix to the app.
        fh = sock.makefile("rb")
        assert fh.read() == b""
    finally:
        sock.close()
    assert app.calls == []  # the short-read never reached the app


def test_oversized_body_rejected_with_400(server):
    srv, app = server
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        sock.sendall(
            b"POST /p HTTP/1.1\r\nHost: t\r\nContent-Length: 9999999999\r\n\r\n"
        )
        status, body, _ = _read_response(fh)
        assert status == 400
        assert b"larger than" in body
        assert fh.read() == b""  # framing poisoned: connection closed
    finally:
        sock.close()
    assert app.calls == []


@pytest.mark.parametrize("blob", [
    b"GARBAGE\r\n\r\n",
    b"POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    b"POST /p HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
])
def test_malformed_framing_rejected_with_400(server, blob):
    srv, app = server
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        sock.sendall(blob)
        status, body, _ = _read_response(fh)
        assert status == 400 and b"error" in body
    finally:
        sock.close()
    assert app.calls == []


def test_app_exception_becomes_500_and_connection_survives(server):
    srv, app = server
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        sock.sendall(_request_bytes("/boom"))
        status, body, _ = _read_response(fh)
        assert status == 500
        assert b"scripted explosion" in body
        # The reply slot was not lost: the next request still answers.
        sock.sendall(_request_bytes("/after"))
        status, body, _ = _read_response(fh)
        assert status == 200 and json.loads(body)["target"] == "/after"
    finally:
        sock.close()


def test_connection_close_header_is_honored(server):
    srv, app = server
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        sock.sendall(_request_bytes("/bye", extra="Connection: close\r\n"))
        status, _, headers = _read_response(fh)
        assert status == 200
        assert headers.get("connection") == "close"
        assert fh.read() == b""  # server closed after the reply
    finally:
        sock.close()


def test_shutdown_reply_is_flushed_before_loop_exits():
    app = ScriptedApp()
    srv = SelectorHTTPServer(app, host="127.0.0.1", port=0)
    stopped = []
    action_done = threading.Event()

    def action():
        stopped.append(True)
        srv.shutdown()
        action_done.set()

    srv.shutdown_action = action
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    sock = _connect(srv)
    fh = sock.makefile("rb")
    try:
        sock.sendall(_request_bytes("/shutdown"))
        status, body, _ = _read_response(fh)
        # The acknowledgement arrived — the action must not race it away.
        assert status == 200 and json.loads(body)["status"] == "bye"
        assert action_done.wait(timeout=10)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert stopped == [True]
    finally:
        sock.close()
        srv.server_close()


def test_concurrent_connections_share_the_loop(server):
    srv, app = server
    results = []
    lock = threading.Lock()

    def client(i):
        sock = _connect(srv)
        fh = sock.makefile("rb")
        try:
            for j in range(3):
                sock.sendall(_request_bytes(f"/c{i}/{j}"))
                status, body, _ = _read_response(fh)
                with lock:
                    results.append((status, json.loads(body)["target"]))
        finally:
            sock.close()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive()
    assert len(results) == 24
    assert all(status == 200 for status, _ in results)


def test_rejects_nonpositive_workers():
    with pytest.raises(ConfigError):
        SelectorHTTPServer(ScriptedApp(), max_workers=0)
