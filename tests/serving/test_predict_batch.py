"""Property tests: ``predict_batch`` ≡ N sequential ``predict`` calls.

The batched transport plane's core contract: for ANY item list — any
size, any ordering, duplicates, any cache warm/cold mix, observations
invalidating entries between calls — ``predict_batch(items)`` must
return exactly what issuing the items as sequential ``predict`` calls
would have returned, bit for bit, including the ``cached`` flags.  Two
services on private copies of the same city replay a random interleaved
script, one through each path.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError
from repro.obs import MetricsRegistry
from repro.serving import PredictionService, ServingConfig

pytestmark = pytest.mark.serving


def _make_service(checkpoint, dataset, scale, max_batch=8):
    return PredictionService.from_checkpoint(
        str(checkpoint),
        dataset,
        scale.features,
        serving_config=ServingConfig(max_batch=max_batch, max_wait_ms=0.0,
                                     eager_flush=True, cache_size=256),
        registry=MetricsRegistry(),
    )


def _query_pool(dataset, scale):
    L = scale.features.window_minutes
    hi = 1440 - scale.features.gap_minutes
    return st.tuples(
        st.integers(0, dataset.n_areas - 1),
        st.integers(0, dataset.n_days - 1),
        st.integers(L, hi),
    )


def _observation(dataset):
    """A random valid observation (the three kinds, in-domain values)."""
    return st.one_of(
        st.fixed_dictionaries({
            "kind": st.just("weather"),
            "day": st.integers(0, dataset.n_days - 1),
            "minute": st.integers(0, 1439),
            "values": st.fixed_dictionaries({
                "weather_type": st.integers(0, 3),
                "temperature": st.floats(-5, 35, width=16),
            }),
        }),
        st.fixed_dictionaries({
            "kind": st.just("traffic"),
            "day": st.integers(0, dataset.n_days - 1),
            "minute": st.integers(0, 1439),
            "area": st.integers(0, dataset.n_areas - 1),
            "values": st.fixed_dictionaries({
                "level_counts": st.lists(
                    st.integers(0, 20), min_size=4, max_size=4
                ),
            }),
        }),
        st.fixed_dictionaries({
            "kind": st.just("orders"),
            "day": st.integers(0, dataset.n_days - 1),
            "minute": st.integers(0, 1439),
            "area": st.integers(0, dataset.n_areas - 1),
            "values": st.fixed_dictionaries({
                "valid": st.integers(0, 40),
                "invalid": st.integers(0, 10),
            }),
        }),
    )


def _apply_observation(service, body):
    return service.observe(
        body["kind"], body["day"], body["minute"],
        area_id=body.get("area"), **body["values"],
    )


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_predict_batch_bitwise_equals_sequential_predict(
    data, checkpoint, dataset, scale
):
    pool = data.draw(
        st.lists(_query_pool(dataset, scale), min_size=1, max_size=6,
                 unique=True),
        label="pool",
    )
    max_batch = data.draw(st.integers(1, 8), label="max_batch")
    script = data.draw(
        st.lists(
            st.one_of(
                # A batch call: items sampled from the pool, duplicates
                # welcome, any size (crossing max_batch both ways).
                st.lists(st.sampled_from(pool), min_size=1, max_size=12),
                # An observation mutating state + invalidating entries
                # between batches.
                _observation(dataset),
            ),
            min_size=1, max_size=6,
        ),
        label="script",
    )

    sequential = _make_service(
        checkpoint, copy.deepcopy(dataset), scale, max_batch=max_batch
    )
    batched = _make_service(
        checkpoint, copy.deepcopy(dataset), scale, max_batch=max_batch
    )
    try:
        for step in script:
            if isinstance(step, dict):
                left = _apply_observation(sequential, step)
                right = _apply_observation(batched, step)
                # Same state, same cache contents → same exact-set counts.
                assert left == right, step
                continue
            expected = [sequential.predict(*item) for item in step]
            got = batched.predict_batch(step)
            assert len(got) == len(expected)
            for item, want, have in zip(step, expected, got):
                assert have.gap == want.gap, (item, have.gap, want.gap)
                assert have.version == want.version
                assert have.cached == want.cached, item
    finally:
        sequential.close()
        batched.close()


def test_predict_batch_duplicates_mirror_sequential_cache_hits(
    checkpoint, dataset, scale
):
    """Within one batch, the duplicate of an earlier miss reports
    ``cached=True`` with the identical float — exactly as the second of
    two sequential calls would."""
    service = _make_service(checkpoint, copy.deepcopy(dataset), scale)
    try:
        L = scale.features.window_minutes
        item = (0, 1, L + 30)
        results = service.predict_batch([item, item, item])
        assert results[0].cached is False
        assert results[1].cached is True
        assert results[2].cached is True
        assert results[0].gap == results[1].gap == results[2].gap
        # The whole batch counted one miss and two hits.
        stats = service.cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 2
        # A later batch over the same key is a pure cache hit.
        again = service.predict_batch([item])
        assert again[0].cached is True and again[0].gap == results[0].gap
    finally:
        service.close()


def test_predict_batch_coalesces_with_concurrent_single_predicts(
    checkpoint, dataset, scale
):
    """A batch group and plain single submissions share the batcher
    thread and return consistent answers."""
    import threading

    service = _make_service(checkpoint, copy.deepcopy(dataset), scale,
                            max_batch=16)
    try:
        L = scale.features.window_minutes
        batch_items = [(0, 1, L + t) for t in range(0, 50, 10)]
        single_item = (1, 2, L + 25)
        out = {}

        def do_batch():
            out["batch"] = service.predict_batch(batch_items)

        def do_single():
            out["single"] = service.predict(*single_item)

        threads = [threading.Thread(target=do_batch),
                   threading.Thread(target=do_single)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(out["batch"]) == len(batch_items)
        # Replays agree bitwise with what was computed concurrently.
        for item, result in zip(batch_items, out["batch"]):
            assert service.predict(*item).gap == result.gap
        assert service.predict(*single_item).gap == out["single"].gap
    finally:
        service.close()


def test_predict_batch_validates_every_item_up_front(
    checkpoint, dataset, scale
):
    """One invalid item fails the whole batch before any work happens —
    no partial cache fills, no partial compute."""
    service = _make_service(checkpoint, copy.deepcopy(dataset), scale)
    try:
        L = scale.features.window_minutes
        good = (0, 1, L + 40)
        before = service.cache.stats()
        with pytest.raises(DataError):
            service.predict_batch([good, (dataset.n_areas + 7, 0, L + 5)])
        after = service.cache.stats()
        assert after == before  # not even the valid item was looked up
        # The valid item is still a cold miss afterwards.
        assert service.predict_batch([good])[0].cached is False
    finally:
        service.close()


def test_predict_batch_empty_and_closed(checkpoint, dataset, scale):
    service = _make_service(checkpoint, copy.deepcopy(dataset), scale)
    try:
        assert service.predict_batch([]) == []
    finally:
        service.close()
    with pytest.raises(RuntimeError):
        service.predict_batch([(0, 1, scale.features.window_minutes + 1)])
