"""The close()/submit() lifecycle race, hammered.

The bug this pins down: ``submit`` used to check ``_closed`` and then
enqueue without a lock, so a submitter could pass the check, lose the
CPU, and enqueue *after* ``close()`` pushed the stop sentinel — the
worker had already exited and that future hung forever.  With the
lifecycle lock (plus the worker's belt-and-braces queue sweep), every
submitted item must resolve: either with the handler's result or with a
loud ``RuntimeError`` — never a hang.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.obs import MetricsRegistry
from repro.serving import MicroBatcher

pytestmark = pytest.mark.serving

_ITERATIONS = 100
_SUBMITTERS = 4
_PER_THREAD = 8


def test_concurrent_submit_vs_close_never_hangs_a_future():
    """100 iterations of submitters racing close(): every future that
    ``submit`` handed out resolves within the timeout."""
    for iteration in range(_ITERATIONS):
        batcher = MicroBatcher(
            lambda items: [item * 2 for item in items],
            max_batch=4,
            max_wait_ms=0.0,
            registry=MetricsRegistry(),
        )
        start = threading.Barrier(_SUBMITTERS + 1)
        futures = []
        futures_lock = threading.Lock()
        rejected = [0] * _SUBMITTERS

        def submit_some(thread_index):
            start.wait()
            for value in range(_PER_THREAD):
                try:
                    future = batcher.submit(value)
                except RuntimeError as error:
                    # The only acceptable refusal, and only after close.
                    assert "closed" in str(error)
                    rejected[thread_index] += 1
                    continue
                with futures_lock:
                    futures.append((value, future))

        threads = [
            threading.Thread(target=submit_some, args=(i,), daemon=True)
            for i in range(_SUBMITTERS)
        ]
        for thread in threads:
            thread.start()
        start.wait()  # release submitters and close() together
        batcher.close()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive(), f"submitter hung (iteration {iteration})"

        accepted = 0
        for value, future in futures:
            # The hang is the bug: an accepted future must resolve fast.
            try:
                result = future.result(timeout=10)
            except RuntimeError as error:
                assert str(error) == "batcher closed"
            else:
                assert result == value * 2
                accepted += 1
        assert len(futures) + sum(rejected) == _SUBMITTERS * _PER_THREAD

    # Not a vacuous race: across 100 iterations both outcomes must occur
    # somewhere (some work accepted overall, and close() ran to completion).
    assert batcher._closed


def test_submit_after_close_raises_immediately():
    batcher = MicroBatcher(
        lambda items: items, max_batch=2, registry=MetricsRegistry()
    )
    assert batcher.submit(1).result(timeout=10) == 1
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(2)
    batcher.close()  # idempotent


def test_drain_fails_stragglers_not_silently():
    """Items that somehow sit behind the stop sentinel are failed loudly
    by the worker's sweep, not left pending (direct unit poke at the
    drain path, bypassing the lock)."""
    batcher = MicroBatcher(
        lambda items: items, max_batch=2, registry=MetricsRegistry()
    )
    batcher.close()
    straggler: Future = Future()
    batcher._queue.put(("late", straggler, None, 0.0))
    batcher._drain_closed()
    with pytest.raises(RuntimeError, match="batcher closed"):
        straggler.result(timeout=1)
