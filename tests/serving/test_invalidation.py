"""Stale-cache satellite: observations invalidate exactly what they stale.

An observation at minute ``m`` sits inside the lookback window of slots
``t`` with ``m < t <= m + L`` only.  Weather is city-wide; traffic and
orders touch one area.  Everything else must stay warm in the cache.
"""

import pytest

from repro.exceptions import DataError
from repro.serving import PredictionService, ServingConfig

pytestmark = pytest.mark.serving


@pytest.fixture()
def service(checkpoint, mutable_dataset, scale):
    svc = PredictionService.from_checkpoint(
        checkpoint,
        mutable_dataset,
        scale.features,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=0.0),
    )
    yield svc
    svc.close()


def _fill(service, queries):
    """Prime the cache and return the gaps keyed by query."""
    return {q: service.predict(*q).gap for q in queries}


def _cached_flags(service, queries):
    return {q: service.predict(*q).cached for q in queries}


# L = 20 at tiny scale; an observation at minute 100 stales slots 101..120.
AFFECTED_SLOTS = (101, 110, 120)
UNAFFECTED_SLOTS = (90, 100, 121, 300)


def test_traffic_observation_invalidates_one_areas_window(service, scale):
    L = scale.features.window_minutes
    assert L == 20  # the slot constants above assume the tiny scale
    day, area, other_area = 3, 2, 1
    queries = [
        (a, day, slot)
        for a in (area, other_area)
        for slot in AFFECTED_SLOTS + UNAFFECTED_SLOTS
    ] + [(area, day + 1, slot) for slot in AFFECTED_SLOTS]
    _fill(service, queries)

    outcome = service.observe(
        "traffic", day=day, minute=100, area_id=area,
        level_counts=[9.0, 3.0, 1.0, 0.0],
    )
    assert outcome["invalidated"] == len(AFFECTED_SLOTS)

    flags = _cached_flags(service, queries)
    for query, cached in flags.items():
        q_area, q_day, q_slot = query
        should_be_stale = (
            q_area == area and q_day == day and q_slot in AFFECTED_SLOTS
        )
        assert cached != should_be_stale, (query, cached)


def test_weather_observation_invalidates_every_area(service, scale):
    day = 4
    queries = [
        (a, day, slot) for a in range(3) for slot in AFFECTED_SLOTS + UNAFFECTED_SLOTS
    ]
    _fill(service, queries)

    outcome = service.observe("weather", day=day, minute=100, temperature=31.5)
    assert outcome["invalidated"] == 3 * len(AFFECTED_SLOTS)

    flags = _cached_flags(service, queries)
    for (q_area, q_day, q_slot), cached in flags.items():
        assert cached != (q_slot in AFFECTED_SLOTS), (q_area, q_slot, cached)


def test_weather_change_also_changes_the_prediction(service):
    # The re-served value must reflect the new data, not just a cold cache.
    before = service.predict(0, 4, 110).gap
    service.observe("weather", day=4, minute=100, temperature=99.0, pm25=999.0)
    after = service.predict(0, 4, 110).gap
    assert after != before


def test_orders_observation_drops_profile_and_later_days(service, scale):
    day, area = 3, 2
    queries = [
        (area, day, 110),        # affected slot on the observed day
        (area, day, 300),        # same day, window does not cover minute 100
        (area, day + 2, 110),    # later day: history may average the mutated day
        (area + 1, day, 110),    # other area: untouched
        (area, day - 1, 110),    # earlier day: untouched
    ]
    _fill(service, queries)

    outcome = service.observe(
        "orders", day=day, minute=100, area_id=area, valid=7, invalid=5
    )
    assert outcome["profiles_dropped"] == 1
    assert outcome["invalidated"] == 2  # (area, day, 110) and (area, day+2, 110)

    flags = _cached_flags(service, queries)
    assert flags[(area, day, 110)] is False
    assert flags[(area, day, 300)] is True
    assert flags[(area, day + 2, 110)] is False
    assert flags[(area + 1, day, 110)] is True
    assert flags[(area, day - 1, 110)] is True


def test_orders_observation_updates_gap_labels(service):
    area, day = 2, 3
    service.observe("orders", day=day, minute=100, area_id=area, invalid=5)
    # Definition 2: the gap over [95, 105) now includes the 5 invalid orders.
    engine_predictor = service._engine.predictor
    assert engine_predictor.actual_gap(area, day, 95) >= 5


def test_observation_validation(service):
    with pytest.raises(DataError):
        service.observe("earthquake", day=0, minute=0)
    with pytest.raises(DataError):
        service.observe("traffic", day=0, minute=0, level_counts=[1, 2, 3, 4])
    with pytest.raises(DataError):
        service.observe("weather", day=0, minute=0)  # no fields
    with pytest.raises(DataError):
        service.observe("weather", day=0, minute=0, humidity=0.5)
    with pytest.raises(DataError):
        service.observe("weather", day=99, minute=0, temperature=1.0)
    with pytest.raises(DataError):
        service.observe("weather", day=0, minute=1440, temperature=1.0)
