"""Fixtures for serving tests: a tiny city plus trained checkpoints.

The session-scoped checkpoints are the expensive part (two short training
runs); tests that mutate the dataset via ``observe`` take a deep copy so
the shared simulation stays pristine.
"""

import copy

import pytest

from repro.city import simulate_city
from repro.config import tiny_scale
from repro.core import BasicDeepSD, Trainer, TrainingConfig
from repro.features import FeatureBuilder


@pytest.fixture(scope="session")
def scale():
    return tiny_scale()


@pytest.fixture(scope="session")
def dataset(scale):
    return simulate_city(scale.simulation)


@pytest.fixture(scope="session")
def train_set(dataset, scale):
    return FeatureBuilder(dataset, scale.features).build()[0]


def _train_checkpoint(dataset, scale, train_set, directory, seed):
    model = BasicDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings, seed=seed
    )
    trainer = Trainer(model, TrainingConfig(epochs=2, best_k=2, seed=seed))
    trainer.fit(train_set, checkpoint_dir=str(directory), checkpoint_every=1)
    return trainer.last_checkpoint


@pytest.fixture(scope="session")
def checkpoint(dataset, scale, train_set, tmp_path_factory):
    """Primary trained checkpoint (seed 1)."""
    return _train_checkpoint(
        dataset, scale, train_set, tmp_path_factory.mktemp("ckpt_a"), seed=1
    )


@pytest.fixture(scope="session")
def other_checkpoint(dataset, scale, train_set, tmp_path_factory):
    """A second, differently-initialized checkpoint for hot-swap tests."""
    return _train_checkpoint(
        dataset, scale, train_set, tmp_path_factory.mktemp("ckpt_b"), seed=2
    )


@pytest.fixture()
def mutable_dataset(dataset):
    """A private copy safe to mutate through ``PredictionService.observe``."""
    return copy.deepcopy(dataset)
