"""Tests for the configuration layer."""

import pytest

from repro.config import (
    EmbeddingConfig,
    ExperimentScale,
    FeatureConfig,
    SimulationConfig,
    bench_scale,
    get_scale,
    paper_scale,
    tiny_scale,
    with_seed,
)
from repro.exceptions import ConfigError


class TestSimulationConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.n_areas == 58

    def test_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(n_areas=0)
        with pytest.raises(ConfigError):
            SimulationConfig(n_days=-1)
        with pytest.raises(ConfigError):
            SimulationConfig(start_weekday=7)
        with pytest.raises(ConfigError):
            SimulationConfig(base_demand_rate=0.0)


class TestFeatureConfig:
    def test_paper_defaults(self):
        config = FeatureConfig()
        assert config.window_minutes == 20
        assert config.gap_minutes == 10
        assert config.train_days == 24
        assert config.test_days == 28
        assert config.projection_dim == 16

    def test_paper_item_counts(self):
        """Section VI-A: 283 items/day/area in training, 9 test slots/day."""
        config = FeatureConfig()
        assert len(list(config.train_timeslots())) == 283
        assert len(list(config.test_timeslots())) == 9
        assert list(config.test_timeslots())[0] == 450     # 7:30
        assert list(config.test_timeslots())[-1] == 1410   # 23:30

    def test_validation(self):
        with pytest.raises(ConfigError):
            FeatureConfig(window_minutes=0)
        with pytest.raises(ConfigError):
            FeatureConfig(train_start_minute=5)  # < window
        with pytest.raises(ConfigError):
            FeatureConfig(test_end_minute=1435)  # + gap > 1440
        with pytest.raises(ConfigError):
            FeatureConfig(train_stride_minutes=0)
        with pytest.raises(ConfigError):
            FeatureConfig(train_days=0)

    def test_n_days(self):
        assert FeatureConfig().n_days == 52


class TestEmbeddingConfig:
    def test_table1_defaults(self):
        config = EmbeddingConfig()
        assert (config.area_dim, config.time_dim, config.week_dim) == (8, 6, 3)
        assert config.weather_type_dim == 3
        assert config.time_vocab == 1440
        assert config.weather_type_vocab == 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            EmbeddingConfig(area_dim=0)


class TestScales:
    def test_paper_scale_matches_protocol(self):
        scale = paper_scale()
        assert scale.simulation.n_areas == 58
        assert scale.features.train_days == 24
        assert scale.features.test_days == 28

    def test_bench_test_slots_covered_by_train_grid(self):
        for factory in (bench_scale, tiny_scale):
            scale = factory()
            train = set(scale.features.train_timeslots())
            test = set(scale.features.test_timeslots())
            assert test <= train, f"{scale.name}: test slots must be trained TimeIDs"

    def test_get_scale(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("bench", seed=42).simulation.seed == 42
        with pytest.raises(ConfigError):
            get_scale("huge")

    def test_with_seed(self):
        scale = with_seed(bench_scale(), 7)
        assert scale.simulation.seed == 7
        assert scale.name == "bench"

    def test_scale_day_consistency_enforced(self):
        with pytest.raises(ConfigError):
            ExperimentScale(
                name="broken",
                simulation=SimulationConfig(n_areas=2, n_days=5),
                features=FeatureConfig(train_days=10, test_days=10),
            )
